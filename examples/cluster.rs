//! Scale-out: a Raft-replicated, hash-partitioned table with
//! scatter-gather analytics and a node failure mid-flight.
//!
//! ```bash
//! cargo run --release --example cluster
//! ```

use oltapdb::common::{row, DataType, Field, Schema, Value};
use oltapdb::dist::{ClusterConfig, DistributedTable, RaftConfig};
use oltapdb::storage::{CmpOp, ScanPredicate};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Arc::new(Schema::with_primary_key(
        vec![
            Field::not_null("sensor_id", DataType::Int64),
            Field::new("zone", DataType::Int64),
            Field::new("reading", DataType::Int64),
        ],
        &["sensor_id"],
    )?);

    // 3 nodes, every partition replicated 3 ways via Raft (Kudu-style).
    let cluster = DistributedTable::new(
        schema,
        ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 6,
            raft: RaftConfig::default(),
        },
    )?;
    println!("cluster up: 3 nodes, 6 partitions, RF=3");

    // Replicated ingest: each insert is a Raft commit on its partition.
    for i in 0..3_000 {
        cluster.insert(row![i as i64, (i % 4) as i64, (i % 100) as i64])?;
    }
    println!("ingested 3000 readings (each quorum-committed)");

    // Scatter-gather analytics: partial aggregates at partition leaders.
    let (count, sum) = cluster.scan_aggregate(&ScanPredicate::all(), 2)?;
    println!("fleet total: count={count} sum={sum}");
    let hot = ScanPredicate::single(2, CmpOp::Ge, Value::Int(90));
    let (hot_n, _) = cluster.scan_aggregate(&hot, 2)?;
    println!("readings >= 90: {hot_n}");

    // Kill a node; the majority keeps serving reads and writes.
    println!("\ncrashing node 1 ...");
    cluster.crash_node(1);
    for i in 3_000..3_200 {
        cluster.insert(row![i as i64, (i % 4) as i64, 1i64])?;
    }
    let (count, _) = cluster.scan_aggregate(&ScanPredicate::all(), 2)?;
    println!("after 200 more inserts without node 1: count={count}");
    assert_eq!(count, 3_200);

    // Bring it back; Raft catches the replica up from the leaders' logs.
    println!("restarting node 1 ...");
    cluster.restart_node(1);
    let converged = cluster.wait_converged(std::time::Duration::from_secs(20));
    println!("replicas converged after restart: {converged}");

    // Per-partition leadership report.
    for g in cluster.groups().iter().take(3) {
        let leader = g.leader_index(std::time::Duration::from_secs(5))?;
        println!(
            "partition {}: leader=replica{} (cluster node {})",
            g.id, leader, g.members[leader]
        );
    }
    Ok(())
}
