//! Social-retail surge analytics: the paper's second motivating
//! application (§1) — "analytic insights on immediate surges of interest
//! on social media platforms to derive targeted product trends in real
//! time".
//!
//! Uses a DUAL-format table (Oracle DBIM style): event ingest and point
//! lookups ride the row store; the trend queries ride the columnar image,
//! reconciled with the invalidation journal so results are consistent with
//! the very latest committed events.
//!
//! ```bash
//! cargo run --release --example retail_analytics
//! ```

use oltap_bench::workloads::RetailGen;
use oltapdb::core::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    db.execute(&RetailGen::ddl("DUAL"))?;

    let mut gen = RetailGen::new(100, 7);
    let handle = db.table("retail_events")?;

    // Phase 1: historical backlog, then populate the columnar image.
    let backlog = gen.batch(50_000);
    let txn = db.txn_manager().begin();
    for r in &backlog {
        handle.insert(&txn, r.clone())?;
    }
    txn.commit()?;
    db.maintenance(); // populates the dual table's columnar image
    println!("loaded {} historical events; columnar image populated", backlog.len());

    // Phase 2: live events keep arriving (journal accumulates).
    let live = gen.batch(5_000);
    let txn = db.txn_manager().begin();
    for r in &live {
        handle.insert(&txn, r.clone())?;
    }
    txn.commit()?;
    println!("+{} live events since population\n", live.len());

    // Trend board: top products by recent mention volume — served by the
    // columnar image + journal overlay, consistent with all commits.
    println!("top products by mentions (live-consistent):");
    for r in db.query(
        "SELECT product, SUM(mentions) AS buzz, SUM(purchases) AS sold
         FROM retail_events GROUP BY product ORDER BY buzz DESC LIMIT 5",
    )? {
        println!("  {r}");
    }

    // Surge detection: products whose single-event mention counts spike.
    println!("\nsurging products (events with >= 50 mentions):");
    for r in db.query(
        "SELECT product, COUNT(*) AS spikes, MAX(mentions) AS peak
         FROM retail_events WHERE mentions >= 50
         GROUP BY product ORDER BY spikes DESC LIMIT 5",
    )? {
        println!("  {r}");
    }

    // Conversion by region.
    println!("\nconversion by region:");
    for r in db.query(
        "SELECT region, SUM(purchases) AS sold, SUM(mentions) AS buzz
         FROM retail_events GROUP BY region ORDER BY sold DESC",
    )? {
        println!("  {r}");
    }

    // OLTP side: a point read for one event rides the row store.
    let one = db.query("SELECT product, mentions FROM retail_events WHERE event_id = 42")?;
    println!("\nevent 42: {}", one[0]);

    // Freshness bookkeeping of the dual format.
    if let oltapdb::core::TableHandle::Dual(d) = db.table("retail_events")? {
        println!(
            "\ndual-format state: image_ts={} journal_len={} segments={}",
            d.image_ts(),
            d.journal_len(),
            d.segment_count()
        );
    }
    Ok(())
}
