//! Mixed OLTP + OLAP on one engine: a miniature CH-benCHmark session.
//!
//! TPC-C-style terminals hammer transactions while CH-style analytic
//! queries run concurrently on the same tables — the defining workload of
//! the paper. Demonstrates snapshot-isolated analytics over live data and
//! the OLAP admission throttle.
//!
//! ```bash
//! cargo run --release --example mixed_workload
//! ```

use oltap_bench::ch::{ch_queries, load_ch, ChTerminal, LoadSpec, TxnMix};
use oltap_bench::harness::TextTable;
use oltapdb::core::{Database, TableFormat};
use oltapdb::sched::{WorkerPool, WorkloadClass};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    let rows = load_ch(
        &db,
        LoadSpec {
            warehouses: 1,
            format: TableFormat::Column,
            seed: 1,
        },
    )?;
    println!("CH-benCHmark loaded: {rows} rows across {} tables", db.table_names().len());
    db.maintenance();

    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));

    // Two OLTP terminals.
    let mut terminals = Vec::new();
    for t in 0..2u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let committed = Arc::clone(&committed);
        terminals.push(std::thread::spawn(move || {
            let mut term = ChTerminal::new(db, 1, 10 + t);
            let mix = TxnMix::default();
            while !stop.load(Ordering::Relaxed) {
                term.run_one(&mix).expect("txn");
            }
            committed.fetch_add(term.stats.committed, Ordering::Relaxed);
            term.stats
        }));
    }

    // One OLAP stream through the workload-managed pool (admission limit 1
    // keeps analytics from monopolizing the box).
    let pool = Arc::new(WorkerPool::new(2, 1));
    let olap_done = Arc::new(AtomicU64::new(0));
    let olap = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        let pool = Arc::clone(&pool);
        let done = Arc::clone(&olap_done);
        std::thread::spawn(move || {
            let queries = ch_queries();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let sql = queries[i % queries.len()].sql;
                let db2 = Arc::clone(&db);
                let done2 = Arc::clone(&done);
                pool.run(WorkloadClass::Olap, move || {
                    if db2.query(sql).is_ok() {
                        done2.fetch_add(1, Ordering::Relaxed);
                    }
                });
                i += 1;
            }
        })
    };

    std::thread::sleep(Duration::from_secs(3));
    stop.store(true, Ordering::SeqCst);
    let mut oltp_stats = Vec::new();
    for t in terminals {
        oltp_stats.push(t.join().expect("terminal"));
    }
    olap.join().expect("olap stream");

    let mut table = TextTable::new(&["metric", "value"]);
    let total_committed: u64 = oltp_stats.iter().map(|s| s.committed).sum();
    let total_aborted: u64 = oltp_stats.iter().map(|s| s.aborted).sum();
    let new_orders: u64 = oltp_stats.iter().map(|s| s.new_orders).sum();
    table.row(&["OLTP committed".into(), total_committed.to_string()]);
    table.row(&["OLTP conflicts/aborts".into(), total_aborted.to_string()]);
    table.row(&["NewOrder txns (tpmC basis)".into(), new_orders.to_string()]);
    table.row(&[
        "mean OLTP latency".into(),
        format!("{:.0} us", oltp_stats.iter().map(|s| s.mean_latency_us()).sum::<f64>() / 2.0),
    ]);
    table.row(&["OLAP queries answered".into(), olap_done.load(Ordering::Relaxed).to_string()]);
    table.print("3-second mixed workload");

    // Verify transactional consistency survived the storm: every order's
    // line count matches its order_line rows.
    let orders: i64 = db.query("SELECT SUM(o_ol_cnt) FROM orders")?[0][0].as_int()?;
    let lines: i64 = db.query("SELECT COUNT(*) FROM order_line")?[0][0].as_int()?;
    println!("consistency: SUM(o_ol_cnt)={orders} == COUNT(order_line)={lines}");
    assert_eq!(orders, lines);
    Ok(())
}
