//! Quickstart: the SQL surface of `oltapdb` in two minutes.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use oltapdb::core::Database;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An ephemeral in-memory database. Database::open("my.wal") would give
    // a durable one that recovers on restart.
    let db = Database::new();

    // DDL: pick a physical format per table. COLUMN (delta + compressed
    // columnar main) is the operational-analytics default; ROW is pure
    // OLTP; DUAL keeps both formats live (Oracle-style).
    db.execute(
        "CREATE TABLE orders (
            id BIGINT PRIMARY KEY,
            region TEXT,
            product TEXT,
            amount DOUBLE,
            placed_at TIMESTAMP
        ) USING FORMAT COLUMN",
    )?;

    // DML with auto-commit.
    db.execute(
        "INSERT INTO orders VALUES
            (1, 'eu', 'widget', 19.99, 1000),
            (2, 'us', 'gadget', 120.50, 1010),
            (3, 'eu', 'widget', 19.99, 1020),
            (4, 'apac', 'gizmo', 5.25, 1030),
            (5, 'eu', 'gadget', 120.50, 1040)",
    )?;

    // Analytics: aggregation, grouping, ordering.
    println!("revenue by region:");
    for row in db.query(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS revenue
         FROM orders GROUP BY region ORDER BY revenue DESC",
    )? {
        println!("  {row}");
    }

    // Explicit transactions with snapshot isolation.
    let mut writer = db.session();
    writer.execute("BEGIN")?;
    writer.execute("UPDATE orders SET amount = 25.00 WHERE product = 'widget'")?;
    // Another session still sees the old prices (snapshot isolation).
    let before = db.query("SELECT SUM(amount) FROM orders")?;
    println!("sum before writer commits: {}", before[0][0]);
    writer.execute("COMMIT")?;
    let after = db.query("SELECT SUM(amount) FROM orders")?;
    println!("sum after writer commits:  {}", after[0][0]);

    // Point reads go through the primary key.
    let row = db.query("SELECT product, amount FROM orders WHERE id = 2")?;
    println!("order 2: {}", row[0]);

    // Maintenance merges the write-optimized delta into the compressed
    // columnar main (normally done by the background daemon).
    for (table, note) in db.maintenance().notes {
        println!("maintenance[{table}]: {note}");
    }

    // EXPLAIN shows the optimized plan: predicate pushdown into the
    // storage scan, projection pruning, and the TopK rewrite.
    println!("\nEXPLAIN SELECT region FROM orders WHERE amount > 50 ORDER BY amount DESC LIMIT 2:");
    for row in db.query(
        "EXPLAIN SELECT region FROM orders WHERE amount > 50
         ORDER BY amount DESC LIMIT 2",
    )? {
        println!("  {}", row[0].as_str()?);
    }

    // Joins.
    db.execute(
        "CREATE TABLE regions (code TEXT NOT NULL, name TEXT, PRIMARY KEY (code))",
    )?;
    db.execute("INSERT INTO regions VALUES ('eu', 'Europe'), ('us', 'United States')")?;
    println!("orders with region names:");
    for row in db.query(
        "SELECT o.id, r.name, o.amount
         FROM orders o JOIN regions r ON o.region = r.code
         ORDER BY o.id LIMIT 3",
    )? {
        println!("  {row}");
    }
    Ok(())
}
