//! Deterministic fault injection, end to end: tear the WAL mid-commit,
//! recover, replay the exact same schedule from the seed, and watch a
//! query deadline cancel a scan.
//!
//! Run with: `cargo run --example fault_injection`

use oltapdb::common::fault::{points, FaultInjector, FaultPoint};
use oltapdb::common::DbError;
use oltapdb::core::{Database, DbConfig};
use std::time::Duration;

fn main() -> oltapdb::common::Result<()> {
    let seed: u64 = 0xBAD_C0FFEE;
    let dir = std::env::temp_dir().join(format!("oltap_fault_demo_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let wal = dir.join("demo.wal");
    let _ = std::fs::remove_file(&wal);

    // --- 1. A seeded injector tears one WAL record mid-write. ---------
    println!("== torn WAL write (seed {seed:#x}) ==");
    let faults = FaultInjector::new(seed);
    faults.arm(points::WAL_TORN_WRITE, FaultPoint::times(1).after(3));
    {
        let db = Database::with_config(DbConfig {
            wal_path: Some(wal.clone()),
            faults: Some(faults),
            ..DbConfig::default()
        })?;
        db.execute("CREATE TABLE sensors (id BIGINT PRIMARY KEY, temp BIGINT)")?;
        for i in 0..6i64 {
            match db.execute(&format!("INSERT INTO sensors VALUES ({i}, {})", 20 + i)) {
                Ok(_) => println!("  insert {i}: committed"),
                Err(DbError::FaultInjected(msg)) => {
                    println!("  insert {i}: TORN ({msg}) — crashing here");
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        // Drop without clean shutdown: the torn tail stays on disk.
    }

    // --- 2. Recovery keeps every acked commit, drops the torn one. ----
    println!("== recovery ==");
    let db = Database::open(&wal)?;
    for row in db.query("SELECT id, temp FROM sensors ORDER BY id")? {
        println!("  recovered: {row:?}");
    }

    // --- 3. Same seed, same schedule: the tear is replayable. ---------
    println!("== reproducibility ==");
    let run = |seed: u64| -> Vec<bool> {
        let f = FaultInjector::new(seed);
        f.arm(points::WAL_TORN_WRITE, FaultPoint::with_probability(0.3));
        let db = Database::with_config(DbConfig {
            wal_path: None,
            faults: Some(f),
            ..DbConfig::default()
        })
        .expect("in-memory db");
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY)").unwrap();
        (0..12i64)
            .map(|i| db.execute(&format!("INSERT INTO t VALUES ({i})")).is_ok())
            .collect()
    };
    let (a, b) = (run(seed), run(seed));
    println!("  run 1: {a:?}");
    println!("  run 2: {b:?}");
    assert_eq!(a, b, "same seed must replay the same schedule");
    println!("  identical: {}", a == b);

    // --- 4. Query deadlines cancel at the next batch boundary. --------
    println!("== query deadline ==");
    let db = Database::new();
    db.execute("CREATE TABLE big (id BIGINT PRIMARY KEY, v BIGINT)")?;
    for chunk in 0..4 {
        let vals: Vec<String> = (0..500)
            .map(|i| format!("({}, {})", chunk * 500 + i, i % 7))
            .collect();
        db.execute(&format!("INSERT INTO big VALUES {}", vals.join(", ")))?;
    }
    let mut session = db.session();
    session.set_query_timeout(Some(Duration::ZERO));
    match session.execute("SELECT v, COUNT(*) FROM big GROUP BY v") {
        Err(DbError::DeadlineExceeded(msg)) => println!("  expired deadline: {msg}"),
        other => panic!("expected a deadline error, got {other:?}"),
    }
    session.set_query_timeout(None);
    let rows = session.execute("SELECT COUNT(*) FROM big")?;
    println!("  without deadline: COUNT(*) = {:?}", rows.rows()[0][0]);

    std::fs::remove_file(&wal).ok();
    std::fs::remove_dir(&dir).ok();
    Ok(())
}
