//! Machine-data analytics: the paper's first motivating application (§1).
//!
//! "A typical cloud-scale enterprise data center generates several
//! terabytes of metrics data per day [...] such environments require high
//! performance ad-hoc query processing over multiple metrics in real time
//! over large volumes of data constantly being ingested."
//!
//! This example runs a miniature of that pipeline: a fleet telemetry
//! stream ingested continuously into a delta+main column table while
//! dashboard queries (anomaly counts, per-host hot spots, latest readings)
//! run concurrently against consistent snapshots, with the background
//! maintenance daemon merging the delta as it grows.
//!
//! ```bash
//! cargo run --release --example machine_telemetry
//! ```

use oltap_bench::workloads::TelemetryGen;
use oltapdb::core::Database;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::new();
    db.execute(&TelemetryGen::ddl("COLUMN"))?;

    // Background maintenance: merge the ingest delta every 100 ms.
    let _daemon = db.start_maintenance(Duration::from_millis(100));

    // Ingest thread: a 200-host fleet emitting readings.
    let stop = Arc::new(AtomicBool::new(false));
    let ingest = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> usize {
            let mut gen = TelemetryGen::new(200, 8, 42);
            let handle = db.table("telemetry").expect("table exists");
            let mut total = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let batch = gen.batch(2_000);
                let txn = db.txn_manager().begin();
                for r in &batch {
                    handle.insert(&txn, r.clone()).expect("insert");
                }
                txn.commit().expect("commit");
                total += batch.len();
            }
            total
        })
    };

    // Dashboard loop: ad-hoc queries on live data.
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(3) {
        std::thread::sleep(Duration::from_millis(400));
        let anomalies = db.query(
            "SELECT COUNT(*) AS anomalies FROM telemetry WHERE status = 2",
        )?;
        let hot = db.query(
            "SELECT host, COUNT(*) AS n, AVG(value) AS avg_v
             FROM telemetry WHERE status = 2
             GROUP BY host ORDER BY n DESC LIMIT 3",
        )?;
        let volume = db.query("SELECT COUNT(*), MAX(ts) FROM telemetry")?;
        println!(
            "t={:>4}ms  volume={} latest_ts={} anomalies={}",
            start.elapsed().as_millis(),
            volume[0][0],
            volume[0][1],
            anomalies[0][0],
        );
        for r in &hot {
            println!("    hot host: {r}");
        }
    }

    stop.store(true, Ordering::SeqCst);
    let total = ingest.join().expect("ingest thread");
    println!("\ningested {total} readings while serving dashboards");

    // Final deep-dive: per-metric p95-ish summary via grouped aggregates.
    println!("\nper-metric summary:");
    for r in db.query(
        "SELECT metric, COUNT(*) AS n, AVG(value) AS mean, MAX(value) AS peak
         FROM telemetry GROUP BY metric ORDER BY metric",
    )? {
        println!("  {r}");
    }

    // Zone maps make time-windowed queries cheap on monotonic timestamps.
    let recent = db.query(
        "SELECT COUNT(*) FROM telemetry WHERE ts >= 1000000 AND status = 0",
    )?;
    println!("\nhealthy readings in window: {}", recent[0][0]);
    Ok(())
}
