//! End-to-end SQL integration tests, run against every table format.

use oltapdb::common::Value;
use oltapdb::core::Database;
use std::sync::Arc;

fn formats() -> [&'static str; 3] {
    ["ROW", "COLUMN", "DUAL"]
}

fn fresh(format: &str) -> Arc<Database> {
    let db = Database::new();
    db.execute(&format!(
        "CREATE TABLE m (id BIGINT PRIMARY KEY, cat TEXT, x BIGINT, y DOUBLE) \
         USING FORMAT {format}"
    ))
    .unwrap();
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    for i in 0..500i64 {
        s.execute(&format!(
            "INSERT INTO m VALUES ({i}, '{}', {}, {})",
            ["a", "b", "c"][(i % 3) as usize],
            i % 50,
            i as f64 / 10.0
        ))
        .unwrap();
    }
    s.execute("COMMIT").unwrap();
    db
}

#[test]
fn filters_and_projections_match_across_formats() {
    let mut reference: Option<Vec<String>> = None;
    for f in formats() {
        let db = fresh(f);
        let rows = db
            .query("SELECT id, x FROM m WHERE x >= 25 AND cat <> 'b' ORDER BY id")
            .unwrap();
        let printable: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        match &reference {
            None => reference = Some(printable),
            Some(want) => assert_eq!(&printable, want, "format {f} diverged"),
        }
    }
}

#[test]
fn aggregates_having_orderby_limit() {
    for f in formats() {
        let db = fresh(f);
        let rows = db
            .query(
                "SELECT cat, COUNT(*) AS n, SUM(x) AS sx, AVG(y) AS ay FROM m \
                 GROUP BY cat HAVING COUNT(*) > 10 ORDER BY sx DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(rows.len(), 2, "format {f}");
        // 500 rows over 3 categories: 167/167/166.
        let n0 = rows[0][1].as_int().unwrap();
        assert!(n0 >= 166, "format {f}");
        // Descending by sum.
        assert!(rows[0][2] >= rows[1][2], "format {f}");
    }
}

#[test]
fn update_delete_visibility_across_formats() {
    for f in formats() {
        let db = fresh(f);
        assert_eq!(
            db.execute("UPDATE m SET x = 999 WHERE id < 10").unwrap().affected(),
            10,
            "format {f}"
        );
        assert_eq!(
            db.execute("DELETE FROM m WHERE cat = 'c' AND id >= 490")
                .unwrap()
                .affected(),
            3, // 491, 494, 497
            "format {f}"
        );
        let total = db.query("SELECT COUNT(*) FROM m").unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(total, 497, "format {f}");
        let updated = db
            .query("SELECT COUNT(*) FROM m WHERE x = 999")
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(updated, 10, "format {f}");
    }
}

#[test]
fn results_stable_across_maintenance() {
    for f in formats() {
        let db = fresh(f);
        db.execute("UPDATE m SET x = 0 WHERE id % 7 = 0").unwrap();
        let q = "SELECT cat, SUM(x), COUNT(*) FROM m GROUP BY cat ORDER BY cat";
        let before = db.query(q).unwrap();
        db.maintenance();
        let after = db.query(q).unwrap();
        assert_eq!(before, after, "format {f}: maintenance changed results");
        // Run it twice more (merge + compaction paths).
        db.maintenance();
        assert_eq!(db.query(q).unwrap(), before, "format {f}: second pass");
    }
}

#[test]
fn three_way_join_with_aggregation() {
    let db = Database::new();
    db.execute("CREATE TABLE users (uid BIGINT PRIMARY KEY, name TEXT, country TEXT)")
        .unwrap();
    db.execute("CREATE TABLE events (eid BIGINT PRIMARY KEY, uid BIGINT, kind TEXT)")
        .unwrap();
    db.execute("CREATE TABLE countries (code TEXT NOT NULL, region TEXT, PRIMARY KEY (code))")
        .unwrap();
    db.execute(
        "INSERT INTO users VALUES (1,'ada','de'), (2,'bob','us'), (3,'chen','de')",
    )
    .unwrap();
    db.execute("INSERT INTO countries VALUES ('de','emea'), ('us','amer')")
        .unwrap();
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    for i in 0..90i64 {
        s.execute(&format!(
            "INSERT INTO events VALUES ({i}, {}, '{}')",
            i % 3 + 1,
            ["click", "view"][(i % 2) as usize]
        ))
        .unwrap();
    }
    s.execute("COMMIT").unwrap();

    let rows = db
        .query(
            "SELECT c.region, COUNT(*) AS n \
             FROM events e \
             JOIN users u ON e.uid = u.uid \
             JOIN countries c ON u.country = c.code \
             WHERE e.kind = 'click' \
             GROUP BY c.region ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Str("emea".into()));
    assert_eq!(rows[0][1], Value::Int(30)); // users 1,3 click 15 each
    assert_eq!(rows[1][1], Value::Int(15));
}

#[test]
fn left_join_preserves_unmatched() {
    let db = Database::new();
    db.execute("CREATE TABLE a (id BIGINT PRIMARY KEY)").unwrap();
    db.execute("CREATE TABLE b (id BIGINT PRIMARY KEY, tag TEXT)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (2), (3)").unwrap();
    db.execute("INSERT INTO b VALUES (2, 'two')").unwrap();
    let rows = db
        .query("SELECT a.id, b.tag FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id")
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][1], Value::Null);
    assert_eq!(rows[1][1], Value::Str("two".into()));
    assert_eq!(rows[2][1], Value::Null);
}

#[test]
fn null_semantics_through_sql() {
    let db = Database::new();
    db.execute("CREATE TABLE n (id BIGINT PRIMARY KEY, v BIGINT)").unwrap();
    db.execute("INSERT INTO n VALUES (1, 10), (2, NULL), (3, 30)").unwrap();
    // NULL never matches comparisons.
    assert_eq!(db.query("SELECT COUNT(*) FROM n WHERE v > 0").unwrap()[0][0], Value::Int(2));
    assert_eq!(db.query("SELECT COUNT(*) FROM n WHERE v IS NULL").unwrap()[0][0], Value::Int(1));
    // Aggregates skip NULLs; COUNT(*) does not.
    let r = &db.query("SELECT COUNT(*), COUNT(v), SUM(v), AVG(v) FROM n").unwrap()[0];
    assert_eq!(r[0], Value::Int(3));
    assert_eq!(r[1], Value::Int(2));
    assert_eq!(r[2], Value::Int(40));
    assert_eq!(r[3], Value::Float(20.0));
    // Arithmetic propagates NULL.
    let rows = db.query("SELECT v + 1 FROM n ORDER BY id").unwrap();
    assert_eq!(rows[1][0], Value::Null);
}

#[test]
fn computed_expressions_and_order_by_expression() {
    let db = fresh("COLUMN");
    let rows = db
        .query("SELECT id, x * 2 + 1 AS score FROM m ORDER BY x DESC, id LIMIT 3")
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0][1], Value::Int(99)); // x = 49 → 99
}

#[test]
fn insert_conflicts_and_constraints_via_sql() {
    let db = fresh("COLUMN");
    // Duplicate PK.
    assert!(db.execute("INSERT INTO m VALUES (1, 'a', 0, 0.0)").is_err());
    // Arity mismatch.
    assert!(db.execute("INSERT INTO m VALUES (1000, 'a')").is_err());
    // Type mismatch.
    assert!(db.execute("INSERT INTO m VALUES (1000, 5, 0, 0.0)").is_err());
    // NULL PK.
    assert!(db.execute("INSERT INTO m VALUES (NULL, 'a', 0, 0.0)").is_err());
    // Nothing half-applied.
    assert_eq!(
        db.query("SELECT COUNT(*) FROM m").unwrap()[0][0],
        Value::Int(500)
    );
}
