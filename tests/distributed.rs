//! Integration tests for the distributed layer: cluster vs. single-node
//! oracle, fault tolerance, convergence.

use oltapdb::common::{row, DataType, Field, Schema, Value};
use oltapdb::core::Database;
use oltapdb::dist::{ClusterConfig, DistributedTable, RaftConfig};
use oltapdb::storage::{CmpOp, ScanPredicate};
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::with_primary_key(
            vec![
                Field::not_null("id", DataType::Int64),
                Field::new("g", DataType::Int64),
                Field::new("v", DataType::Int64),
            ],
            &["id"],
        )
        .unwrap(),
    )
}

#[test]
fn cluster_matches_single_node_database() {
    let cluster = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
    let local = Database::new();
    local
        .execute("CREATE TABLE t (id BIGINT PRIMARY KEY, g BIGINT, v BIGINT)")
        .unwrap();

    for i in 0..150i64 {
        let (g, v) = (i % 5, (i * 13) % 97);
        cluster.insert(row![i, g, v]).unwrap();
        local
            .execute(&format!("INSERT INTO t VALUES ({i}, {g}, {v})"))
            .unwrap();
    }

    for threshold in [0i64, 30, 96] {
        let pred = ScanPredicate::single(2, CmpOp::Gt, Value::Int(threshold));
        let (dc, ds) = cluster.scan_aggregate(&pred, 2).unwrap();
        let rows = local
            .query(&format!(
                "SELECT COUNT(*), SUM(v) FROM t WHERE v > {threshold}"
            ))
            .unwrap();
        assert_eq!(Value::Int(dc as i64), rows[0][0], "count @ {threshold}");
        let local_sum = match &rows[0][1] {
            Value::Null => 0,
            v => v.as_int().unwrap(),
        };
        assert_eq!(ds, local_sum, "sum @ {threshold}");
    }

    // Row-level equality through collect_all.
    let cluster_rows = cluster.collect_all().unwrap();
    let mut local_rows = local.query("SELECT * FROM t ORDER BY id").unwrap();
    local_rows.sort();
    assert_eq!(cluster_rows, local_rows);
}

#[test]
fn duplicate_keys_rejected_cluster_wide() {
    let cluster = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
    cluster.insert(row![1i64, 0i64, 0i64]).unwrap();
    // The replicated apply path swallows the duplicate (log is authority),
    // so verify via row count: a second insert of the same key must not
    // create a second visible row.
    let _ = cluster.insert(row![1i64, 0i64, 99i64]);
    cluster.wait_converged(Duration::from_secs(10));
    let rows = cluster.collect_all().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][2], Value::Int(0), "first writer wins");
}

#[test]
fn rolling_single_node_failures() {
    let cfg = ClusterConfig {
        nodes: 3,
        replication: 3,
        partitions: 3,
        raft: RaftConfig::default(),
    };
    let cluster = DistributedTable::new(schema(), cfg).unwrap();
    let mut next = 0i64;
    for round in 0..3usize {
        // Crash one node per round, keep writing, restart it.
        cluster.crash_node(round);
        for _ in 0..30 {
            cluster.insert(row![next, 0i64, 1i64]).unwrap();
            next += 1;
        }
        cluster.restart_node(round);
        assert!(
            cluster.wait_converged(Duration::from_secs(20)),
            "round {round}: replicas failed to converge"
        );
    }
    let (count, sum) = cluster.scan_aggregate(&ScanPredicate::all(), 2).unwrap();
    assert_eq!(count, 90);
    assert_eq!(sum, 90);
}

#[test]
fn all_replicas_identical_after_convergence() {
    let cluster = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
    for i in 0..60i64 {
        cluster.insert(row![i, i % 3, i]).unwrap();
    }
    assert!(cluster.wait_converged(Duration::from_secs(10)));
    for g in cluster.groups() {
        let views: Vec<Vec<oltapdb::common::Row>> = g
            .replicas
            .iter()
            .map(|r| {
                let mut rows: Vec<_> = r
                    .table()
                    .scan(
                        &[0, 1, 2],
                        &ScanPredicate::all(),
                        r.mgr().now(),
                        oltapdb::common::ids::TxnId(u64::MAX - 31),
                        4096,
                    )
                    .unwrap()
                    .iter()
                    .flat_map(|b| b.to_rows())
                    .collect();
                rows.sort();
                rows
            })
            .collect();
        for w in views.windows(2) {
            assert_eq!(w[0], w[1], "replica divergence in partition {}", g.id);
        }
    }
}
