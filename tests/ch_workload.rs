//! Integration test: a short CH-benCHmark mixed run, then invariant
//! checks over the resulting state.

use oltap_bench::ch::{ch_queries, load_ch, ChTerminal, LoadSpec, TxnMix};
use oltapdb::core::{Database, TableFormat};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn mixed_run_preserves_invariants() {
    let db = Database::new();
    load_ch(
        &db,
        LoadSpec {
            warehouses: 1,
            format: TableFormat::Column,
            seed: 5,
        },
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    // Two terminals + one analyst + maintenance, concurrently.
    let stats = std::thread::scope(|s| {
        let mut terminals = Vec::new();
        for t in 0..2u64 {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            terminals.push(s.spawn(move || {
                let mut term = ChTerminal::new(db, 1, 50 + t);
                let mix = TxnMix::default();
                for _ in 0..150 {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    term.run_one(&mix).unwrap();
                }
                term.stats
            }));
        }
        let analyst = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let queries = ch_queries();
                let mut answered = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for q in &queries {
                        db.query(q.sql).unwrap();
                        answered += 1;
                    }
                    db.maintenance();
                }
                answered
            })
        };
        let stats: Vec<_> = terminals.into_iter().map(|t| t.join().unwrap()).collect();
        stop.store(true, Ordering::SeqCst);
        let answered = analyst.join().unwrap();
        assert!(answered > 0);
        stats
    });

    let committed: u64 = stats.iter().map(|s| s.committed).sum();
    assert!(committed > 100, "too few transactions committed: {committed}");

    // Invariant 1: order lines match declared line counts.
    let declared = db.query("SELECT SUM(o_ol_cnt) FROM orders").unwrap()[0][0]
        .as_int()
        .unwrap();
    let actual = db.query("SELECT COUNT(*) FROM order_line").unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(declared, actual);

    // Invariant 2: no orphan order lines (every line joins to an order).
    let lines_joined = db
        .query(
            "SELECT COUNT(*) FROM order_line l JOIN orders o \
             ON l.ol_w_id = o.o_w_id AND l.ol_d_id = o.o_d_id AND l.ol_o_id = o.o_id",
        )
        .unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(lines_joined, actual);

    // Invariant 3: stock never negative by more than reasonable churn
    // (quantities started 10..100 and NewOrder subtracts ≤ 10 per hit —
    // what matters is that s_ytd equals the total subtracted quantity).
    let ytd = db.query("SELECT SUM(s_ytd) FROM stock").unwrap()[0][0]
        .as_int()
        .unwrap();
    assert!(ytd >= 0);

    // Invariant 4: payment counters moved together.
    let (cnt, ytd_pay) = {
        let r = &db
            .query("SELECT SUM(c_payment_cnt), SUM(c_ytd_payment) FROM customer")
            .unwrap()[0];
        (r[0].as_int().unwrap(), r[1].as_float().unwrap())
    };
    // Initial load gives every customer cnt=1, ytd=10.
    let customers = db.query("SELECT COUNT(*) FROM customer").unwrap()[0][0]
        .as_int()
        .unwrap();
    assert!(cnt >= customers);
    assert!(ytd_pay >= 10.0 * customers as f64);

    // Results identical before/after a final full maintenance pass.
    let q = "SELECT o_ol_cnt, COUNT(*) FROM orders GROUP BY o_ol_cnt ORDER BY o_ol_cnt";
    let before = db.query(q).unwrap();
    db.maintenance();
    db.maintenance();
    assert_eq!(db.query(q).unwrap(), before);
}
