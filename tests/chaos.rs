//! Chaos suite: seeded fault-injection scenarios asserting the system's
//! safety invariants under crashes, message loss, partitions, and torn
//! writes.
//!
//! Every scenario derives all randomness from an explicit seed, so a
//! failure reproduces by re-running with the same seed (see
//! `DESIGN.md` § "Fault model & chaos testing" and the README how-to).
//! The invariants checked here are the ones that must hold on *every*
//! schedule, not just the replayed one:
//!
//! 1. Committed (quorum-acked / WAL-flushed) writes survive.
//! 2. Recovery never resurrects unacknowledged data.
//! 3. Replicas converge to identical state once faults stop.
//! 4. Queries past their deadline terminate promptly with a clean error.

use oltapdb::common::fault::{points, FaultInjector, FaultPoint};
use oltapdb::common::{row, DataType, DbError, Field, Schema, Value};
use oltapdb::common::Row;
use oltapdb::core::{Database, DbConfig};
use oltapdb::dist::{
    ClusterConfig, DistributedTable, RaftConfig, RaftGroup, TwoPcCoordinator, TwoPcOutcome,
};
use std::sync::Arc;
use std::time::Duration;

/// Master seed for the suite; per-scenario seeds derive from it so the
/// scenarios stay independent.
const SUITE_SEED: u64 = 0xC4A0_5EED;

fn seed_for(scenario: u64) -> u64 {
    SUITE_SEED ^ scenario.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::with_primary_key(
            vec![
                Field::not_null("id", DataType::Int64),
                Field::new("v", DataType::Int64),
            ],
            &["id"],
        )
        .unwrap(),
    )
}

/// Collapses a node's applied log into index → command, panicking if the
/// node ever applied two *different* commands at one index (a state-machine
/// safety violation; benign re-application after restart applies the same
/// command again and is allowed).
fn applied_map(g: &RaftGroup, node: usize) -> std::collections::BTreeMap<u64, Vec<u8>> {
    let mut m = std::collections::BTreeMap::new();
    for (idx, cmd) in g.applied[node].lock().iter() {
        match m.get(idx) {
            Some(prev) => assert_eq!(
                prev, cmd,
                "node {node} applied two different commands at index {idx}"
            ),
            None => {
                m.insert(*idx, cmd.clone());
            }
        }
    }
    m
}

/// Waits until every node has applied at least `n_cmds` commands and all
/// nodes' applied maps are identical (Raft's state-machine safety property
/// — the invariant that must hold on every schedule). While waiting,
/// asserts that nodes never disagree on an index both have applied.
/// Indexes need not start at 1: leaders may hold no-op entries that are
/// skipped by the apply callback.
fn wait_applied_consistent(g: &RaftGroup, n_cmds: usize, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let maps: Vec<_> = (0..g.nodes.len()).map(|i| applied_map(g, i)).collect();
        for w in maps.windows(2) {
            for (idx, cmd) in &w[0] {
                if let Some(other) = w[1].get(idx) {
                    assert_eq!(cmd, other, "nodes disagree at index {idx}");
                }
            }
        }
        if maps[0].len() >= n_cmds && maps.iter().all(|m| *m == maps[0]) {
            return true;
        }
        if std::time::Instant::now() > deadline {
            for (i, m) in maps.iter().enumerate() {
                eprintln!(
                    "node {i}: {} applied, index range {:?}..{:?}",
                    m.len(),
                    m.keys().next(),
                    m.keys().next_back()
                );
            }
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Scenario 1 — message loss: every node's transport drops ~20% of Raft
/// messages and duplicates a few more. Retransmission (AppendEntries
/// retries driven by heartbeats) must still commit every proposal, and
/// all replicas must apply the same command sequence.
#[test]
fn chaos_message_loss_still_commits() {
    let seed = seed_for(1);
    let g = RaftGroup::spawn_with_faults(3, RaftConfig::default(), |i| {
        let f = FaultInjector::new(seed ^ i as u64);
        f.arm(points::RAFT_DROP_MSG, FaultPoint::with_probability(0.2));
        f.arm(points::RAFT_DUP_MSG, FaultPoint::with_probability(0.05));
        f
    });
    for i in 0..30u64 {
        g.propose(format!("cmd-{i}").into_bytes(), Duration::from_secs(20))
            .expect("proposal must commit despite message loss");
    }
    assert!(
        wait_applied_consistent(&g, 30, Duration::from_secs(20)),
        "replicas diverged under message loss (seed={seed:#x})"
    );
    // The lossy transport really was lossy.
    assert!(
        g.faults.iter().map(|f| f.fired_count()).sum::<u64>() > 0,
        "no faults fired — scenario vacuous"
    );
}

/// Scenario 2 — network partition: the leader is isolated; the majority
/// side elects a new leader and keeps committing. After healing, the old
/// leader rejoins and converges. Nothing committed by the majority is
/// ever lost.
#[test]
fn chaos_partition_majority_keeps_committing() {
    let seed = seed_for(2);
    let g = RaftGroup::spawn_with_faults(5, RaftConfig::default(), |i| {
        let f = FaultInjector::new(seed ^ i as u64);
        // Mild background delay keeps the schedule interesting without
        // making elections impossible.
        f.arm(points::RAFT_DELAY_MSG, FaultPoint::with_probability(0.1));
        f
    });
    for i in 0..5u64 {
        g.propose(format!("pre-{i}").into_bytes(), Duration::from_secs(10))
            .unwrap();
    }
    let old_leader = g.wait_for_leader(Duration::from_secs(5));
    g.network.isolate(g.ids[old_leader], &g.ids);

    // The majority side must recover and accept new writes.
    for i in 0..10u64 {
        g.propose(format!("during-{i}").into_bytes(), Duration::from_secs(20))
            .expect("majority must keep committing during the partition");
    }

    g.network.reconnect(g.ids[old_leader], &g.ids);
    assert!(
        wait_applied_consistent(&g, 15, Duration::from_secs(20)),
        "replicas diverged after partition heal (seed={seed:#x})"
    );
    // The pre-partition and during-partition commands all survived, in
    // order, on every node.
    let applied = g.applied[0].lock().clone();
    let cmds: Vec<String> = applied
        .iter()
        .map(|(_, c)| String::from_utf8(c.clone()).unwrap())
        .collect();
    for i in 0..5 {
        assert!(cmds.contains(&format!("pre-{i}")), "lost pre-{i}");
    }
    for i in 0..10 {
        assert!(cmds.contains(&format!("during-{i}")), "lost during-{i}");
    }
}

/// Scenario 3 — leader crash via the `raft.crash_node` point: the leader's
/// own event loop kills itself mid-run (a kill -9 between events). The
/// survivors re-elect and keep committing; the crashed node catches up
/// after restart.
#[test]
fn chaos_leader_crash_and_catchup() {
    let seed = seed_for(3);
    let g = RaftGroup::spawn_with_faults(3, RaftConfig::default(), |i| {
        FaultInjector::new(seed ^ i as u64)
    });
    for i in 0..8u64 {
        g.propose(format!("a-{i}").into_bytes(), Duration::from_secs(10))
            .unwrap();
    }
    let leader = g.wait_for_leader(Duration::from_secs(5));
    // Arm the crash point on the leader only: it dies on its next loop
    // iteration, exactly like a kill -9.
    g.faults[leader].arm(points::RAFT_CRASH_NODE, FaultPoint::times(1));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while g.nodes[leader].is_running() {
        assert!(
            std::time::Instant::now() < deadline,
            "armed crash point never fired"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Survivors elect a new leader and commit more entries.
    for i in 0..8u64 {
        g.propose(format!("b-{i}").into_bytes(), Duration::from_secs(20))
            .expect("survivors must commit after leader crash");
    }

    g.nodes[leader].restart();
    assert!(
        wait_applied_consistent(&g, 16, Duration::from_secs(20)),
        "crashed leader failed to catch up (seed={seed:#x})"
    );
}

/// Scenario 4 — torn WAL tail: a seeded torn write cuts a commit record
/// at an arbitrary byte offset; the process "crashes" (drop) and the
/// database reopens from the same file. Every acknowledged commit is
/// recovered; the torn transaction is not resurrected.
#[test]
fn chaos_torn_wal_tail_recovery() {
    let seed = seed_for(4);
    let dir = std::env::temp_dir().join(format!("oltap_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos_torn.wal");
    let _ = std::fs::remove_file(&path);

    let mut acked: Vec<i64> = Vec::new();
    {
        let faults = FaultInjector::new(seed);
        // Tear one commit after the schema DDL and a few acked rows. A
        // torn tail IS the crash: the writer stops at the failed commit
        // (real processes don't keep appending past a failed flush).
        faults.arm(points::WAL_TORN_WRITE, FaultPoint::times(1).after(4));
        let db = Database::with_config(DbConfig {
            wal_path: Some(path.clone()),
            faults: Some(faults),
            ..DbConfig::default()
        })
        .unwrap();
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)")
            .unwrap();
        let mut torn = false;
        for i in 0..10i64 {
            match db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 2)) {
                Ok(_) => acked.push(i),
                Err(e) => {
                    // The torn write: this commit was never acknowledged.
                    assert!(
                        matches!(e, DbError::FaultInjected(_)),
                        "unexpected error: {e}"
                    );
                    torn = true;
                    break;
                }
            }
        }
        assert!(torn, "torn-write fault never fired (seed={seed:#x})");
        assert_eq!(acked, vec![0, 1, 2], "DDL + 3 commits precede the tear");
        // Process "crashes" here: db dropped without clean shutdown.
    }

    let db = Database::open(&path).unwrap();
    let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
    let got: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(got, acked, "recovery must equal the acked set, exactly");
    for r in &rows {
        assert_eq!(
            r[1],
            Value::Int(r[0].as_int().unwrap() * 2),
            "row payload corrupted by recovery"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

/// Scenario 5 — node crash + restart with a wiped data disk, under a
/// lossy network: the restarted replicas rebuild purely from their Raft
/// logs and the whole cluster converges to the pre-crash state.
#[test]
fn chaos_crash_restart_rebuilds_from_log() {
    let seed = seed_for(5);
    let faults = FaultInjector::new(seed);
    faults.arm(points::RAFT_DROP_MSG, FaultPoint::with_probability(0.05));
    let cfg = ClusterConfig {
        nodes: 3,
        replication: 3,
        partitions: 2,
        raft: RaftConfig::default(),
    };
    let t = DistributedTable::new_with_faults(schema(), cfg, faults).unwrap();
    for i in 0..30i64 {
        t.insert(row![i, i * 3]).unwrap();
    }
    assert!(t.wait_converged(Duration::from_secs(20)));
    let before = t.collect_all().unwrap();
    assert_eq!(before.len(), 30);

    // Node 1 dies and loses its data disk; writes continue on the
    // surviving majority while it is down.
    t.crash_node(1);
    for i in 30..40i64 {
        t.insert(row![i, i * 3]).unwrap();
    }
    t.restart_node_rebuilt(1);
    assert!(
        t.wait_converged(Duration::from_secs(30)),
        "wiped node failed to rebuild (seed={seed:#x})"
    );
    let after = t.collect_all().unwrap();
    assert_eq!(after.len(), 40, "committed writes lost across crash");
    assert_eq!(&after[..30], &before[..], "pre-crash rows changed");
}

/// Scenario 6 — reproducibility: the same seed produces the identical
/// fault schedule, decision log, and byte-identical WAL image; a
/// different seed diverges. This is what makes every other scenario
/// replayable.
#[test]
fn chaos_same_seed_reproduces_schedule() {
    let run = |seed: u64| {
        let faults = FaultInjector::new(seed);
        faults.arm(points::WAL_TORN_WRITE, FaultPoint::with_probability(0.3));
        faults.arm(points::WAL_CRC_CORRUPT, FaultPoint::with_probability(0.1));
        let wal = oltapdb::txn::wal::Wal::with_faults(Arc::clone(&faults));
        let mut outcomes = Vec::new();
        for i in 0..64u64 {
            let rec = oltapdb::txn::wal::CommitRecord {
                txn: oltapdb::common::ids::TxnId(i + 1),
                commit_ts: i + 1,
                ops: vec![oltapdb::txn::wal::WalOp::Insert {
                    table: "t".into(),
                    row: row![i as i64, 0i64],
                }],
            };
            outcomes.push(wal.append(&rec).is_ok());
        }
        (outcomes, wal.to_bytes(), faults.decisions())
    };
    let (o1, b1, d1) = run(0xABCD);
    let (o2, b2, d2) = run(0xABCD);
    assert_eq!(o1, o2, "same seed, different append outcomes");
    assert_eq!(b1, b2, "same seed, different WAL bytes");
    assert_eq!(d1, d2, "same seed, different decision log");
    let (o3, _, _) = run(0xABCE);
    assert_ne!(o1, o3, "different seed should produce a different schedule");
}

/// Scenario 7 — query deadlines under load: a SELECT whose deadline has
/// expired terminates within one batch boundary with a cancellation
/// error, while the same session keeps working afterwards. (The unit
/// variant lives in oltap-core; this exercises it through SQL on a
/// larger table.)
#[test]
fn chaos_expired_deadline_terminates_promptly() {
    let db = Database::new();
    db.execute("CREATE TABLE m (id BIGINT PRIMARY KEY, v BIGINT)")
        .unwrap();
    for chunk in 0..8 {
        let vals: Vec<String> = (0..500)
            .map(|i| {
                let id = chunk * 500 + i;
                format!("({id}, {})", id % 97)
            })
            .collect();
        db.execute(&format!("INSERT INTO m VALUES {}", vals.join(", ")))
            .unwrap();
    }
    let mut s = db.session();
    s.set_query_timeout(Some(Duration::ZERO));
    let started = std::time::Instant::now();
    let err = s
        .execute("SELECT v, COUNT(*) FROM m GROUP BY v ORDER BY v")
        .unwrap_err();
    // Deadline expiry is its own typed error, distinct from an explicit
    // cancel — callers can retry deadline losses but not user cancels.
    assert!(matches!(err, DbError::DeadlineExceeded(_)), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "cancellation took too long: {:?}",
        started.elapsed()
    );
    s.set_query_timeout(Some(Duration::from_secs(30)));
    let rows = s.execute("SELECT COUNT(*) FROM m").unwrap();
    assert_eq!(rows.rows()[0][0], Value::Int(4000));
}

/// Scenario 8 — join-build faults: `exec.join_build_fail` kills
/// partitioned-build morsels probabilistically; the pipeline driver
/// retries each boundary transparently and the parallel join still
/// matches the serial baseline. An `always()`-armed variant must exhaust
/// the bounded retries and surface a clean `FaultInjected` error rather
/// than hanging or corrupting the table.
#[test]
fn chaos_join_build_faults_retry_then_give_up() {
    let seed = seed_for(8);

    let setup = |faults: Arc<FaultInjector>| {
        let db = Database::with_config(DbConfig {
            wal_path: None,
            faults: Some(faults),
            ..DbConfig::default()
        })
        .unwrap();
        db.execute(
            "CREATE TABLE fact (id BIGINT PRIMARY KEY, g BIGINT, v BIGINT) USING FORMAT COLUMN",
        )
        .unwrap();
        db.execute("CREATE TABLE dim (g BIGINT PRIMARY KEY, w BIGINT) USING FORMAT ROW")
            .unwrap();
        let fact = db.table("fact").unwrap();
        let tx = db.txn_manager().begin();
        for i in 0..400i64 {
            fact.insert(&tx, row![i, i % 12, i % 7]).unwrap();
        }
        tx.commit().unwrap();
        let dim = db.table("dim").unwrap();
        let tx = db.txn_manager().begin();
        for g in 0..100i64 {
            dim.insert(&tx, row![g, g * 10]).unwrap();
        }
        tx.commit().unwrap();
        db.maintenance();
        db
    };
    let sql = "SELECT fact.id, dim.w FROM fact JOIN dim ON fact.g = dim.g";

    // Transient fault: the first build morsel fails three times; each is
    // retried transparently (the bound is 16) and results are unchanged.
    let faults = FaultInjector::new(seed);
    faults.arm(points::EXEC_JOIN_BUILD_FAIL, FaultPoint::times(3));
    let db = setup(Arc::clone(&faults));
    db.set_parallelism(1);
    let serial = db.query(sql).unwrap();
    db.set_parallelism(4);
    let parallel = db.query(sql).unwrap();
    assert_eq!(serial, parallel, "join diverged under build faults");
    assert!(
        faults.fired_count() > 0,
        "join-build fault never fired (seed={seed:#x})"
    );

    // Permanent fault: the bounded retry must give up with a clean error.
    let faults = FaultInjector::new(seed ^ 1);
    faults.arm(points::EXEC_JOIN_BUILD_FAIL, FaultPoint::always());
    let db = setup(faults);
    db.set_parallelism(4);
    let err = db.query(sql).unwrap_err();
    assert!(matches!(err, DbError::FaultInjected(_)), "{err}");
    // The engine survives: disarmed queries on the same database work.
    db.set_parallelism(1);
    assert!(!db.query(sql).unwrap().is_empty());
}

/// A tiny memory configuration: per-query budgets small enough that the
/// scenarios' joins and aggregations must spill.
fn tiny_memory() -> oltapdb::core::MemoryConfig {
    oltapdb::core::MemoryConfig {
        total_bytes: 1 << 20,
        oltp_bytes: 256 << 10,
        olap_bytes: 768 << 10,
        query_bytes: 16 << 10,
    }
}

/// A mixed fact/dim database under memory governance and the given
/// injector, with enough rows that a 16 KiB query budget cannot hold a
/// join build or aggregation state resident.
fn governed_db(faults: Arc<FaultInjector>) -> Arc<Database> {
    let db = Database::with_config(DbConfig {
        wal_path: None,
        faults: Some(faults),
        memory: Some(tiny_memory()),
        ..DbConfig::default()
    })
    .unwrap();
    db.execute(
        "CREATE TABLE fact (id BIGINT PRIMARY KEY, g BIGINT, v BIGINT) USING FORMAT COLUMN",
    )
    .unwrap();
    db.execute("CREATE TABLE dim (g BIGINT PRIMARY KEY, w BIGINT) USING FORMAT ROW")
        .unwrap();
    let fact = db.table("fact").unwrap();
    let tx = db.txn_manager().begin();
    for i in 0..3000i64 {
        fact.insert(&tx, row![i, i % 500, i % 13]).unwrap();
    }
    tx.commit().unwrap();
    let dim = db.table("dim").unwrap();
    let tx = db.txn_manager().begin();
    for g in 0..500i64 {
        dim.insert(&tx, row![g, g * 10]).unwrap();
    }
    tx.commit().unwrap();
    db.maintenance();
    db
}

/// Scenario 9 — `mem.reserve_fail` mid join-build: seeded probabilistic
/// reservation failures force the radix build to spill partitions at
/// arbitrary points. The query must still complete, serial and parallel
/// results must stay byte-identical, and nothing may panic.
#[test]
fn chaos_mem_reserve_fail_mid_join_build() {
    let seed = seed_for(9);
    let faults = FaultInjector::new(seed);
    faults.arm(points::MEM_RESERVE_FAIL, FaultPoint::with_probability(0.25));
    let db = governed_db(Arc::clone(&faults));
    let sql = "SELECT fact.id, dim.w FROM fact JOIN dim ON fact.g = dim.g ORDER BY fact.id";
    db.set_parallelism(1);
    let serial = db.query(sql).unwrap();
    db.set_parallelism(4);
    let parallel = db.query(sql).unwrap();
    assert_eq!(serial.len(), 3000);
    assert_eq!(serial, parallel, "join diverged under reserve faults");
    assert!(
        faults.fired_count() > 0,
        "mem.reserve_fail never fired (seed={seed:#x})"
    );
    let gov = db.memory_governor().unwrap();
    assert!(gov.spill_events() > 0, "no spills — scenario vacuous");

    // `always()`: every reservation is rejected. With a spill dir the
    // engine degrades all the way to disk and still answers correctly.
    let faults = FaultInjector::new(seed ^ 1);
    faults.arm(points::MEM_RESERVE_FAIL, FaultPoint::always());
    let db = governed_db(faults);
    db.set_parallelism(4);
    let rows = db.query(sql).unwrap();
    assert_eq!(rows, serial, "always-failing reservations changed results");
}

/// Scenario 10 — `mem.reserve_fail` mid aggregate: the hash aggregator
/// freezes its group map and spills raw rows when reservations fail; the
/// replayed partitions must merge to exactly the unspilled answer, on
/// both the serial and the parallel path.
#[test]
fn chaos_mem_reserve_fail_mid_aggregate_spill() {
    let seed = seed_for(10);
    let faults = FaultInjector::new(seed);
    faults.arm(points::MEM_RESERVE_FAIL, FaultPoint::with_probability(0.25));
    let db = governed_db(Arc::clone(&faults));
    let sql = "SELECT g, COUNT(*), SUM(v), MIN(id), MAX(id) FROM fact GROUP BY g ORDER BY g";
    db.set_parallelism(1);
    let serial = db.query(sql).unwrap();
    db.set_parallelism(4);
    let parallel = db.query(sql).unwrap();
    assert_eq!(serial.len(), 500);
    assert_eq!(serial, parallel, "aggregate diverged under reserve faults");
    assert!(
        faults.fired_count() > 0,
        "mem.reserve_fail never fired (seed={seed:#x})"
    );

    // Ungoverned baseline: spilling must be invisible in the results.
    let clean = Database::new();
    clean
        .execute(
            "CREATE TABLE fact (id BIGINT PRIMARY KEY, g BIGINT, v BIGINT) USING FORMAT COLUMN",
        )
        .unwrap();
    let fact = clean.table("fact").unwrap();
    let tx = clean.txn_manager().begin();
    for i in 0..3000i64 {
        fact.insert(&tx, row![i, i % 500, i % 13]).unwrap();
    }
    tx.commit().unwrap();
    assert_eq!(
        clean.query(sql).unwrap(),
        serial,
        "spilled aggregation differs from the in-memory answer"
    );
}

/// Scenario 11 — spill hygiene: per-query scratch dirs vanish when the
/// query finishes, and crash leftovers under a durable database's spill
/// root are purged by recovery at next open.
#[test]
fn chaos_spill_files_cleaned_up_and_purged_after_crash() {
    let seed = seed_for(11);
    let dir = std::env::temp_dir().join(format!("oltap_chaos_spill_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spill_leak.wal");
    let _ = std::fs::remove_file(&path);

    let spill_entries = |root: &std::path::Path| -> usize {
        match std::fs::read_dir(root) {
            Ok(rd) => rd.count(),
            Err(_) => 0,
        }
    };

    let root = {
        let faults = FaultInjector::new(seed);
        faults.arm(points::MEM_RESERVE_FAIL, FaultPoint::with_probability(0.5));
        let db = Database::with_config(DbConfig {
            wal_path: Some(path.clone()),
            faults: Some(faults),
            memory: Some(tiny_memory()),
            ..DbConfig::default()
        })
        .unwrap();
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, g BIGINT) USING FORMAT COLUMN")
            .unwrap();
        // SQL inserts so the rows are WAL-logged and survive the "crash".
        for chunk in (0..3000i64).collect::<Vec<_>>().chunks(500) {
            let values: Vec<String> = chunk.iter().map(|i| format!("({i}, {})", i % 400)).collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
                .unwrap();
        }
        let rows = db
            .query("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g")
            .unwrap();
        assert_eq!(rows.len(), 400);
        let root = db.spill_root().to_path_buf();
        // Completed queries leave nothing behind, even after spilling.
        assert_eq!(
            spill_entries(&root),
            0,
            "spill scratch leaked after query completion"
        );
        // Simulate a crash mid-query: a scratch dir exists at the moment
        // the process dies and its Drop never runs.
        std::fs::create_dir_all(root.join("q-crash-leftover")).unwrap();
        std::fs::write(root.join("q-crash-leftover/agg-p0-0.spill"), b"junk").unwrap();
        root
        // db dropped here: the "crash".
    };
    assert!(spill_entries(&root) > 0, "crash artifact setup failed");

    // Recovery startup purges everything under the spill root.
    let db = Database::open(&path).unwrap();
    assert_eq!(
        spill_entries(&root),
        0,
        "recovery did not purge crash-orphaned spill files"
    );
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(3000)
    );
    std::fs::remove_file(&path).unwrap();
}

// ---------------------------------------------------------------------------
// Cross-shard two-phase commit scenarios (12–15). All run on a small
// partitioned cluster plus a separately-replicated coordinator log; the
// invariant under every fault is ATOMICITY: after recovery, either every
// shard shows the batch or no shard does.
// ---------------------------------------------------------------------------

/// A 4-partition cluster for the 2PC scenarios.
fn twopc_cluster(faults: Arc<FaultInjector>, raft: RaftConfig) -> DistributedTable {
    let cfg = ClusterConfig {
        nodes: 3,
        replication: 3,
        partitions: 4,
        raft,
    };
    DistributedTable::new_with_faults(schema(), cfg, faults).unwrap()
}

/// Rows that provably hash to more than one partition.
fn batch_rows(t: &DistributedTable, n: i64) -> Vec<Row> {
    let rows: Vec<Row> = (0..n).map(|i| row![i, i * 10]).collect();
    let parts: std::collections::BTreeSet<usize> = rows
        .iter()
        .map(|r| t.partition_of(r).unwrap())
        .collect();
    assert!(parts.len() > 1, "batch must span multiple shards");
    rows
}

/// Waits for every replica's prepared-but-undecided set to drain.
fn wait_no_doubt(t: &DistributedTable, timeout: Duration) {
    let deadline = std::time::Instant::now() + timeout;
    while t.groups().iter().any(|g| !g.in_doubt_gtxns().is_empty()) {
        assert!(
            std::time::Instant::now() < deadline,
            "in-doubt transactions never resolved"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Scenario 12 — coordinator crash between prepare and commit: every
/// shard is prepared, then the coordinator dies before logging any
/// decision. Participants hold the prepared (invisible) versions; a
/// successor coordinator finds no decision record and resolves by
/// presumed abort. No shard may show any batch row, ever.
#[test]
fn chaos_2pc_coordinator_crash_between_prepare_and_commit() {
    let seed = seed_for(12);
    let coord_faults = FaultInjector::new(seed);
    coord_faults.arm(
        points::TWOPC_COORD_CRASH_AFTER_PREPARE,
        FaultPoint::times(1),
    );
    let t = twopc_cluster(FaultInjector::disabled(), RaftConfig::default());
    let coord = TwoPcCoordinator::new(3, Arc::clone(&coord_faults)).unwrap();

    let rows = batch_rows(&t, 8);
    let err = coord.commit_rows(&t, rows).unwrap_err();
    let gtxn = match err {
        DbError::TxnInDoubt { gtxn } => gtxn,
        e => panic!("expected TxnInDoubt, got {e}"),
    };
    // The crash point really fired, and before any decision was logged.
    assert!(
        coord_faults
            .decisions_at(points::TWOPC_COORD_CRASH_AFTER_PREPARE)
            .iter()
            .any(|d| d.fired),
        "crash point never fired — scenario vacuous (seed={seed:#x})"
    );
    assert_eq!(coord.decision_for(gtxn), None, "no decision may exist");
    // Participants are genuinely in doubt (prepared, invisible).
    assert!(
        t.groups().iter().any(|g| g.in_doubt_gtxns().contains(&gtxn)),
        "no participant holds a prepare — scenario vacuous"
    );
    assert_eq!(t.collect_all().unwrap(), Vec::<Row>::new());

    // Successor takes over the replicated log: presumed abort.
    let log = coord.log();
    drop(coord);
    let coord2 = TwoPcCoordinator::attach(log, FaultInjector::disabled()).unwrap();
    let report = coord2.resolve_in_doubt(&t).unwrap();
    assert_eq!(report.presumed_aborted, vec![gtxn]);
    assert_eq!(coord2.decision_for(gtxn), Some(false), "abort now durable");
    wait_no_doubt(&t, Duration::from_secs(15));
    assert_eq!(
        t.collect_all().unwrap(),
        Vec::<Row>::new(),
        "presumed-abort leaked rows (seed={seed:#x})"
    );
}

/// Scenario 13 — participant crash after prepare, coordinator crash after
/// decision: the worst double fault. One replica kills itself the moment
/// its prepare is applied; the coordinator then logs COMMIT but dies
/// before delivering it. The restarted participant re-stages the prepare
/// from its Raft log and stays in doubt until a successor coordinator
/// re-delivers the logged decision — the batch must then be complete on
/// every shard.
#[test]
fn chaos_2pc_participant_crash_resolved_at_recovery() {
    let seed = seed_for(13);
    let cluster_faults = FaultInjector::new(seed);
    cluster_faults.arm(
        points::TWOPC_PARTICIPANT_CRASH_PREPARED,
        FaultPoint::times(1),
    );
    let coord_faults = FaultInjector::new(seed ^ 1);
    coord_faults.arm(
        points::TWOPC_COORD_CRASH_AFTER_DECISION,
        FaultPoint::times(1),
    );
    let t = twopc_cluster(Arc::clone(&cluster_faults), RaftConfig::default());
    let coord = TwoPcCoordinator::new(3, Arc::clone(&coord_faults)).unwrap();

    let rows = batch_rows(&t, 8);
    let err = coord.commit_rows(&t, rows.clone()).unwrap_err();
    let gtxn = match err {
        DbError::TxnInDoubt { gtxn } => gtxn,
        e => panic!("expected TxnInDoubt, got {e}"),
    };
    assert_eq!(
        coord.decision_for(gtxn),
        Some(true),
        "decision was logged before the coordinator died"
    );
    // A participant replica actually died holding a prepare.
    assert!(
        cluster_faults
            .decisions_at(points::TWOPC_PARTICIPANT_CRASH_PREPARED)
            .iter()
            .any(|d| d.fired),
        "participant crash never fired — scenario vacuous (seed={seed:#x})"
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let dead: Vec<(usize, usize)> = t
            .groups()
            .iter()
            .enumerate()
            .flat_map(|(gi, g)| {
                g.replicas
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.raft.is_running())
                    .map(move |(ri, _)| (gi, ri))
            })
            .collect();
        if !dead.is_empty() {
            // Restart the dead replicas: each re-applies its log, which
            // re-stages the prepare — prepared state survives the crash.
            for (gi, ri) in dead {
                t.groups()[gi].replicas[ri].raft.restart();
            }
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "armed participant crash killed no replica"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Successor coordinator re-delivers the logged commit.
    let log = coord.log();
    drop(coord);
    let coord2 = TwoPcCoordinator::attach(log, FaultInjector::disabled()).unwrap();
    let report = coord2.resolve_in_doubt(&t).unwrap();
    assert!(report.resumed.contains(&gtxn), "logged commit must resume");
    wait_no_doubt(&t, Duration::from_secs(15));
    let mut expect = rows;
    expect.sort();
    assert_eq!(
        t.collect_all().unwrap(),
        expect,
        "committed batch incomplete after recovery (seed={seed:#x})"
    );
}

/// Scenario 14 — decision-message loss: the first three decision
/// deliveries vanish in flight. The coordinator must retry until every
/// participant applies the outcome; the commit completes in one call with
/// no external recovery.
#[test]
fn chaos_2pc_decision_message_loss_retried_until_resolved() {
    let seed = seed_for(14);
    let coord_faults = FaultInjector::new(seed);
    coord_faults.arm(points::TWOPC_DECISION_MSG_DROP, FaultPoint::times(3));
    let t = twopc_cluster(FaultInjector::disabled(), RaftConfig::default());
    let coord = TwoPcCoordinator::new(3, Arc::clone(&coord_faults)).unwrap();

    let rows = batch_rows(&t, 8);
    let outcome = coord.commit_rows(&t, rows.clone()).unwrap();
    assert_eq!(outcome, TwoPcOutcome::Committed);
    let drops = coord_faults
        .decisions_at(points::TWOPC_DECISION_MSG_DROP)
        .iter()
        .filter(|d| d.fired)
        .count();
    assert_eq!(drops, 3, "all armed message drops consumed (seed={seed:#x})");
    wait_no_doubt(&t, Duration::from_secs(15));
    let mut expect = rows;
    expect.sort();
    assert_eq!(t.collect_all().unwrap(), expect);
}

/// Scenario 15 — snapshot-install failure during catch-up: a node misses
/// enough writes that the leader has compacted past its position and must
/// send a snapshot; the first installs fail (armed fault). The leader
/// retries on subsequent heartbeats and the node still converges — from
/// the snapshot plus the log tail, not a full-history replay.
#[test]
fn chaos_2pc_snapshot_install_failure_falls_back_to_replay() {
    let seed = seed_for(15);
    let cluster_faults = FaultInjector::new(seed);
    cluster_faults.arm(points::RAFT_SNAPSHOT_INSTALL_FAIL, FaultPoint::times(2));
    let raft = RaftConfig {
        snapshot_threshold: Some(12),
        ..RaftConfig::default()
    };
    let cfg = ClusterConfig {
        nodes: 3,
        replication: 3,
        partitions: 1,
        raft,
    };
    let t = DistributedTable::new_with_faults(schema(), cfg, Arc::clone(&cluster_faults))
        .unwrap();
    for i in 0..10i64 {
        t.insert(row![i, i]).unwrap();
    }
    assert!(t.wait_converged(Duration::from_secs(15)));

    // Node 1 goes down and misses enough writes that every leader
    // compacts past its log position.
    t.crash_node(1);
    for i in 10..50i64 {
        t.insert(row![i, i]).unwrap();
    }
    let g = &t.groups()[0];
    {
        let deadline = std::time::Instant::now() + Duration::from_secs(15);
        loop {
            let compacted = g
                .replicas
                .iter()
                .filter(|r| r.raft.is_running())
                .filter_map(|r| r.raft.report())
                .any(|rep| rep.snap_index > 10);
            if compacted {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "leader never compacted — scenario vacuous (seed={seed:#x})"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    t.restart_node(1);
    assert!(
        t.wait_converged(Duration::from_secs(30)),
        "node failed to converge despite install retries (seed={seed:#x})"
    );
    assert!(
        cluster_faults
            .decisions_at(points::RAFT_SNAPSHOT_INSTALL_FAIL)
            .iter()
            .any(|d| d.fired),
        "install-failure fault never fired — scenario vacuous"
    );
    assert_eq!(t.collect_all().unwrap().len(), 50, "rows lost in catch-up");
    // The restarted replica recovered via snapshot + tail: it holds a
    // snapshot and applied far fewer entries than the full history.
    let rep = g.replicas[1].raft.report().unwrap();
    assert!(rep.snap_index > 0, "no snapshot on the restarted node");
    assert!(
        rep.applied_since_boot < 50,
        "node replayed the full history ({} entries) instead of using the snapshot",
        rep.applied_since_boot
    );
}

// ---------------------------------------------------------------------------
// Buffer-manager scenarios (16–17): columnar base data lives in on-disk
// page files behind a clock-evicted buffer pool, so torn page reads and
// eviction races are first-class fault surfaces. The invariants: page
// corruption surfaces as a typed error (never a panic, never silently
// wrong rows), and eviction interference never changes query results.

/// A paged column-store database: a `pages` fact table whose merged main
/// segments live in page files behind a `pool_bytes` buffer pool.
fn paged_db(faults: Arc<FaultInjector>, pool_bytes: u64) -> Arc<Database> {
    let db = Database::with_config(DbConfig {
        wal_path: None,
        faults: Some(faults),
        buffer: Some(oltapdb::core::BufferConfig {
            pool_bytes,
            page_rows: 64,
            page_root: None,
        }),
        ..DbConfig::default()
    })
    .unwrap();
    load_pages_table(&db);
    db
}

fn load_pages_table(db: &Arc<Database>) {
    db.execute(
        "CREATE TABLE pages (id BIGINT PRIMARY KEY, g BIGINT, v BIGINT) USING FORMAT COLUMN",
    )
    .unwrap();
    let t = db.table("pages").unwrap();
    let tx = db.txn_manager().begin();
    for i in 0..2000i64 {
        t.insert(&tx, row![i, i % 50, i * 7 % 17]).unwrap();
    }
    tx.commit().unwrap();
    // Merge the delta into paged main segments.
    db.maintenance();
}

/// Scenario 16 — `storage.page_read_fail`: a bit flips on the read path
/// of a column page. The CRC check must turn it into a typed
/// `Corruption` error from the query — no panic, no partial batch — and
/// because failed loads cache nothing, the very next read of the same
/// page succeeds with the correct bytes.
#[test]
fn chaos_corrupt_page_read_is_a_typed_error_not_a_panic() {
    let seed = seed_for(16);
    let faults = FaultInjector::new(seed);
    // Pool far smaller than the data: every query must fault pages back
    // in, so an armed read fault is guaranteed to be exercised.
    let db = paged_db(Arc::clone(&faults), 2048);
    let sql = "SELECT g, COUNT(*), SUM(v) FROM pages GROUP BY g ORDER BY g";
    let clean = db.query(sql).unwrap();
    assert_eq!(clean.len(), 50);
    let stats = db.buffer_stats().unwrap();
    assert!(stats.misses > 0, "paged scan faulted nothing — vacuous");

    faults.arm(points::STORAGE_PAGE_READ_FAIL, FaultPoint::times(2));
    for attempt in 0..2 {
        let err = db.query(sql).unwrap_err();
        assert!(
            matches!(err, DbError::Corruption(_)),
            "attempt {attempt}: expected Corruption, got {err} (seed={seed:#x})"
        );
    }
    assert_eq!(
        faults.fired_count(),
        2,
        "page-read fault never fired — scenario vacuous (seed={seed:#x})"
    );
    // The corruption was injected on the read path, not persisted, and a
    // failed load leaves no poisoned frame behind: the same query now
    // returns exactly the pre-fault answer.
    assert_eq!(db.query(sql).unwrap(), clean);
    // And the database still accepts writes afterwards.
    db.execute("INSERT INTO pages VALUES (99999, 0, 0)").unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM pages").unwrap()[0][0],
        Value::Int(2001)
    );
}

/// Scenario 17 — `buffer.evict_race` under a tiny pool: the clock hand's
/// chosen victim is re-pinned at the last moment (simulating a racing
/// reader), forcing the sweep to skip it and pick another frame. Results
/// must be byte-identical to a fully-resident database, serial and
/// parallel, while evictions actually happen.
#[test]
fn chaos_evict_race_never_changes_results() {
    let seed = seed_for(17);
    let faults = FaultInjector::new(seed);
    faults.arm(points::BUFFER_EVICT_RACE, FaultPoint::with_probability(0.3));
    let db = paged_db(Arc::clone(&faults), 2048);

    let resident = Database::new();
    load_pages_table(&resident);

    for sql in [
        "SELECT g, COUNT(*), SUM(v), MIN(id), MAX(id) FROM pages GROUP BY g ORDER BY g",
        "SELECT id, v FROM pages WHERE id >= 1900 ORDER BY id",
        "SELECT COUNT(*) FROM pages WHERE v > 8",
    ] {
        db.set_parallelism(1);
        let serial = db.query(sql).unwrap();
        db.set_parallelism(4);
        let parallel = db.query(sql).unwrap();
        let want = resident.query(sql).unwrap();
        assert_eq!(serial, want, "serial diverged: {sql} (seed={seed:#x})");
        assert_eq!(parallel, want, "parallel diverged: {sql} (seed={seed:#x})");
    }
    let stats = db.buffer_stats().unwrap();
    assert!(stats.evictions > 0, "tiny pool never evicted — vacuous");
    assert!(
        faults.fired_count() > 0,
        "evict-race fault never fired — scenario vacuous (seed={seed:#x})"
    );
}

/// Scenario 18 — `exec.kernel_fallback` mid-aggregate: random row groups
/// of a fused GROUP BY abandon the code-domain fast path and fall back to
/// the scalar reference mid-query. Mixed fused/scalar execution must be
/// byte-identical to the clean fused run and to a fully-resident
/// database, serial and parallel, on resident and paged storage alike.
#[test]
fn chaos_kernel_fallback_mid_query_never_changes_results() {
    let seed = seed_for(18);
    let resident = Database::new();
    load_pages_table(&resident);

    let queries = [
        "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM pages GROUP BY g ORDER BY g",
        "SELECT g, COUNT(v) FROM pages WHERE v > 8 GROUP BY g ORDER BY g",
        "SELECT COUNT(*), SUM(v) FROM pages",
    ];
    for pool_bytes in [u64::MAX, 2048] {
        let faults = FaultInjector::new(seed ^ pool_bytes);
        faults.arm(points::EXEC_KERNEL_FALLBACK, FaultPoint::with_probability(0.4));
        let db = paged_db(Arc::clone(&faults), pool_bytes);
        for sql in &queries {
            let want = resident.query(sql).unwrap();
            db.set_parallelism(1);
            let serial = db.query(sql).unwrap();
            db.set_parallelism(4);
            let parallel = db.query(sql).unwrap();
            assert_eq!(
                serial, want,
                "serial fused/fallback mix diverged: {sql} (seed={seed:#x})"
            );
            assert_eq!(
                parallel, want,
                "parallel fused/fallback mix diverged: {sql} (seed={seed:#x})"
            );
        }
        assert!(
            faults.fired_count() > 0,
            "kernel-fallback fault never fired — scenario vacuous (seed={seed:#x})"
        );
    }
}

/// Scenario 19 — `storage.freeze_crash`: the background freeze pass dies
/// after publishing the frozen replacement segment's page file
/// (tmp+rename) but before the in-memory swap. The table must be left
/// with the old representation fully intact — never torn — and return
/// byte-identical results before the crash, after the crash, and after a
/// clean retry that completes the freeze. The orphaned replacement's
/// page file is reclaimed, and OLTP writes keep working throughout.
#[test]
fn chaos_crash_mid_freeze_never_tears_a_segment() {
    let seed = seed_for(19);
    let resident = Database::new();
    load_pages_table(&resident);
    let queries = [
        "SELECT g, COUNT(*), SUM(v), MIN(id), MAX(id) FROM pages GROUP BY g ORDER BY g",
        "SELECT id, v FROM pages WHERE id >= 1900 ORDER BY id",
        "SELECT COUNT(*) FROM pages WHERE v > 8",
    ];

    for pool_bytes in [u64::MAX, 2048] {
        let faults = FaultInjector::new(seed ^ pool_bytes);
        let db = paged_db(Arc::clone(&faults), pool_bytes);

        faults.arm(points::STORAGE_FREEZE_CRASH, FaultPoint::times(1));
        let err = db.freeze_all(true).unwrap_err();
        assert!(
            matches!(err, DbError::FaultInjected(_)),
            "pool={pool_bytes}: expected FaultInjected, got {err} (seed={seed:#x})"
        );
        assert_eq!(
            faults.fired_count(),
            1,
            "freeze-crash fault never fired — scenario vacuous (seed={seed:#x})"
        );
        // The swap never happened: no frozen segment is live, and every
        // query answers exactly as the resident reference.
        assert_eq!(db.stats().heat.frozen_segments, 0, "pool={pool_bytes}");
        for sql in &queries {
            let want = resident.query(sql).unwrap();
            db.set_parallelism(1);
            assert_eq!(
                db.query(sql).unwrap(),
                want,
                "post-crash serial diverged: {sql} (seed={seed:#x})"
            );
            db.set_parallelism(4);
            assert_eq!(
                db.query(sql).unwrap(),
                want,
                "post-crash parallel diverged: {sql} (seed={seed:#x})"
            );
        }
        db.set_parallelism(1);

        // Writes land normally on the (still unfrozen) table.
        db.execute("INSERT INTO pages VALUES (50000, 0, 1)").unwrap();
        db.execute("UPDATE pages SET v = 100 WHERE id = 7").unwrap();

        // The retry (fault exhausted) completes the freeze; results match
        // the reference with the same writes applied.
        let stats = db.freeze_all(true).unwrap();
        assert!(
            stats.segments_frozen > 0,
            "pool={pool_bytes}: clean retry froze nothing (seed={seed:#x})"
        );
        resident.execute("INSERT INTO pages VALUES (50000, 0, 1)").unwrap();
        resident.execute("UPDATE pages SET v = 100 WHERE id = 7").unwrap();
        for sql in &queries {
            assert_eq!(
                db.query(sql).unwrap(),
                resident.query(sql).unwrap(),
                "post-retry diverged: {sql} (seed={seed:#x})"
            );
        }
        // Undo the reference writes (id 7's original v is 7*7 % 17 = 15)
        // before the next pool size reuses the reference.
        resident.execute("DELETE FROM pages WHERE id = 50000").unwrap();
        resident.execute("UPDATE pages SET v = 15 WHERE id = 7").unwrap();
    }
}

/// Scenario 19b — the same crash point hit from the background
/// maintenance daemon: the pass reports the fault as a per-table error
/// note, the daemon keeps ticking, and once the fault is exhausted the
/// heat-based path freezes the (by now cold) segment on its own.
#[test]
fn chaos_freeze_crash_in_maintenance_daemon_self_heals() {
    let seed = seed_for(191);
    let faults = FaultInjector::new(seed);
    let db = paged_db(Arc::clone(&faults), u64::MAX);
    let before = db
        .query("SELECT g, COUNT(*), SUM(v) FROM pages GROUP BY g ORDER BY g")
        .unwrap();

    // The baseline scan heated the segment; two idle decay ticks make it
    // cold, so the fault is armed for the tick that attempts the freeze.
    db.maintenance();
    db.maintenance();
    faults.arm(points::STORAGE_FREEZE_CRASH, FaultPoint::times(1));
    let stats = db.maintenance();
    assert!(
        stats
            .notes
            .iter()
            .any(|(t, n)| t == "pages" && n.contains("error") && n.contains("fault")),
        "crash must surface as a per-table note: {stats:?} (seed={seed:#x})"
    );
    assert_eq!(db.stats().heat.frozen_segments, 0);

    // The next clean tick freezes it (still cold, fault exhausted).
    let stats = db.maintenance();
    assert!(
        stats
            .notes
            .iter()
            .any(|(t, n)| t == "pages" && n.contains("froze 1 segments")),
        "cold segment must freeze on the next clean tick: {stats:?} (seed={seed:#x})"
    );
    assert_eq!(db.stats().heat.frozen_segments, 1);
    assert_eq!(
        db.query("SELECT g, COUNT(*), SUM(v) FROM pages GROUP BY g ORDER BY g")
            .unwrap(),
        before,
        "seed={seed:#x}"
    );
}

// ===================================================================
// Network edge scenarios (20–20c): the wire-protocol front end under
// injected edge faults. Invariants: acknowledged writes survive, torn
// responses surface as typed errors (never hangs or garbage rows), a
// dropped connection rolls its open transaction back, admission tickets
// and governor bytes never leak, and a drain is always bounded.
// ===================================================================

use oltapdb::client::{Client, RetryClient, RetryConfig};
use oltapdb::sched::AdmissionConfig;
use oltapdb::server::{Server, ServerConfig};

/// A governed + admission-controlled database for the network suite.
fn net_db(faults: Arc<FaultInjector>) -> Arc<Database> {
    Database::with_config(DbConfig {
        wal_path: None,
        faults: Some(faults),
        memory: Some(oltapdb::core::MemoryConfig {
            total_bytes: 64 << 20,
            oltp_bytes: 16 << 20,
            olap_bytes: 48 << 20,
            query_bytes: 4 << 20,
        }),
        admission: Some(AdmissionConfig {
            max_olap: 16,
            throttled_olap: 4,
            pressure_threshold: 8,
            queue_timeout: Duration::from_secs(2),
        }),
        ..DbConfig::default()
    })
    .unwrap()
}

fn net_server(db: &Arc<Database>) -> Server {
    Server::start(
        Arc::clone(db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            drain_grace: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn wait_active_zero(server: &Server, timeout: Duration) {
    let deadline = std::time::Instant::now() + timeout;
    while server.active_connections() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.active_connections(), 0, "connections leaked");
}

/// Scenario 20 — torn response frame mid-SELECT: `net.write_partial`
/// cuts a response in half. The client must get a *typed* framing error
/// (never a hang, never garbage rows), a reconnecting client must
/// recover, the in-flight query's admission ticket and governor bytes
/// must come back, and the server must count the event.
#[test]
fn chaos_net_torn_response_is_typed_and_reconnect_recovers() {
    let seed = seed_for(20);
    let faults = FaultInjector::new(seed);
    let db = net_db(Arc::clone(&faults));
    db.execute("CREATE TABLE kv (id BIGINT PRIMARY KEY, v BIGINT)")
        .unwrap();
    for i in 0..50i64 {
        db.execute(&format!("INSERT INTO kv VALUES ({i}, {})", i * 2))
            .unwrap();
    }
    let governor = db.memory_governor().unwrap();
    let admission = db.admission().unwrap();
    let used_before = governor.total_used();

    let server = net_server(&db);
    let addr = server.local_addr().to_string();

    let mut victim = Client::connect(&addr).unwrap();
    faults.arm(points::NET_WRITE_PARTIAL, FaultPoint::times(1));
    let err = victim
        .query("SELECT id, v FROM kv ORDER BY id")
        .expect_err("torn response must surface as an error");
    assert!(
        matches!(err, DbError::Corruption(_) | DbError::Io(_)),
        "torn frame must be a typed transport error, got {err:?} (seed={seed:#x})"
    );
    assert!(faults.fired_count() >= 1, "fault must have fired");

    // A reconnecting client recovers and reads the full, correct set.
    let mut retry = RetryClient::new(
        addr.clone(),
        RetryConfig {
            seed,
            ..RetryConfig::default()
        },
    );
    let out = retry.query("SELECT COUNT(*), SUM(v) FROM kv").unwrap();
    assert_eq!(out.rows.len(), 1, "seed={seed:#x}");
    assert_eq!(out.rows[0].values()[0], Value::Int(50));
    assert_eq!(out.rows[0].values()[1], Value::Int(2450));

    assert!(server.stats().partial_writes >= 1);
    drop(victim);
    drop(retry);
    let report = server.drain();
    assert!(report.duration < Duration::from_secs(10));
    assert_eq!(admission.running(), (0, 0), "admission ticket leaked");
    assert_eq!(
        governor.total_used(),
        used_before,
        "governor bytes leaked (seed={seed:#x})"
    );
}

/// Scenario 20a — connection dropped mid-write-transaction:
/// `net.conn_drop_mid_query` severs the socket while a BEGIN…INSERT
/// transaction is open. The server-side session drop must roll the
/// transaction back: previously committed rows survive, the uncommitted
/// insert does not, and no ticket or governor byte leaks.
#[test]
fn chaos_net_conn_drop_mid_txn_rolls_back() {
    let seed = seed_for(201);
    let faults = FaultInjector::new(seed);
    let db = net_db(Arc::clone(&faults));
    db.execute("CREATE TABLE acct (id BIGINT PRIMARY KEY, bal BIGINT)")
        .unwrap();
    db.execute("INSERT INTO acct VALUES (1, 100)").unwrap();
    let governor = db.memory_governor().unwrap();
    let admission = db.admission().unwrap();
    let used_before = governor.total_used();

    let server = net_server(&db);
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    c.query("BEGIN").unwrap();
    c.query("INSERT INTO acct VALUES (2, 200)").unwrap();
    // The next request hits the drop fault: the socket dies with the
    // transaction still open and no response on the wire.
    faults.arm(points::NET_CONN_DROP_MID_QUERY, FaultPoint::times(1));
    let err = c
        .query("INSERT INTO acct VALUES (3, 300)")
        .expect_err("dropped connection must error");
    assert!(
        matches!(err, DbError::Io(_) | DbError::Corruption(_)),
        "got {err:?} (seed={seed:#x})"
    );
    drop(c);
    wait_active_zero(&server, Duration::from_secs(5));

    // Rollback happened server-side: only the committed row remains.
    let mut fresh = Client::connect(&addr).unwrap();
    let out = fresh
        .query("SELECT COUNT(*), SUM(bal) FROM acct")
        .unwrap();
    assert_eq!(
        out.rows[0].values()[0],
        Value::Int(1),
        "uncommitted insert must be rolled back (seed={seed:#x})"
    );
    assert_eq!(out.rows[0].values()[1], Value::Int(100));
    assert!(server.stats().dropped_mid_query >= 1);
    drop(fresh);
    let _ = server.drain();
    assert_eq!(admission.running(), (0, 0), "admission ticket leaked");
    assert_eq!(governor.total_used(), used_before, "governor bytes leaked");
}

/// Scenario 20b — accept loop killed (`net.accept_fail` always firing):
/// new connections die before the handshake, existing connections keep
/// working, and a drain still completes within its bound with an
/// open-transaction connection on the books.
#[test]
fn chaos_net_accept_fail_then_bounded_drain() {
    let seed = seed_for(202);
    let faults = FaultInjector::new(seed);
    let db = net_db(Arc::clone(&faults));
    db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY)").unwrap();
    let server = net_server(&db);
    let addr = server.local_addr().to_string();

    // A connection established before the fault keeps working…
    let mut survivor = Client::connect(&addr).unwrap();
    survivor.query("BEGIN").unwrap();
    survivor.query("INSERT INTO t VALUES (1)").unwrap();

    // …while the killed accept path refuses every newcomer.
    faults.arm(points::NET_ACCEPT_FAIL, FaultPoint::always());
    for _ in 0..3 {
        let err = Client::connect(&addr).expect_err("accept must fail");
        assert!(matches!(err, DbError::Io(_)), "got {err:?} (seed={seed:#x})");
    }
    let ok = survivor.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(ok.rows[0].values()[0], Value::Int(1));

    // Drain with the transaction still open: bounded, and the reader
    // notices the drain, aborts the session, and the txn rolls back.
    assert_eq!(server.active_connections(), 1);
    let start = std::time::Instant::now();
    let _report = server.drain();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "drain must be bounded, took {:?} (seed={seed:#x})",
        start.elapsed()
    );
    assert_eq!(server.active_connections(), 0);
    // The drained server rolled the open transaction back.
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap()[0].values()[0],
        Value::Int(0),
        "open txn must roll back on drain (seed={seed:#x})"
    );
}

/// Shared body for scenario 20c and the CI smoke: `clients` concurrent
/// reconnecting clients doing keyed inserts + aggregates while every
/// `net.*` fault point flips with probability `p`. Afterwards the
/// acknowledged-write set must be exactly the surviving set, the
/// wire-protocol answer must equal the in-process answer, and nothing
/// may leak.
fn net_storm(seed: u64, clients: usize, inserts_per_client: usize, p: f64) {
    let faults = FaultInjector::new(seed);
    let db = net_db(Arc::clone(&faults));
    db.execute("CREATE TABLE storm (id BIGINT PRIMARY KEY, v BIGINT)")
        .unwrap();
    let governor = db.memory_governor().unwrap();
    let admission = db.admission().unwrap();
    let used_before = governor.total_used();
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_conns: clients * 2 + 8,
            drain_grace: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    faults.arm(points::NET_ACCEPT_FAIL, FaultPoint::with_probability(p));
    faults.arm(points::NET_READ_TORN, FaultPoint::with_probability(p));
    faults.arm(points::NET_WRITE_PARTIAL, FaultPoint::with_probability(p));
    faults.arm(
        points::NET_CONN_DROP_MID_QUERY,
        FaultPoint::with_probability(p),
    );

    let acked: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut client = RetryClient::new(
                        addr,
                        RetryConfig {
                            base: Duration::from_millis(5),
                            cap: Duration::from_millis(100),
                            max_attempts: 12,
                            io_timeout: Duration::from_secs(10),
                            seed: seed ^ (t as u64 + 1),
                        },
                    );
                    let mut acked = Vec::new();
                    for i in 0..inserts_per_client {
                        let id = (t * 10_000 + i) as i64;
                        let sql =
                            format!("INSERT INTO storm VALUES ({id}, {})", id * 3);
                        match client.query(&sql) {
                            Ok(_) => acked.push(id),
                            // A retried insert whose first attempt
                            // committed before the connection died is
                            // still an acknowledged write.
                            Err(DbError::DuplicateKey(_)) => acked.push(id),
                            Err(_) => {}
                        }
                        if i % 5 == 4 {
                            let _ = client.query("SELECT COUNT(*) FROM storm");
                        }
                    }
                    acked
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });

    // Quiesce: stop the faults, let every connection wind down.
    for pt in [
        points::NET_ACCEPT_FAIL,
        points::NET_READ_TORN,
        points::NET_WRITE_PARTIAL,
        points::NET_CONN_DROP_MID_QUERY,
    ] {
        faults.disarm(pt);
    }

    // No lost committed writes: every acknowledged id is present, with
    // its exact value, whether read over the wire or in-process.
    let mut clean = Client::connect(&addr).unwrap();
    let wire = clean
        .query("SELECT COUNT(*), SUM(v) FROM storm")
        .unwrap();
    let direct = db.query("SELECT COUNT(*), SUM(v) FROM storm").unwrap();
    assert_eq!(
        wire.rows[0].values(),
        direct[0].values(),
        "wire answer diverged from in-process answer (seed={seed:#x})"
    );
    let present: std::collections::HashSet<i64> = db
        .query("SELECT id FROM storm")
        .unwrap()
        .iter()
        .map(|r| match r.values()[0] {
            Value::Int(v) => v,
            ref other => panic!("non-int id {other:?}"),
        })
        .collect();
    for id in &acked {
        assert!(
            present.contains(id),
            "acknowledged write {id} lost (seed={seed:#x})"
        );
    }

    drop(clean);
    let report = server.drain();
    assert!(
        report.duration < Duration::from_secs(15),
        "drain unbounded: {report:?} (seed={seed:#x})"
    );
    assert_eq!(server.active_connections(), 0);
    assert_eq!(
        admission.running(),
        (0, 0),
        "admission ticket leaked (seed={seed:#x})"
    );
    assert_eq!(
        governor.total_used(),
        used_before,
        "governor bytes leaked (seed={seed:#x})"
    );
}

/// Scenario 20c — 64 concurrent reconnecting clients under seeded
/// probabilistic `net.*` faults (p = 0.05 each): acknowledged writes all
/// survive, wire and in-process answers agree, tickets and governor
/// bytes balance, drain stays bounded.
#[test]
fn chaos_net_fault_storm_64_clients() {
    net_storm(seed_for(203), 64, 20, 0.05);
}

/// CI `server-chaos` smoke — 200 connections at fault probability 0.05.
/// Ignored by default (it is a load test); the CI job runs it with
/// `--ignored`.
#[test]
#[ignore = "load smoke for the server-chaos CI job: 200 clients under net.* faults"]
fn chaos_net_smoke_200_connections() {
    net_storm(seed_for(204), 200, 10, 0.05);
}
