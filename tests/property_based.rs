//! Property-based integration tests: the engine against simple oracles.

use oltapdb::common::{row, DataType, Field, Schema, Value};
use oltapdb::core::{Database, TableFormat, TableHandle};
use oltapdb::storage::encoding::{BitPacked, Dictionary, ForPacked, IntEncoding, Rle, StrEncoding};
use oltapdb::storage::{ScanPredicate, SkipList};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every integer encoding round-trips arbitrary data.
    #[test]
    fn int_encodings_roundtrip(values in prop::collection::vec(any::<i64>(), 0..300)) {
        prop_assert_eq!(IntEncoding::choose(&values).decode(), values.clone());
        prop_assert_eq!(ForPacked::encode(&values).decode(), values.clone());
        prop_assert_eq!(Rle::encode(&values).decode(), values.clone());
        prop_assert_eq!(Dictionary::encode(&values).decode(), values);
    }

    /// Bit-packing round-trips any width that fits.
    #[test]
    fn bitpack_roundtrip(values in prop::collection::vec(any::<u64>(), 0..200), extra in 0u8..8) {
        let width = (BitPacked::width_for(&values) + extra).min(64);
        let packed = BitPacked::pack(&values, width).unwrap();
        prop_assert_eq!(packed.unpack(), values);
    }

    /// String encodings round-trip.
    #[test]
    fn str_encodings_roundtrip(values in prop::collection::vec("[a-z]{0,12}", 0..200)) {
        prop_assert_eq!(StrEncoding::choose(&values).decode(), values.clone());
        let d = Dictionary::encode(&values);
        prop_assert_eq!(d.decode(), values);
    }

    /// The concurrent skip list agrees with BTreeMap under random inserts.
    #[test]
    fn skiplist_models_btreemap(keys in prop::collection::vec(any::<i64>(), 0..400)) {
        let sl: SkipList<i64, i64> = SkipList::new();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            let v = i as i64;
            if sl.insert(*k, v).is_ok() {
                model.insert(*k, v);
            }
        }
        prop_assert_eq!(sl.len(), model.len());
        let got: Vec<(i64, i64)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}

/// A random DML op for the model test.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    Maintain,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..40, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0i64..40, any::<i64>()).prop_map(|(k, v)| Op::Update(k, v)),
        (0i64..40).prop_map(Op::Delete),
        Just(Op::Maintain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every table format, fed a random DML sequence (with interleaved
    /// merges/populations), matches a BTreeMap model exactly.
    #[test]
    fn formats_match_model_under_random_dml(ops in prop::collection::vec(op_strategy(), 1..120)) {
        for format in [TableFormat::Row, TableFormat::Column, TableFormat::Dual] {
            let schema = Arc::new(Schema::with_primary_key(
                vec![
                    Field::not_null("k", DataType::Int64),
                    Field::new("v", DataType::Int64),
                ],
                &["k"],
            ).unwrap());
            let mgr = Arc::new(oltapdb::txn::TransactionManager::new());
            let table = TableHandle::create(Arc::clone(&schema), format).unwrap();
            let mut model: BTreeMap<i64, i64> = BTreeMap::new();

            for op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        let tx = mgr.begin();
                        let r = table.insert(&tx, row![*k, *v]);
                        match r {
                            Ok(()) => {
                                tx.commit().unwrap();
                                let prev = model.insert(*k, *v);
                                prop_assert!(prev.is_none(), "{format:?}: engine accepted dup {k}");
                            }
                            Err(_) => {
                                prop_assert!(model.contains_key(k),
                                    "{format:?}: engine rejected fresh key {k}");
                            }
                        }
                    }
                    Op::Update(k, v) => {
                        let tx = mgr.begin();
                        let r = table.update(&tx, &row![*k], row![*k, *v]);
                        match r {
                            Ok(()) => {
                                tx.commit().unwrap();
                                prop_assert!(model.insert(*k, *v).is_some(),
                                    "{format:?}: engine updated missing key {k}");
                            }
                            Err(_) => {
                                prop_assert!(!model.contains_key(k),
                                    "{format:?}: engine failed update of live key {k}");
                            }
                        }
                    }
                    Op::Delete(k) => {
                        let tx = mgr.begin();
                        let r = table.delete(&tx, &row![*k]);
                        match r {
                            Ok(()) => {
                                tx.commit().unwrap();
                                prop_assert!(model.remove(k).is_some(),
                                    "{format:?}: engine deleted missing key {k}");
                            }
                            Err(_) => {
                                prop_assert!(!model.contains_key(k),
                                    "{format:?}: engine failed delete of live key {k}");
                            }
                        }
                    }
                    Op::Maintain => {
                        table.maintain(mgr.gc_watermark()).unwrap();
                    }
                }
            }

            // Full-state comparison through the scan path.
            let me = oltapdb::common::ids::TxnId(u64::MAX - 30);
            let mut got: Vec<(i64, i64)> = table
                .scan(&[0, 1], &ScanPredicate::all(), mgr.now(), me, 4096)
                .unwrap()
                .iter()
                .flat_map(|b| b.to_rows())
                .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                .collect();
            got.sort_unstable();
            let want: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want, "{:?}: scan state diverged from model", format);

            // Point reads agree too.
            for k in 0..40i64 {
                let got = table.get(&row![k], mgr.now(), me).map(|r| r[1].clone());
                let want = model.get(&k).map(|v| Value::Int(*v));
                prop_assert_eq!(got, want, "{:?}: get({}) diverged", format, k);
            }
        }
    }

    /// Zone-map pruning is sound: a pushed-down range predicate returns the
    /// same rows as a full scan filtered in memory.
    #[test]
    fn pushdown_equals_postfilter(
        values in prop::collection::vec(-1000i64..1000, 1..300),
        lo in -1000i64..1000,
    ) {
        let db = Database::new();
        db.execute("CREATE TABLE p (id BIGINT PRIMARY KEY, v BIGINT) USING FORMAT COLUMN")
            .unwrap();
        let handle = db.table("p").unwrap();
        let tx = db.txn_manager().begin();
        for (i, v) in values.iter().enumerate() {
            handle.insert(&tx, row![i as i64, *v]).unwrap();
        }
        tx.commit().unwrap();
        db.maintenance(); // move data into zone-mapped segments

        let pushed = db
            .query(&format!("SELECT COUNT(*) FROM p WHERE v >= {lo}"))
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        let expected = values.iter().filter(|&&v| v >= lo).count() as i64;
        prop_assert_eq!(pushed, expected);
    }
}
