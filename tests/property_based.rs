//! Property-based integration tests: the engine against simple oracles.
//!
//! These use a seeded mini-harness (deterministic [`StdRng`] loops) rather
//! than a shrinking property-testing framework: every case derives from a
//! fixed seed, so a failure message's `seed=` value reproduces it exactly.

use oltapdb::common::{row, DataType, Field, Schema, Value};
use oltapdb::core::{Database, TableFormat, TableHandle};
use oltapdb::storage::encoding::{BitPacked, Dictionary, ForPacked, IntEncoding, Rle, StrEncoding};
use oltapdb::storage::{ScanPredicate, SkipList};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

const BASE_SEED: u64 = 0x01_7A_BD_08;

fn rng_for(case: u64) -> StdRng {
    StdRng::seed_from_u64(BASE_SEED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn random_i64s(rng: &mut StdRng, max_len: usize) -> Vec<i64> {
    let n = rng.gen_range(0..max_len);
    (0..n).map(|_| rng.gen::<i64>()).collect()
}

fn random_strings(rng: &mut StdRng, max_len: usize) -> Vec<String> {
    let n = rng.gen_range(0..max_len);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(0..=12usize);
            (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect()
        })
        .collect()
}

/// Every integer encoding round-trips arbitrary data.
#[test]
fn int_encodings_roundtrip() {
    for case in 0..64 {
        let mut rng = rng_for(case);
        let values = random_i64s(&mut rng, 300);
        assert_eq!(IntEncoding::choose(&values).decode(), values, "seed={case}");
        assert_eq!(ForPacked::encode(&values).decode(), values, "seed={case}");
        assert_eq!(Rle::encode(&values).decode(), values, "seed={case}");
        assert_eq!(Dictionary::encode(&values).decode(), values, "seed={case}");
    }
}

/// Bit-packing round-trips any width that fits.
#[test]
fn bitpack_roundtrip() {
    for case in 0..64 {
        let mut rng = rng_for(case ^ 0xB17);
        let n = rng.gen_range(0..200usize);
        let values: Vec<u64> = (0..n).map(|_| rng.gen::<u64>()).collect();
        let extra = rng.gen_range(0..8u8);
        let width = (BitPacked::width_for(&values) + extra).min(64);
        let packed = BitPacked::pack(&values, width).unwrap();
        assert_eq!(packed.unpack(), values, "seed={case}");
    }
}

/// String encodings round-trip.
#[test]
fn str_encodings_roundtrip() {
    for case in 0..64 {
        let mut rng = rng_for(case ^ 0x57F);
        let values = random_strings(&mut rng, 200);
        assert_eq!(StrEncoding::choose(&values).decode(), values, "seed={case}");
        assert_eq!(Dictionary::encode(&values).decode(), values, "seed={case}");
    }
}

/// The concurrent skip list agrees with BTreeMap under random inserts.
#[test]
fn skiplist_models_btreemap() {
    for case in 0..64 {
        let mut rng = rng_for(case ^ 0x5CA1);
        let keys = random_i64s(&mut rng, 400);
        let sl: SkipList<i64, i64> = SkipList::new();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            let v = i as i64;
            if sl.insert(*k, v).is_ok() {
                model.insert(*k, v);
            }
        }
        assert_eq!(sl.len(), model.len(), "seed={case}");
        let got: Vec<(i64, i64)> = sl.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = model.into_iter().collect();
        assert_eq!(got, want, "seed={case}");
    }
}

/// A random DML op for the model test.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    Maintain,
}

fn random_ops(rng: &mut StdRng) -> Vec<Op> {
    let n = rng.gen_range(1..120usize);
    (0..n)
        .map(|_| match rng.gen_range(0..7u8) {
            0 | 1 => Op::Insert(rng.gen_range(0..40i64), rng.gen::<i64>()),
            2 | 3 => Op::Update(rng.gen_range(0..40i64), rng.gen::<i64>()),
            4 | 5 => Op::Delete(rng.gen_range(0..40i64)),
            _ => Op::Maintain,
        })
        .collect()
}

/// Every table format, fed a random DML sequence (with interleaved
/// merges/populations), matches a BTreeMap model exactly.
#[test]
fn formats_match_model_under_random_dml() {
    for case in 0..24 {
        let mut rng = rng_for(case ^ 0xD317);
        let ops = random_ops(&mut rng);
        for format in [TableFormat::Row, TableFormat::Column, TableFormat::Dual] {
            let schema = Arc::new(
                Schema::with_primary_key(
                    vec![
                        Field::not_null("k", DataType::Int64),
                        Field::new("v", DataType::Int64),
                    ],
                    &["k"],
                )
                .unwrap(),
            );
            let mgr = Arc::new(oltapdb::txn::TransactionManager::new());
            let table = TableHandle::create(Arc::clone(&schema), format).unwrap();
            let mut model: BTreeMap<i64, i64> = BTreeMap::new();

            for op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        let tx = mgr.begin();
                        match table.insert(&tx, row![*k, *v]) {
                            Ok(()) => {
                                tx.commit().unwrap();
                                let prev = model.insert(*k, *v);
                                assert!(prev.is_none(), "{format:?}: engine accepted dup {k}");
                            }
                            Err(_) => {
                                assert!(
                                    model.contains_key(k),
                                    "{format:?}: engine rejected fresh key {k}"
                                );
                            }
                        }
                    }
                    Op::Update(k, v) => {
                        let tx = mgr.begin();
                        match table.update(&tx, &row![*k], row![*k, *v]) {
                            Ok(()) => {
                                tx.commit().unwrap();
                                assert!(
                                    model.insert(*k, *v).is_some(),
                                    "{format:?}: engine updated missing key {k}"
                                );
                            }
                            Err(_) => {
                                assert!(
                                    !model.contains_key(k),
                                    "{format:?}: engine failed update of live key {k}"
                                );
                            }
                        }
                    }
                    Op::Delete(k) => {
                        let tx = mgr.begin();
                        match table.delete(&tx, &row![*k]) {
                            Ok(()) => {
                                tx.commit().unwrap();
                                assert!(
                                    model.remove(k).is_some(),
                                    "{format:?}: engine deleted missing key {k}"
                                );
                            }
                            Err(_) => {
                                assert!(
                                    !model.contains_key(k),
                                    "{format:?}: engine failed delete of live key {k}"
                                );
                            }
                        }
                    }
                    Op::Maintain => {
                        table.maintain(mgr.gc_watermark()).unwrap();
                    }
                }
            }

            // Full-state comparison through the scan path.
            let me = oltapdb::common::ids::TxnId(u64::MAX - 30);
            let mut got: Vec<(i64, i64)> = table
                .scan(&[0, 1], &ScanPredicate::all(), mgr.now(), me, 4096)
                .unwrap()
                .iter()
                .flat_map(|b| b.to_rows())
                .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                .collect();
            got.sort_unstable();
            let want: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            assert_eq!(got, want, "{format:?}: scan state diverged (seed={case})");

            // Point reads agree too.
            for k in 0..40i64 {
                let got = table.get(&row![k], mgr.now(), me).unwrap().map(|r| r[1].clone());
                let want = model.get(&k).map(|v| Value::Int(*v));
                assert_eq!(got, want, "{format:?}: get({k}) diverged (seed={case})");
            }
        }
    }
}

/// Zone-map pruning is sound: a pushed-down range predicate returns the
/// same rows as a full scan filtered in memory.
#[test]
fn pushdown_equals_postfilter() {
    for case in 0..16 {
        let mut rng = rng_for(case ^ 0xF117);
        let n = rng.gen_range(1..300usize);
        let values: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000..1000i64)).collect();
        let lo = rng.gen_range(-1000..1000i64);

        let db = Database::new();
        db.execute("CREATE TABLE p (id BIGINT PRIMARY KEY, v BIGINT) USING FORMAT COLUMN")
            .unwrap();
        let handle = db.table("p").unwrap();
        let tx = db.txn_manager().begin();
        for (i, v) in values.iter().enumerate() {
            handle.insert(&tx, row![i as i64, *v]).unwrap();
        }
        tx.commit().unwrap();
        db.maintenance(); // move data into zone-mapped segments

        let pushed = db
            .query(&format!("SELECT COUNT(*) FROM p WHERE v >= {lo}"))
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        let expected = values.iter().filter(|&&v| v >= lo).count() as i64;
        assert_eq!(pushed, expected, "seed={case}");
    }
}

/// Builds a random star-schema pair (`fact`, `dim`) and a set of random
/// query shapes covering every operator the morsel-driven executor
/// parallelizes: scan, filter, project, aggregate, hash join (inner and
/// left), sort, top-K, and limit/offset.
fn random_parallel_workload(rng: &mut StdRng) -> (Arc<Database>, Vec<String>) {
    let db = Database::new();
    let queries = load_star_schema(&db, rng);
    (db, queries)
}

/// Loads the random star schema of [`random_parallel_workload`] into an
/// existing database, so the same seed reproduces identical data under
/// different database configurations.
fn load_star_schema(db: &Arc<Database>, rng: &mut StdRng) -> Vec<String> {
    db.execute("CREATE TABLE fact (id BIGINT PRIMARY KEY, g BIGINT, v BIGINT) USING FORMAT COLUMN")
        .unwrap();
    db.execute("CREATE TABLE dim (g BIGINT PRIMARY KEY, w BIGINT) USING FORMAT ROW")
        .unwrap();

    let n = rng.gen_range(50..800usize);
    let groups = rng.gen_range(2..12i64);
    let fact = db.table("fact").unwrap();
    let tx = db.txn_manager().begin();
    for i in 0..n {
        fact.insert(
            &tx,
            row![i as i64, rng.gen_range(0..groups * 2), rng.gen_range(-100..100i64)],
        )
        .unwrap();
    }
    tx.commit().unwrap();
    // Dimension covers only half the group domain, so LEFT JOIN exercises
    // both matched and padded rows.
    let dim = db.table("dim").unwrap();
    let tx = db.txn_manager().begin();
    for g in 0..groups {
        dim.insert(&tx, row![g, rng.gen_range(0..1000i64)]).unwrap();
    }
    tx.commit().unwrap();
    db.maintenance();

    let x = rng.gen_range(-50..50i64);
    let k = rng.gen_range(1..40usize);
    let o = rng.gen_range(0..20usize);
    let queries = vec![
        "SELECT * FROM fact".to_string(),
        format!("SELECT id, v + g FROM fact WHERE v > {x}"),
        "SELECT g, COUNT(*), SUM(v) FROM fact GROUP BY g".to_string(),
        format!("SELECT COUNT(*) FROM fact WHERE v < {x}"),
        "SELECT id FROM fact ORDER BY v, id".to_string(),
        format!("SELECT id, v FROM fact ORDER BY v DESC, id LIMIT {k}"),
        format!("SELECT id FROM fact LIMIT {k} OFFSET {o}"),
        format!(
            "SELECT fact.id, dim.w FROM fact JOIN dim ON fact.g = dim.g WHERE fact.v >= {x}"
        ),
        "SELECT fact.id, dim.w FROM fact LEFT JOIN dim ON fact.g = dim.g".to_string(),
        "SELECT g, AVG(v), MIN(v), MAX(v) FROM fact GROUP BY g ORDER BY g".to_string(),
    ];
    queries
}

/// The morsel-driven parallel executor is a drop-in replacement for the
/// serial Volcano path: for random tables and every parallelized query
/// shape, results at parallelism 2 and 8 are identical to parallelism 1 —
/// same rows, same order.
#[test]
fn parallel_matches_serial_across_workers() {
    for case in 0..12u64 {
        let mut rng = rng_for(case ^ 0x9A12_77E1);
        let (db, queries) = random_parallel_workload(&mut rng);
        for sql in &queries {
            db.set_parallelism(1);
            let serial = db.query(sql).unwrap();
            for workers in [2, 8] {
                db.set_parallelism(workers);
                let parallel = db.query(sql).unwrap();
                assert_eq!(
                    serial, parallel,
                    "seed={case} workers={workers} query=`{sql}`"
                );
            }
        }
    }
}

/// Determinism survives chaos: with faults injected at morsel boundaries
/// (each retried transparently by the pipeline driver), parallel results
/// still match the serial baseline exactly.
#[test]
fn parallel_matches_serial_under_morsel_faults() {
    use oltapdb::common::fault::{points, FaultInjector, FaultPoint};
    use oltapdb::core::DbConfig;

    for case in 0..6u64 {
        let mut rng = rng_for(case ^ 0x0FA_0175);
        let faults = FaultInjector::new(BASE_SEED ^ case);
        faults.arm(points::EXEC_MORSEL_FAIL, FaultPoint::with_probability(0.3));
        let db = Database::with_config(DbConfig {
            wal_path: None,
            faults: Some(Arc::clone(&faults)),
            ..DbConfig::default()
        })
        .unwrap();
        db.execute(
            "CREATE TABLE fact (id BIGINT PRIMARY KEY, g BIGINT, v BIGINT) USING FORMAT COLUMN",
        )
        .unwrap();
        let fact = db.table("fact").unwrap();
        let tx = db.txn_manager().begin();
        let n = rng.gen_range(100..600usize);
        for i in 0..n {
            fact.insert(&tx, row![i as i64, rng.gen_range(0..8i64), rng.gen_range(-100..100i64)])
                .unwrap();
        }
        tx.commit().unwrap();
        db.maintenance();

        let x = rng.gen_range(-50..50i64);
        for sql in [
            "SELECT * FROM fact".to_string(),
            format!("SELECT id, v FROM fact WHERE v > {x}"),
            "SELECT g, COUNT(*), SUM(v) FROM fact GROUP BY g".to_string(),
            "SELECT id FROM fact ORDER BY v DESC, id LIMIT 10".to_string(),
        ] {
            db.set_parallelism(1);
            let serial = db.query(&sql).unwrap();
            for workers in [2, 8] {
                db.set_parallelism(workers);
                let parallel = db.query(&sql).unwrap();
                assert_eq!(
                    serial, parallel,
                    "seed={case} workers={workers} query=`{sql}`"
                );
            }
        }
        assert!(
            faults.fired_count() > 0,
            "seed={case}: chaos run never injected a fault"
        );
    }
}

/// Join edge cases — NULL keys on both sides, duplicate build keys, an
/// empty build side, and a fully-unmatched LEFT probe — produce identical
/// results on the serial path and at every parallelism level. The INNER
/// queries also exercise the sideways Bloom filter (the optimizer marks
/// them), so this doubles as a semantics check for scan-side join
/// filtering.
#[test]
fn join_edge_cases_match_serial() {
    let db = Database::new();
    db.execute(
        "CREATE TABLE probe (pid BIGINT PRIMARY KEY, k BIGINT, v BIGINT) USING FORMAT COLUMN",
    )
    .unwrap();
    db.execute("CREATE TABLE build (bid BIGINT PRIMARY KEY, k BIGINT, w BIGINT) USING FORMAT ROW")
        .unwrap();
    db.execute(
        "CREATE TABLE empty_build (bid BIGINT PRIMARY KEY, k BIGINT, w BIGINT) USING FORMAT ROW",
    )
    .unwrap();

    let probe = db.table("probe").unwrap();
    let tx = db.txn_manager().begin();
    for i in 0..200i64 {
        // Every third probe key is NULL; the rest span 0..20, so keys
        // 10..20 never match the build side.
        let k = if i % 3 == 0 { Value::Null } else { Value::Int(i % 20) };
        probe.insert(&tx, row![i, k, i * 7]).unwrap();
    }
    tx.commit().unwrap();

    let build = db.table("build").unwrap();
    let tx = db.txn_manager().begin();
    let mut bid = 0i64;
    for k in 0..10i64 {
        // Even keys are duplicated ×3 (probe fan-out); key 5 is NULL on
        // the build side (must never join).
        let copies = if k % 2 == 0 { 3 } else { 1 };
        for c in 0..copies {
            let key = if k == 5 { Value::Null } else { Value::Int(k) };
            build.insert(&tx, row![bid, key, k * 100 + c]).unwrap();
            bid += 1;
        }
    }
    tx.commit().unwrap();
    db.maintenance();

    let queries = [
        "SELECT p.pid, b.bid, b.w FROM probe p JOIN build b ON p.k = b.k",
        "SELECT p.pid, b.w FROM probe p LEFT JOIN build b ON p.k = b.k",
        "SELECT p.pid, b.w FROM probe p JOIN empty_build b ON p.k = b.k",
        "SELECT p.pid, b.w FROM probe p LEFT JOIN empty_build b ON p.k = b.k",
    ];
    for (qi, sql) in queries.iter().enumerate() {
        db.set_parallelism(1);
        let serial = db.query(sql).unwrap();
        for workers in [2, 8] {
            db.set_parallelism(workers);
            let parallel = db.query(sql).unwrap();
            assert_eq!(serial, parallel, "workers={workers} query=`{sql}`");
        }
        match qi {
            // INNER over empty build: no rows, regardless of probe size.
            2 => assert!(serial.is_empty(), "empty build must join to nothing"),
            // LEFT over empty build: every probe row survives, padded.
            3 => {
                assert_eq!(serial.len(), 200);
                assert!(serial.iter().all(|r| r[1] == Value::Null));
            }
            _ => assert!(!serial.is_empty(), "query=`{sql}` should match rows"),
        }
    }

    // Oracle for the INNER fan-out: each non-NULL probe key k < 10 (and
    // k != 5) matches `copies(k)` build rows; NULL keys match nothing.
    db.set_parallelism(1);
    let inner = db.query(queries[0]).unwrap();
    let expected: usize = (0..200i64)
        .filter(|i| i % 3 != 0)
        .map(|i| i % 20)
        .filter(|&k| k < 10 && k != 5)
        .map(|k| if k % 2 == 0 { 3usize } else { 1 })
        .sum();
    assert_eq!(inner.len(), expected, "inner-join fan-out diverged");
}

/// Determinism survives chaos at the join-build boundary: with
/// `exec.join_build_fail` armed, partitioned-build morsels fail and are
/// retried transparently, and parallel join results still match the
/// serial baseline exactly.
#[test]
fn parallel_matches_serial_under_join_build_faults() {
    use oltapdb::common::fault::{points, FaultInjector, FaultPoint};
    use oltapdb::core::DbConfig;

    for case in 0..4u64 {
        let mut rng = rng_for(case ^ 0x10B_F417);
        let faults = FaultInjector::new(BASE_SEED ^ case);
        faults.arm(
            points::EXEC_JOIN_BUILD_FAIL,
            FaultPoint::with_probability(0.3),
        );
        let db = Database::with_config(DbConfig {
            wal_path: None,
            faults: Some(Arc::clone(&faults)),
            ..DbConfig::default()
        })
        .unwrap();
        db.execute(
            "CREATE TABLE fact (id BIGINT PRIMARY KEY, g BIGINT, v BIGINT) USING FORMAT COLUMN",
        )
        .unwrap();
        db.execute("CREATE TABLE dim (g BIGINT PRIMARY KEY, w BIGINT) USING FORMAT ROW")
            .unwrap();
        let fact = db.table("fact").unwrap();
        let tx = db.txn_manager().begin();
        let n = rng.gen_range(100..600usize);
        for i in 0..n {
            fact.insert(
                &tx,
                row![i as i64, rng.gen_range(0..16i64), rng.gen_range(-100..100i64)],
            )
            .unwrap();
        }
        tx.commit().unwrap();
        let dim = db.table("dim").unwrap();
        let tx = db.txn_manager().begin();
        for g in 0..8i64 {
            dim.insert(&tx, row![g, rng.gen_range(0..1000i64)]).unwrap();
        }
        tx.commit().unwrap();
        db.maintenance();

        let x = rng.gen_range(-50..50i64);
        for sql in [
            "SELECT fact.id, dim.w FROM fact JOIN dim ON fact.g = dim.g".to_string(),
            format!("SELECT fact.id, dim.w FROM fact JOIN dim ON fact.g = dim.g WHERE fact.v > {x}"),
            "SELECT fact.id, dim.w FROM fact LEFT JOIN dim ON fact.g = dim.g".to_string(),
        ] {
            db.set_parallelism(1);
            let serial = db.query(&sql).unwrap();
            for workers in [2, 8] {
                db.set_parallelism(workers);
                let parallel = db.query(&sql).unwrap();
                assert_eq!(
                    serial, parallel,
                    "seed={case} workers={workers} query=`{sql}`"
                );
            }
        }
        assert!(
            faults.fired_count() > 0,
            "seed={case}: join-build fault never fired"
        );
    }
}

/// Spilling is an execution strategy, not an answer-changing fallback: a
/// memory-governed database whose per-query budget forces joins,
/// aggregates, and sorts to disk answers every query byte-identically to
/// an unbudgeted in-memory run — on the serial path and at every
/// parallelism level.
#[test]
fn spilled_results_match_in_memory() {
    use oltapdb::core::{DbConfig, MemoryConfig};

    let mut total_spills = 0u64;
    for case in 0..6u64 {
        let seed = case ^ 0x5B11_7D15;
        let mut rng = rng_for(seed);
        let (reference, queries) = random_parallel_workload(&mut rng);

        // Same seed, same data — but under a budget small enough that the
        // larger cases cannot keep a pipeline breaker resident.
        let governed = Database::with_config(DbConfig {
            memory: Some(MemoryConfig {
                total_bytes: 1 << 20,
                oltp_bytes: 256 << 10,
                olap_bytes: 768 << 10,
                query_bytes: 16 << 10,
            }),
            ..DbConfig::default()
        })
        .unwrap();
        let mut rng2 = rng_for(seed);
        let replayed = load_star_schema(&governed, &mut rng2);
        assert_eq!(queries, replayed, "seed={case}: workload replay diverged");

        for sql in &queries {
            reference.set_parallelism(1);
            let want = reference.query(sql).unwrap();
            governed.set_parallelism(1);
            assert_eq!(
                governed.query(sql).unwrap(),
                want,
                "seed={case} serial query=`{sql}`"
            );
            for workers in [2, 8] {
                governed.set_parallelism(workers);
                assert_eq!(
                    governed.query(sql).unwrap(),
                    want,
                    "seed={case} workers={workers} query=`{sql}`"
                );
            }
        }
        total_spills += governed.memory_governor().unwrap().spill_events();
    }
    assert!(total_spills > 0, "no case ever spilled — property is vacuous");
}

/// WAL replay is prefix-closed: truncating the log at *every* byte offset
/// yields an exact prefix of the committed records — never an error, never
/// a resurrected or reordered record. This is the crash-safety contract
/// torn-write recovery relies on.
#[test]
fn wal_replay_is_prefix_closed() {
    use oltapdb::txn::wal::{replay, CommitRecord, Wal, WalOp};

    for case in 0..8u64 {
        let mut rng = rng_for(case ^ 0x3A1);
        let n_records = rng.gen_range(1..12usize);
        let wal = Wal::new_in_memory();
        let mut records: Vec<CommitRecord> = Vec::new();
        for i in 0..n_records {
            let n_ops = rng.gen_range(0..4usize);
            let rec = CommitRecord {
                txn: oltapdb::common::ids::TxnId(i as u64 + 1),
                commit_ts: i as u64 + 100,
                ops: (0..n_ops)
                    .map(|j| WalOp::Insert {
                        table: "t".into(),
                        row: row![j as i64, rng.gen::<i64>()],
                    })
                    .collect(),
            };
            wal.append(&rec).unwrap();
            records.push(rec);
        }
        let full = wal.to_bytes();

        // Every truncation point, including 0 and full length.
        let mut max_seen = 0usize;
        for cut in 0..=full.len() {
            let (replayed, _torn) = replay(&full[..cut]);
            assert!(
                replayed.len() <= records.len(),
                "seed={case} cut={cut}: more records than written"
            );
            // Exact prefix: record i matches written record i.
            for (i, got) in replayed.iter().enumerate() {
                assert_eq!(
                    got, &records[i],
                    "seed={case} cut={cut}: record {i} diverged"
                );
            }
            // Monotone: more bytes never yield fewer records.
            assert!(
                replayed.len() >= max_seen,
                "seed={case} cut={cut}: replay went backwards"
            );
            max_seen = replayed.len();
        }
        assert_eq!(max_seen, records.len(), "seed={case}: full log incomplete");
    }
}

/// Larger-than-memory paging is invisible to queries: a buffer pool
/// around a tenth of the data answers every query shape byte-identically
/// to an unlimited pool and to the fully-resident (unpaged) path, on the
/// serial and the parallel executor alike.
#[test]
fn paged_scans_match_resident_at_any_pool_size() {
    use oltapdb::core::{BufferConfig, DbConfig};
    let mut any_evictions = false;
    for case in 0..8u64 {
        let seed = case ^ 0xBF_F3_4D;
        let resident = Database::new();
        let queries = load_star_schema(&resident, &mut rng_for(seed));

        // A pool far below the merged segment footprint, and one that
        // never evicts. Both must agree with the resident baseline.
        for pool_bytes in [512u64, u64::MAX] {
            let db = Database::with_config(DbConfig {
                buffer: Some(BufferConfig {
                    pool_bytes,
                    page_rows: 64,
                    page_root: None,
                }),
                ..DbConfig::default()
            })
            .unwrap();
            // Same seed → byte-identical data and query list.
            let paged_queries = load_star_schema(&db, &mut rng_for(seed));
            assert_eq!(queries, paged_queries, "seed={seed:#x}");
            for sql in &queries {
                let want = resident.query(sql).unwrap();
                db.set_parallelism(1);
                let serial = db.query(sql).unwrap();
                db.set_parallelism(4);
                let parallel = db.query(sql).unwrap();
                assert_eq!(
                    serial, want,
                    "seed={seed:#x} pool={pool_bytes} serial `{sql}`"
                );
                assert_eq!(
                    parallel, want,
                    "seed={seed:#x} pool={pool_bytes} parallel `{sql}`"
                );
            }
            let stats = db.buffer_stats().unwrap();
            assert!(stats.misses > 0, "seed={seed:#x}: nothing faulted — vacuous");
            any_evictions |= stats.evictions > 0;
        }
    }
    assert!(
        any_evictions,
        "no workload ever overflowed the tiny pool — vacuous"
    );
}

/// The packed-code scan kernels (block unpack and SWAR) match the naive
/// decode-then-compare reference over random widths, values, and
/// literals, including the all-hit / no-hit selectivity extremes.
#[test]
fn packed_scan_kernels_equal_scalar_reference() {
    use oltapdb::exec::kernels::{scan_naive, scan_swar, scan_unpack_block, PackedCmp};

    for case in 0..64u64 {
        let mut rng = rng_for(case ^ 0x5CAB_51DE);
        let width = rng.gen_range(1..=20u8);
        let n = rng.gen_range(0..500usize);
        let max = 1u64.checked_shl(width as u32).unwrap() - 1;
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=max)).collect();
        let packed = BitPacked::pack(&values, width).unwrap();
        let literals = [0, max / 2, max, rng.gen_range(0..=max)];
        for cmp in [PackedCmp::Eq, PackedCmp::Lt, PackedCmp::Gt] {
            for &lit in &literals {
                let want = scan_naive(&packed, cmp, lit);
                let block = scan_unpack_block(&packed, cmp, lit);
                assert_eq!(block, want, "seed={case} w={width} {cmp:?} lit={lit}");
                if let Some(swar) = scan_swar(&packed, cmp, lit) {
                    assert_eq!(swar, want, "seed={case} w={width} swar {cmp:?} lit={lit}");
                }
            }
        }
    }
}

/// The code-domain comparison kernel agrees with decoding every code and
/// comparing in the value domain, for every operator and random widths.
#[test]
fn code_domain_compare_equals_decode_then_evaluate() {
    use oltapdb::common::BitSet;
    use oltapdb::storage::segment::cmp_codes_block;
    use oltapdb::storage::CmpOp;

    for case in 0..64u64 {
        let mut rng = rng_for(case ^ 0xC0DE_D011);
        let width = rng.gen_range(1..=16u8);
        let n = rng.gen_range(1..400usize);
        let max = 1u64.checked_shl(width as u32).unwrap() - 1;
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..=max)).collect();
        let packed = BitPacked::pack(&values, width).unwrap();
        let lit = rng.gen_range(0..=max);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let mut got = BitSet::with_len(n);
            cmp_codes_block(&packed, op, lit, &mut got);
            let mut want = BitSet::with_len(n);
            for (i, &v) in values.iter().enumerate() {
                let hit = match op {
                    CmpOp::Eq => v == lit,
                    CmpOp::Ne => v != lit,
                    CmpOp::Lt => v < lit,
                    CmpOp::Le => v <= lit,
                    CmpOp::Gt => v > lit,
                    CmpOp::Ge => v >= lit,
                };
                if hit {
                    want.set(i);
                }
            }
            assert_eq!(got, want, "seed={case} w={width} {op:?} lit={lit}");
        }
    }
}

/// The fused filter+aggregate block fold matches a per-row scalar fold
/// under random values and selection masks.
#[test]
fn int_fold_blocks_equal_scalar_fold() {
    use oltapdb::exec::kernels::IntFold;

    for case in 0..64u64 {
        let mut rng = rng_for(case ^ 0xF01D_CA5E);
        let n = rng.gen_range(0..300usize);
        let values: Vec<i64> = (0..n).map(|_| rng.gen::<i64>()).collect();
        let masks: Vec<u64> = (0..n.div_ceil(64)).map(|_| rng.gen::<u64>()).collect();
        let mut fold = IntFold::default();
        for (w, chunk) in values.chunks(64).enumerate() {
            fold.update_block(chunk, masks[w]);
        }
        let mut count = 0i64;
        let mut sum = 0i64;
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for (i, &v) in values.iter().enumerate() {
            if masks[i / 64] >> (i % 64) & 1 == 1 {
                count += 1;
                sum = sum.wrapping_add(v);
                min = min.min(v);
                max = max.max(v);
            }
        }
        assert_eq!(fold.count, count, "seed={case}");
        assert_eq!(fold.sum, sum, "seed={case}");
        assert_eq!(fold.min, min, "seed={case}");
        assert_eq!(fold.max, max, "seed={case}");
    }
}

/// Loads a random aggregation workload (dictionary-coded string group
/// key, int group key, NULLs in both keys and measures) and the GROUP BY
/// query shapes the fused path covers plus the ones it must refuse
/// (AVG, float SUM).
fn load_fused_agg_workload(db: &Arc<Database>, rng: &mut StdRng) -> Vec<String> {
    db.execute(
        "CREATE TABLE m (id BIGINT PRIMARY KEY, tag TEXT, g BIGINT, v BIGINT, f DOUBLE) \
         USING FORMAT COLUMN",
    )
    .unwrap();
    let tags = ["red", "green", "blue", "cyan", "teal"];
    let n = rng.gen_range(100..900usize);
    let t = db.table("m").unwrap();
    let tx = db.txn_manager().begin();
    for i in 0..n {
        let tag = if rng.gen_range(0..10u8) == 0 {
            Value::Null
        } else {
            Value::Str(tags[rng.gen_range(0..tags.len())].to_string())
        };
        let v = if rng.gen_range(0..12u8) == 0 {
            Value::Null
        } else {
            Value::Int(rng.gen_range(-1000..1000i64))
        };
        t.insert(
            &tx,
            oltapdb::common::Row::new(vec![
                Value::Int(i as i64),
                tag,
                Value::Int(rng.gen_range(0..7i64)),
                v,
                Value::Float(rng.gen_range(-50..50i64) as f64 / 4.0),
            ]),
        )
        .unwrap();
    }
    tx.commit().unwrap();
    // Merge most rows into (possibly paged) main segments, then add a
    // small delta tail so the fused path exercises both stores.
    db.maintenance();
    let tx = db.txn_manager().begin();
    for i in 0..rng.gen_range(1..40usize) {
        t.insert(
            &tx,
            row![
                (n + i) as i64,
                tags[i % tags.len()],
                (i % 7) as i64,
                (i as i64) - 20,
                i as f64
            ],
        )
        .unwrap();
    }
    tx.commit().unwrap();
    let x = rng.gen_range(-500..500i64);
    vec![
        "SELECT tag, COUNT(*), SUM(v), MIN(v), MAX(v) FROM m GROUP BY tag ORDER BY tag".into(),
        "SELECT g, COUNT(v), SUM(v) FROM m GROUP BY g ORDER BY g".into(),
        format!("SELECT tag, SUM(v) FROM m WHERE v > {x} GROUP BY tag ORDER BY tag"),
        "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM m".into(),
        format!("SELECT COUNT(*) FROM m WHERE g = {}", x.rem_euclid(7)),
        // Order-sensitive aggregates: must take the scalar path yet still
        // agree everywhere.
        "SELECT tag, AVG(v), SUM(f) FROM m GROUP BY tag ORDER BY tag".into(),
    ]
}

/// Fused code-domain aggregation is invisible: resident and paged
/// storage, serial and parallel execution, and the forced-scalar fault
/// fallback all produce byte-identical GROUP BY results.
#[test]
fn fused_aggregation_matches_scalar_everywhere() {
    use oltapdb::common::fault::{points, FaultInjector, FaultPoint};
    use oltapdb::core::{BufferConfig, DbConfig};

    for case in 0..8u64 {
        let seed = case ^ 0xF0_5ED_A66;
        let baseline = Database::new();
        let queries = load_fused_agg_workload(&baseline, &mut rng_for(seed));

        // Forced fallback: every fused block boundary drops to the scalar
        // path. Probability 0.5 mixes fused and scalar groups mid-query.
        for prob in [1.0f64, 0.5] {
            let faults = FaultInjector::new(seed ^ prob.to_bits());
            faults.arm(points::EXEC_KERNEL_FALLBACK, FaultPoint::with_probability(prob));
            let db = Database::with_config(DbConfig {
                faults: Some(Arc::clone(&faults)),
                ..DbConfig::default()
            })
            .unwrap();
            load_fused_agg_workload(&db, &mut rng_for(seed));
            for sql in &queries {
                assert_eq!(
                    db.query(sql).unwrap(),
                    baseline.query(sql).unwrap(),
                    "seed={seed:#x} fallback_prob={prob} `{sql}`"
                );
            }
            assert!(
                faults.fired_count() > 0,
                "seed={seed:#x}: fallback fault never exercised"
            );
        }

        // Paged storage (tiny and unbounded pools) × serial/parallel.
        for pool_bytes in [1024u64, u64::MAX] {
            let db = Database::with_config(DbConfig {
                buffer: Some(BufferConfig {
                    pool_bytes,
                    page_rows: 64,
                    page_root: None,
                }),
                ..DbConfig::default()
            })
            .unwrap();
            load_fused_agg_workload(&db, &mut rng_for(seed));
            for sql in &queries {
                let want = baseline.query(sql).unwrap();
                db.set_parallelism(1);
                assert_eq!(
                    db.query(sql).unwrap(),
                    want,
                    "seed={seed:#x} pool={pool_bytes} serial `{sql}`"
                );
                db.set_parallelism(4);
                assert_eq!(
                    db.query(sql).unwrap(),
                    want,
                    "seed={seed:#x} pool={pool_bytes} parallel `{sql}`"
                );
            }
        }

        // Parallel on the resident baseline itself.
        baseline.set_parallelism(4);
        let reserial = Database::new();
        load_fused_agg_workload(&reserial, &mut rng_for(seed));
        for sql in &queries {
            assert_eq!(
                baseline.query(sql).unwrap(),
                reserial.query(sql).unwrap(),
                "seed={seed:#x} parallel-resident `{sql}`"
            );
        }
    }
}

/// Freezing is invisible to queries: for random workloads, a database
/// whose segments were frozen (in random subsets, via staged merges)
/// returns byte-identical results to a never-frozen control — across
/// resident and paged storage, serial and parallel execution, scans,
/// aggregates, and joins.
#[test]
fn frozen_scans_match_hot_everywhere() {
    use oltapdb::core::{BufferConfig, DbConfig};

    for case in 0..6u64 {
        let seed = case ^ 0x0C01_D51D;
        let control = Database::new();
        let queries = load_star_schema(&control, &mut rng_for(seed));

        // Staged extra batches; the freeze point lands between two random
        // stages, so only a random subset of segments ends up frozen.
        let mut extra = rng_for(seed ^ 0xF0F0);
        let split = extra.gen_range(0..3u32);
        let staged: Vec<String> = (0..3u32)
            .map(|stage| {
                let base = 100_000 + stage as i64 * 1000;
                let vals: Vec<String> = (0..40)
                    .map(|i| {
                        format!(
                            "({}, {}, {})",
                            base + i,
                            extra.gen_range(0..8i64),
                            extra.gen_range(-100..100i64)
                        )
                    })
                    .collect();
                format!("INSERT INTO fact VALUES {}", vals.join(", "))
            })
            .collect();
        // The control gets the same rows, merged but never frozen.
        for sql in &staged {
            control.execute(sql).unwrap();
            control.maintenance();
        }

        for pool_bytes in [None, Some(2048u64)] {
            let db = match pool_bytes {
                None => Database::new(),
                Some(pool) => Database::with_config(DbConfig {
                    buffer: Some(BufferConfig {
                        pool_bytes: pool,
                        page_rows: 64,
                        page_root: None,
                    }),
                    ..DbConfig::default()
                })
                .unwrap(),
            };
            assert_eq!(queries, load_star_schema(&db, &mut rng_for(seed)));

            for (stage, sql) in staged.iter().enumerate() {
                if stage as u32 == split {
                    let stats = db.freeze_all(true).unwrap();
                    assert!(
                        stats.segments_frozen > 0,
                        "seed={seed:#x} stage={stage}: nothing froze — vacuous"
                    );
                }
                db.execute(sql).unwrap();
                db.maintenance();
            }

            let heat = db.stats().heat;
            assert!(heat.frozen_segments > 0, "seed={seed:#x}: no frozen segment live");
            for sql in &queries {
                let want = control.query(sql).unwrap();
                db.set_parallelism(1);
                assert_eq!(db.query(sql).unwrap(), want, "seed={seed:#x} serial `{sql}`");
                db.set_parallelism(4);
                assert_eq!(
                    db.query(sql).unwrap(),
                    want,
                    "seed={seed:#x} parallel `{sql}`"
                );
            }
            // Point reads against frozen rows.
            assert_eq!(
                db.query("SELECT v FROM fact WHERE id = 1").unwrap(),
                control.query("SELECT v FROM fact WHERE id = 1").unwrap(),
                "seed={seed:#x}"
            );
        }
    }
}

/// `AS OF` oracle: replaying a random DML history and snapshotting the
/// full table after every statement, a later `AS OF ts` query must
/// reproduce each snapshot exactly — including after merges and freezes
/// run below a pinned watermark. Once the history floor passes a
/// snapshot, reading it fails with a typed error instead of a wrong
/// answer.
#[test]
fn as_of_matches_snapshot_oracle() {
    use oltapdb::common::DbError;

    for case in 0..6u64 {
        let mut rng = rng_for(case ^ 0xA50F_0A5E);
        let db = Database::new();
        db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT) USING FORMAT COLUMN")
            .unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {})", i * 2))
                .unwrap();
        }
        // Merge the base data; this raises the history floor, so record
        // snapshots only from here on.
        db.maintenance();

        // A pinned reader holds the GC watermark down, so merges and
        // freezes during the history keep every later snapshot readable.
        let mut pin = db.session();
        pin.execute("BEGIN").unwrap();

        let mut snapshots: Vec<(u64, Vec<oltapdb::common::Row>)> = Vec::new();
        for step in 0..30 {
            let id = rng.gen_range(0..60i64);
            let choice = rng.gen_range(0..3u32);
            let _ = match choice {
                0 => db.execute(&format!(
                    "UPDATE t SET v = {} WHERE id = {id}",
                    rng.gen_range(-500..500i64)
                )),
                1 => db.execute(&format!("DELETE FROM t WHERE id = {id}")),
                _ => db.execute(&format!(
                    "INSERT INTO t VALUES ({}, {})",
                    1000 + step,
                    rng.gen_range(-500..500i64)
                )),
            };
            let ts = db.txn_manager().now();
            let rows = db.query("SELECT id, v FROM t ORDER BY id").unwrap();
            snapshots.push((ts, rows));
            if step % 10 == 4 {
                db.maintenance();
                db.freeze_all(true).unwrap();
            }
        }

        // Every snapshot is reproducible, serially and in parallel.
        for (ts, want) in &snapshots {
            let sql = format!("SELECT id, v FROM t AS OF {ts} ORDER BY id");
            db.set_parallelism(1);
            assert_eq!(&db.query(&sql).unwrap(), want, "seed={case} ts={ts} serial");
            db.set_parallelism(4);
            assert_eq!(&db.query(&sql).unwrap(), want, "seed={case} ts={ts} parallel");
        }
        db.set_parallelism(1);

        // Unpin and let maintenance reclaim the history: snapshots below
        // the new floor now fail loudly.
        pin.execute("COMMIT").unwrap();
        db.maintenance();
        let floor = db.history_floor();
        let (first_ts, _) = snapshots[0];
        assert!(first_ts < floor, "seed={case}: floor did not advance");
        let err = db
            .query(&format!("SELECT id FROM t AS OF {first_ts}"))
            .unwrap_err();
        assert!(
            matches!(&err, DbError::InvalidArgument(m) if m.contains("history floor")),
            "seed={case}: {err}"
        );
        // Present-time reads are unaffected.
        let now = db.txn_manager().now();
        assert_eq!(
            db.query(&format!("SELECT id, v FROM t AS OF {now} ORDER BY id"))
                .unwrap(),
            db.query("SELECT id, v FROM t ORDER BY id").unwrap(),
            "seed={case}"
        );
    }
}

// ===================================================================
// Retry/backoff properties (`oltapdb::common::retry::Backoff`): the
// client edge leans on these bounds for its reconnect loops, so they
// are pinned here against the closed form
// `delay = min(base * 2^attempt, cap) + jitter(0..50%)`.
// ===================================================================

/// Every delay stays within the closed-form envelope:
/// `exp <= delay < exp * 1.5` where `exp = min(base << attempt, cap)`.
#[test]
fn prop_backoff_delays_within_jitter_envelope() {
    use oltapdb::common::retry::Backoff;
    use std::time::Duration;
    for case in 0..200u64 {
        let mut rng = rng_for(6000 + case);
        let base_ms = rng.gen_range(1..50u64);
        let cap_ms = rng.gen_range(base_ms..base_ms * 64);
        let seed = rng.gen::<u64>();
        let mut b = Backoff::new(
            Duration::from_millis(base_ms),
            Duration::from_millis(cap_ms),
        )
        .seeded(seed);
        for attempt in 0..20u32 {
            let exp = Duration::from_millis(base_ms)
                .saturating_mul(1u32 << attempt.min(16))
                .min(Duration::from_millis(cap_ms));
            let d = b.next_delay();
            assert!(
                d >= exp,
                "attempt {attempt}: delay {d:?} below deterministic floor {exp:?} \
                 (base={base_ms}ms cap={cap_ms}ms seed={seed:#x})"
            );
            let ceil = exp + exp.mul_f64(0.5);
            assert!(
                d <= ceil,
                "attempt {attempt}: delay {d:?} above jitter ceiling {ceil:?} \
                 (base={base_ms}ms cap={cap_ms}ms seed={seed:#x})"
            );
        }
    }
}

/// Averaged over many seeds, successive delays are non-decreasing until
/// the cap (exponential growth dominates the jitter noise), and a
/// `reset()` starts the schedule over.
#[test]
fn prop_backoff_monotone_on_average_and_resets() {
    use oltapdb::common::retry::Backoff;
    use std::time::Duration;
    let base = Duration::from_millis(4);
    let cap = Duration::from_secs(2);
    const SEEDS: u64 = 300;
    const ATTEMPTS: usize = 8; // 4ms << 8 is still under the 2s cap
    let mut sums = [Duration::ZERO; ATTEMPTS];
    for s in 0..SEEDS {
        let mut rng = rng_for(6200 + s);
        let mut b = Backoff::new(base, cap).seeded(rng.gen());
        for sum in sums.iter_mut() {
            *sum += b.next_delay();
        }
        // After a reset, the schedule starts from the base again.
        b.reset();
        let restarted = b.next_delay();
        assert!(
            restarted < base * 2,
            "reset must restart the schedule: got {restarted:?}"
        );
    }
    for w in sums.windows(2) {
        assert!(
            w[1] > w[0],
            "average delay must grow per attempt below the cap: {sums:?}"
        );
    }
}

/// A cancellable backoff sleep honors its floor (the server's
/// retry-after hint) and returns promptly — not after the full delay —
/// when the token trips mid-sleep.
#[test]
fn prop_backoff_sleep_honors_floor_and_cancels_promptly() {
    use oltapdb::common::retry::Backoff;
    use oltapdb::common::{CancellationToken, DbError};
    use std::time::{Duration, Instant};

    // Floor: a tiny backoff sleeps at least the requested retry-after.
    let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(2)).seeded(7);
    let cancel = CancellationToken::new();
    let floor = Duration::from_millis(60);
    let start = Instant::now();
    b.sleep_cancellable(&cancel, floor).unwrap();
    assert!(
        start.elapsed() >= floor,
        "sleep returned before the retry-after floor: {:?}",
        start.elapsed()
    );

    // Prompt cancellation: a long sleep ends within the slice budget of
    // the cancel, not after the full multi-second delay.
    let mut b = Backoff::new(Duration::from_secs(5), Duration::from_secs(5)).seeded(7);
    let cancel = CancellationToken::new();
    let canceller = {
        let cancel = cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            cancel.cancel();
        })
    };
    let start = Instant::now();
    let err = b
        .sleep_cancellable(&cancel, Duration::ZERO)
        .expect_err("tripped token must abort the sleep");
    assert!(matches!(err, DbError::Cancelled(_)), "got {err:?}");
    assert!(
        start.elapsed() < Duration::from_millis(500),
        "cancellation must interrupt the sleep promptly, took {:?}",
        start.elapsed()
    );
    canceller.join().unwrap();
}
