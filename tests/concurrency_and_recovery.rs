//! Integration tests for concurrency (snapshot isolation, conflicts,
//! concurrent sessions) and durability (WAL crash recovery, torn tails).

use oltapdb::common::{DbError, Value};
use oltapdb::core::Database;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_transfer_storm_conserves_total() {
    // The classic bank test: concurrent transfers between accounts must
    // conserve the total balance despite write conflicts.
    let db = Database::new();
    db.execute("CREATE TABLE accts (id BIGINT PRIMARY KEY, bal BIGINT)")
        .unwrap();
    let accounts = 20i64;
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    for i in 0..accounts {
        s.execute(&format!("INSERT INTO accts VALUES ({i}, 1000)"))
            .unwrap();
    }
    s.execute("COMMIT").unwrap();

    let conflicts = Arc::new(AtomicU64::new(0));
    let committed = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let db = Arc::clone(&db);
            let conflicts = Arc::clone(&conflicts);
            let committed = Arc::clone(&committed);
            scope.spawn(move || {
                let mut session = db.session();
                for i in 0..100u64 {
                    let from = ((t * 37 + i * 11) % accounts as u64) as i64;
                    let to = ((t * 13 + i * 7) % accounts as u64) as i64;
                    if from == to {
                        continue;
                    }
                    session.execute("BEGIN").unwrap();
                    let r = (|| -> Result<(), DbError> {
                        session
                            .execute(&format!(
                                "UPDATE accts SET bal = bal - 10 WHERE id = {from}"
                            ))?;
                        session
                            .execute(&format!(
                                "UPDATE accts SET bal = bal + 10 WHERE id = {to}"
                            ))?;
                        Ok(())
                    })();
                    match r {
                        Ok(()) => {
                            session.execute("COMMIT").unwrap();
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            let _ = session.execute("ROLLBACK");
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let total = db.query("SELECT SUM(bal) FROM accts").unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(total, accounts * 1000, "money leaked!");
    assert!(committed.load(Ordering::Relaxed) > 0);
    // With 4 threads over 20 accounts we expect some conflicts; all must
    // have rolled back cleanly (asserted by the conserved total).
}

#[test]
fn long_analytic_snapshot_ignores_later_commits() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT) USING FORMAT COLUMN")
        .unwrap();
    let mut s = db.session();
    s.execute("BEGIN").unwrap();
    for i in 0..1000 {
        s.execute(&format!("INSERT INTO t VALUES ({i}, 1)")).unwrap();
    }
    s.execute("COMMIT").unwrap();

    let mut analyst = db.session();
    analyst.execute("BEGIN").unwrap();
    let sum0 = analyst.execute("SELECT SUM(v) FROM t").unwrap().rows()[0][0].clone();

    // Heavy concurrent churn, including a merge.
    std::thread::scope(|scope| {
        let db2 = Arc::clone(&db);
        scope.spawn(move || {
            for i in 0..200 {
                db2.execute(&format!("UPDATE t SET v = 100 WHERE id = {i}"))
                    .unwrap();
            }
            db2.maintenance();
        });
        for _ in 0..10 {
            let s = analyst.execute("SELECT SUM(v) FROM t").unwrap().rows()[0][0].clone();
            assert_eq!(s, sum0, "analyst's snapshot drifted");
        }
    });
    analyst.execute("COMMIT").unwrap();

    let now = db.query("SELECT SUM(v) FROM t").unwrap()[0][0].clone();
    assert_eq!(now, Value::Int(1000 - 200 + 200 * 100));
}

#[test]
fn recovery_replays_interleaved_ddl_and_dml() {
    let dir = std::env::temp_dir().join(format!("oltap_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("interleaved.wal");
    let _ = std::fs::remove_file(&path);
    {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE a (id BIGINT PRIMARY KEY, v BIGINT)").unwrap();
        db.execute("INSERT INTO a VALUES (1, 1)").unwrap();
        db.execute("CREATE TABLE b (id BIGINT PRIMARY KEY, s TEXT) USING FORMAT DUAL")
            .unwrap();
        db.execute("INSERT INTO b VALUES (1, 'x')").unwrap();
        db.execute("UPDATE a SET v = 2 WHERE id = 1").unwrap();
        db.execute("DROP TABLE b").unwrap();
        db.execute("CREATE TABLE b (id BIGINT PRIMARY KEY, n BIGINT)").unwrap();
        db.execute("INSERT INTO b VALUES (7, 70)").unwrap();
        // Multi-statement transaction.
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO a VALUES (2, 20)").unwrap();
        s.execute("INSERT INTO b VALUES (8, 80)").unwrap();
        s.execute("COMMIT").unwrap();
        // An aborted transaction must NOT reappear after recovery.
        let mut s = db.session();
        s.execute("BEGIN").unwrap();
        s.execute("INSERT INTO a VALUES (99, 99)").unwrap();
        s.execute("ROLLBACK").unwrap();
    }
    let db = Database::open(&path).unwrap();
    assert_eq!(
        db.query("SELECT v FROM a WHERE id = 1").unwrap()[0][0],
        Value::Int(2)
    );
    assert_eq!(
        db.query("SELECT COUNT(*) FROM a").unwrap()[0][0],
        Value::Int(2)
    );
    // The recreated b has the new schema and both rows.
    let rows = db.query("SELECT id, n FROM b ORDER BY id").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[1][1], Value::Int(80));
    // Aborted insert is gone.
    assert_eq!(
        db.query("SELECT COUNT(*) FROM a WHERE id = 99").unwrap()[0][0],
        Value::Int(0)
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn recovery_is_deterministic_after_repeated_crashes() {
    let dir = std::env::temp_dir().join(format!("oltap_it2_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("repeat.wal");
    let _ = std::fs::remove_file(&path);
    // Crash/reopen in a loop, appending more work each generation.
    for generation in 0..5i64 {
        let db = Database::open(&path).unwrap();
        if generation == 0 {
            db.execute("CREATE TABLE g (id BIGINT PRIMARY KEY, gen BIGINT)").unwrap();
        }
        for i in 0..20 {
            db.execute(&format!(
                "INSERT INTO g VALUES ({}, {generation})",
                generation * 100 + i
            ))
            .unwrap();
        }
        // dropped = crash
    }
    let db = Database::open(&path).unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM g").unwrap()[0][0],
        Value::Int(100)
    );
    let per_gen = db
        .query("SELECT gen, COUNT(*) FROM g GROUP BY gen ORDER BY gen")
        .unwrap();
    assert_eq!(per_gen.len(), 5);
    for r in per_gen {
        assert_eq!(r[1], Value::Int(20));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sessions_are_isolated_from_each_other() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id BIGINT PRIMARY KEY, v BIGINT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 0)").unwrap();

    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute("BEGIN").unwrap();
    s2.execute("BEGIN").unwrap();
    s1.execute("INSERT INTO t VALUES (2, 2)").unwrap();
    // s2 does not see s1's uncommitted insert.
    assert_eq!(
        s2.execute("SELECT COUNT(*) FROM t").unwrap().rows()[0][0],
        Value::Int(1)
    );
    // s1 sees its own.
    assert_eq!(
        s1.execute("SELECT COUNT(*) FROM t").unwrap().rows()[0][0],
        Value::Int(2)
    );
    s1.execute("COMMIT").unwrap();
    // s2's snapshot predates the commit.
    assert_eq!(
        s2.execute("SELECT COUNT(*) FROM t").unwrap().rows()[0][0],
        Value::Int(1)
    );
    s2.execute("COMMIT").unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(2)
    );
}
