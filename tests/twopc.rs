//! Cross-shard two-phase-commit integration tests, including the seeded
//! crash-point property test: for every seed, a random fault is armed at
//! a random protocol transition, the commit is driven to completion (or
//! into doubt and through successor recovery), and the atomicity
//! invariant is checked against the post-recovery cluster contents —
//! either *every* batch row is visible on its shard or *none* is, and
//! whichever holds must agree with the coordinator log's decision.

use oltapdb::common::fault::{points, FaultInjector, FaultPoint};
use oltapdb::common::{row, DataType, DbError, Field, Row, Schema};
use oltapdb::dist::{
    ClusterConfig, DistributedTable, RaftConfig, TwoPcCoordinator, TwoPcOutcome,
};
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Arc<Schema> {
    Arc::new(
        Schema::with_primary_key(
            vec![
                Field::not_null("id", DataType::Int64),
                Field::new("v", DataType::Int64),
            ],
            &["id"],
        )
        .unwrap(),
    )
}

fn cluster(faults: Arc<FaultInjector>) -> DistributedTable {
    let cfg = ClusterConfig {
        nodes: 3,
        replication: 3,
        partitions: 4,
        raft: RaftConfig::default(),
    };
    DistributedTable::new_with_faults(schema(), cfg, faults).unwrap()
}

/// The crash points the property test draws from. `None` is included so
/// the fault-free path is exercised by the same machinery.
const CRASH_POINTS: [Option<&str>; 5] = [
    None,
    Some(points::TWOPC_COORD_CRASH_AFTER_PREPARE),
    Some(points::TWOPC_COORD_CRASH_AFTER_DECISION),
    Some(points::TWOPC_PARTICIPANT_CRASH_PREPARED),
    Some(points::TWOPC_DECISION_MSG_DROP),
];

/// SplitMix64 — deterministic per-seed choice without pulling in an RNG.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One property-test iteration: arm the seed-chosen crash point, attempt
/// a cross-shard commit over a baseline, recover if in doubt, and verify
/// atomicity. Returns the crash point exercised (for coverage assertion).
fn run_crash_point_iteration(seed: u64) -> Option<&'static str> {
    let point = CRASH_POINTS[(mix(seed) % CRASH_POINTS.len() as u64) as usize];
    let cluster_faults = FaultInjector::new(seed);
    let coord_faults = FaultInjector::new(seed ^ 0xF00D);
    if let Some(p) = point {
        let injector = if p == points::TWOPC_PARTICIPANT_CRASH_PREPARED {
            &cluster_faults // fires inside replica apply threads
        } else {
            &coord_faults // fires on the coordinator's thread
        };
        injector.arm(p, FaultPoint::times(1));
    }

    let t = cluster(Arc::clone(&cluster_faults));
    let coord = TwoPcCoordinator::new(3, Arc::clone(&coord_faults)).unwrap();

    // A pre-existing baseline that must survive no matter what.
    let baseline: Vec<Row> = (100..106i64).map(|i| row![i, -i]).collect();
    for r in &baseline {
        t.insert(r.clone()).unwrap();
    }
    let batch: Vec<Row> = (0..8i64).map(|i| row![i, i * 10]).collect();

    let gtxn = match coord.commit_rows(&t, batch.clone()) {
        Ok(outcome) => {
            assert_eq!(
                outcome,
                TwoPcOutcome::Committed,
                "clean batch must commit (seed={seed:#x})"
            );
            None
        }
        Err(DbError::TxnInDoubt { gtxn }) => Some(gtxn),
        Err(e) => panic!("unexpected error (seed={seed:#x}): {e}"),
    };

    // Crash aftermath: restart any replica the participant fault killed,
    // then hand the log to a successor coordinator for resolution.
    if gtxn.is_some() || point == Some(points::TWOPC_PARTICIPANT_CRASH_PREPARED) {
        for g in t.groups() {
            for r in &g.replicas {
                if !r.raft.is_running() {
                    r.raft.restart();
                }
            }
        }
    }
    let decided = if let Some(gtxn) = gtxn {
        let log = coord.log();
        drop(coord);
        let coord2 = TwoPcCoordinator::attach(log, FaultInjector::disabled()).unwrap();
        coord2.resolve_in_doubt(&t).unwrap();
        // Recovery is stable: the decision is durable and final.
        let d = coord2.decision_for(gtxn);
        assert!(d.is_some(), "recovery left no decision (seed={seed:#x})");
        d.unwrap()
    } else {
        true
    };

    // Atomicity: the cluster holds exactly baseline, or baseline + batch —
    // and which one must match the coordinator log's decision.
    let mut expect: Vec<Row> = baseline;
    if decided {
        expect.extend(batch);
    }
    expect.sort();
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        if t.collect_all().unwrap() == expect {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "cluster contents never matched the {} decision (seed={seed:#x}, point={point:?})",
            if decided { "commit" } else { "abort" },
        );
        std::thread::sleep(Duration::from_millis(30));
    }
    point
}

/// The acceptance-criteria property test: ≥ 8 distinct seeds, each with a
/// randomly drawn crash point, all upholding cross-shard atomicity after
/// recovery. Seeds are fixed so failures replay exactly.
#[test]
fn twopc_atomicity_under_random_crash_points() {
    let mut exercised = std::collections::BTreeSet::new();
    for seed in 0..10u64 {
        let point = run_crash_point_iteration(0x2BC0_0000 + seed);
        exercised.insert(point.map(|p| p.to_string()));
    }
    // The seed spread actually covered multiple distinct crash points.
    assert!(
        exercised.len() >= 3,
        "seed spread too narrow: only {exercised:?} exercised"
    );
}
