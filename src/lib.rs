//! # oltapdb
//!
//! Umbrella crate re-exporting the full engine. See the workspace README
//! for the architecture overview; start with [`oltap_core::Database`].

pub use oltap_client as client;
pub use oltap_common as common;
pub use oltap_core as core;
pub use oltap_dist as dist;
pub use oltap_exec as exec;
pub use oltap_sched as sched;
pub use oltap_server as server;
pub use oltap_sql as sql;
pub use oltap_storage as storage;
pub use oltap_txn as txn;
