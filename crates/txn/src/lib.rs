//! # oltap-txn
//!
//! Multi-version concurrency control (MVCC) with snapshot isolation, the
//! transaction manager, and the write-ahead log.
//!
//! The tutorial's central observation is that operational analytics systems
//! must let long analytic scans and short transactional updates coexist
//! *without blocking each other*. Every system it surveys — HANA, DB2 BLU,
//! Oracle DBIM, MemSQL, HyPer — achieves this with some form of
//! multiversioning: readers pin a snapshot, writers create new versions.
//! (HyPer used OS virtual-memory snapshots; the industry systems and this
//! engine use timestamp-based version chains, which generalize to
//! fine-grained updates.)
//!
//! Architecture (Hekaton-style timestamp MVCC):
//!
//! * A global logical [`clock::Clock`] issues begin and commit timestamps.
//! * Every record version carries a `begin` and `end` [`version::Stamp`];
//!   a stamp is either a committed timestamp or a *pending* marker naming
//!   the transaction that created/ended it.
//! * A reader with snapshot `read_ts` sees exactly the versions with
//!   `begin ≤ read_ts < end` (plus its own uncommitted writes).
//! * Writers claim the `end` stamp of the latest committed version;
//!   first-committer-wins conflicts surface as
//!   [`oltap_common::DbError::WriteConflict`].
//! * Commit stamps every version in the write set with the commit
//!   timestamp; abort rolls the stamps back. Both are coordinated through
//!   the [`manager::TransactionManager`].
//! * All DML is logged to the [`wal::Wal`] before commit; [`wal::replay`]
//!   reconstructs state after a crash.

pub mod clock;
pub mod manager;
pub mod version;
pub mod wal;

pub use clock::{Clock, Ts};
pub use manager::{Transaction, TransactionManager, TxnStatus, WriteSetEntry};
pub use version::{Stamp, Version, VersionChain};
