//! The transaction manager: begin/commit/abort, snapshots, write sets, and
//! the garbage-collection watermark.

use crate::clock::Ts;
use oltap_common::ids::TxnId;
use oltap_common::{DbError, Result};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Running; may read and write.
    Active,
    /// Prepared under two-phase commit: the write set is staged and must
    /// be held (pending versions stay pinned, invisible to other
    /// snapshots) until the coordinator's COMMIT or ABORT decision
    /// arrives. No further writes are accepted.
    Prepared,
    /// Successfully committed at the contained timestamp.
    Committed(Ts),
    /// Rolled back.
    Aborted,
}

/// A storage-side participant in a transaction's write set.
///
/// The storage layer registers one entry per touched version chain; the
/// manager drives two-phase finalization: on commit every entry is stamped
/// with the commit timestamp, on abort every entry rolls back. Entries must
/// be idempotent per transaction (they key off the `TxnId`).
pub trait WriteSetEntry: Send + Sync {
    /// Stamp pending markers with the commit timestamp.
    fn commit(&self, txn: TxnId, commit_ts: Ts);
    /// Remove/undo pending markers.
    fn abort(&self, txn: TxnId);
}

/// A handle to one running transaction.
///
/// Cheap to clone is *not* a goal — a `Transaction` is owned by one session
/// and finalized exactly once via [`Transaction::commit`] /
/// [`Transaction::abort`] (drop aborts implicitly).
pub struct Transaction {
    id: TxnId,
    begin_ts: Ts,
    mgr: Arc<TransactionManager>,
    write_set: Mutex<Vec<Arc<dyn WriteSetEntry>>>,
    status: Mutex<TxnStatus>,
}

impl std::fmt::Debug for Transaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transaction")
            .field("id", &self.id)
            .field("begin_ts", &self.begin_ts)
            .field("status", &*self.status.lock())
            .finish()
    }
}

impl Transaction {
    /// The transaction id (the MVCC pending-stamp namespace).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The snapshot timestamp: this transaction sees all commits `≤ begin_ts`.
    pub fn begin_ts(&self) -> Ts {
        self.begin_ts
    }

    /// Current status.
    pub fn status(&self) -> TxnStatus {
        *self.status.lock()
    }

    /// Registers a write-set participant. Duplicate registrations are
    /// harmless (commit/abort are idempotent per txn), but callers usually
    /// dedupe for efficiency.
    pub fn enlist(&self, entry: Arc<dyn WriteSetEntry>) -> Result<()> {
        let status = self.status.lock();
        if *status != TxnStatus::Active {
            return Err(DbError::TxnClosed(format!("{:?}", *status)));
        }
        self.write_set.lock().push(entry);
        Ok(())
    }

    /// Number of enlisted write-set entries (diagnostics).
    pub fn write_set_len(&self) -> usize {
        self.write_set.lock().len()
    }

    /// Transitions `Active → Prepared` (the participant half of 2PC phase
    /// one): the write set is frozen and its pending versions stay pinned
    /// until [`Transaction::commit`] or [`Transaction::abort`] delivers
    /// the coordinator's decision. Idempotent on an already-prepared
    /// transaction.
    pub fn prepare(&self) -> Result<()> {
        let mut status = self.status.lock();
        match *status {
            TxnStatus::Active | TxnStatus::Prepared => {
                *status = TxnStatus::Prepared;
                Ok(())
            }
            other => Err(DbError::TxnClosed(format!("{other:?}"))),
        }
    }

    /// Commits: obtains a commit timestamp and stamps the write set.
    /// Returns the commit timestamp. Valid from `Active` (local commit)
    /// and from `Prepared` (2PC decision delivery).
    pub fn commit(&self) -> Result<Ts> {
        let mut status = self.status.lock();
        if !matches!(*status, TxnStatus::Active | TxnStatus::Prepared) {
            return Err(DbError::TxnClosed(format!("{:?}", *status)));
        }
        // Commit-window protocol: the commit timestamp is *reserved*
        // first, the write set is stamped, and only then does the
        // timestamp become part of the snapshot watermark. A reader can
        // therefore never hold a snapshot that covers a commit whose
        // stamping is still in flight (which would make rows pop into its
        // view mid-transaction).
        let cts = self.mgr.reserve_commit_ts();
        for e in self.write_set.lock().iter() {
            e.commit(self.id, cts);
        }
        self.mgr.finish_commit_ts(cts);
        *status = TxnStatus::Committed(cts);
        self.mgr.deregister(self.id);
        Ok(cts)
    }

    /// Aborts: rolls back the write set. Valid from `Active` and from
    /// `Prepared` (2PC abort decision delivery).
    pub fn abort(&self) -> Result<()> {
        let mut status = self.status.lock();
        if !matches!(*status, TxnStatus::Active | TxnStatus::Prepared) {
            return Err(DbError::TxnClosed(format!("{:?}", *status)));
        }
        for e in self.write_set.lock().iter() {
            e.abort(self.id);
        }
        *status = TxnStatus::Aborted;
        self.mgr.deregister(self.id);
        Ok(())
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        // Implicit rollback: an un-finalized transaction must not leave
        // pending stamps behind. This includes `Prepared` — a 2PC
        // participant must keep the handle alive (it owns the staged
        // versions) until the decision arrives; dropping it is the
        // in-process equivalent of losing the prepared state's holder,
        // and leaking pinned versions forever would be strictly worse.
        if matches!(*self.status.lock(), TxnStatus::Active | TxnStatus::Prepared) {
            for e in self.write_set.lock().iter() {
                e.abort(self.id);
            }
            self.mgr.deregister(self.id);
            *self.status.lock() = TxnStatus::Aborted;
        }
    }
}

/// The process-wide transaction coordinator.
///
/// Commit timestamps are allocated from `next_commit` but only become
/// visible to new snapshots once their transaction has finished stamping
/// its write set: `visible` is the *commit watermark* — the largest
/// timestamp `w` such that every commit `≤ w` is fully stamped. Snapshots
/// read at the watermark, which closes the classic race where a reader
/// starts between a commit's timestamp allocation and its version
/// stamping.
#[derive(Debug)]
pub struct TransactionManager {
    /// Last allocated commit timestamp.
    next_commit: AtomicU64,
    /// Reserved-but-not-finished commit timestamps.
    inflight: Mutex<BTreeSet<Ts>>,
    /// The commit watermark (see type docs).
    visible: AtomicU64,
    next_txn: AtomicU64,
    /// Active transactions: id → begin_ts, ordered so the GC watermark is
    /// the first entry's begin_ts.
    active: Mutex<BTreeMap<TxnId, Ts>>,
}

impl Default for TransactionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TransactionManager {
    /// A manager with a fresh clock.
    pub fn new() -> Self {
        Self::resuming_at(0)
    }

    /// A manager resuming after recovery at clock position `ts`.
    pub fn resuming_at(ts: Ts) -> Self {
        TransactionManager {
            next_commit: AtomicU64::new(ts),
            inflight: Mutex::new(BTreeSet::new()),
            visible: AtomicU64::new(ts),
            next_txn: AtomicU64::new(1),
            active: Mutex::new(BTreeMap::new()),
        }
    }

    /// Reserves the next commit timestamp. The caller must stamp its write
    /// set and then call [`TransactionManager::finish_commit_ts`]; until
    /// then the timestamp stays outside every new snapshot.
    pub fn reserve_commit_ts(&self) -> Ts {
        let mut inflight = self.inflight.lock();
        let cts = self.next_commit.fetch_add(1, Ordering::SeqCst) + 1;
        inflight.insert(cts);
        cts
    }

    /// Marks a reserved commit timestamp fully stamped and advances the
    /// snapshot watermark as far as the in-flight set allows.
    pub fn finish_commit_ts(&self, cts: Ts) {
        let mut inflight = self.inflight.lock();
        inflight.remove(&cts);
        let new_visible = match inflight.first() {
            Some(&oldest) => oldest - 1,
            None => self.next_commit.load(Ordering::SeqCst),
        };
        self.visible.fetch_max(new_visible, Ordering::SeqCst);
    }

    /// Starts a transaction whose snapshot is "now" (the commit
    /// watermark: every fully stamped commit, and nothing in flight).
    pub fn begin(self: &Arc<Self>) -> Transaction {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::SeqCst));
        let begin_ts = self.now();
        self.active.lock().insert(id, begin_ts);
        Transaction {
            id,
            begin_ts,
            mgr: Arc::clone(self),
            write_set: Mutex::new(Vec::new()),
            status: Mutex::new(TxnStatus::Active),
        }
    }

    /// The current snapshot timestamp (the commit watermark).
    pub fn now(&self) -> Ts {
        self.visible.load(Ordering::SeqCst)
    }

    /// Issues a commit timestamp directly and immediately publishes it
    /// (for callers with nothing to stamp, e.g. DDL log records).
    pub fn tick(&self) -> Ts {
        let cts = self.reserve_commit_ts();
        self.finish_commit_ts(cts);
        cts
    }

    /// Advances the clock (log replay / remote timestamps).
    pub fn advance_to(&self, ts: Ts) {
        self.next_commit.fetch_max(ts, Ordering::SeqCst);
        self.visible.fetch_max(ts, Ordering::SeqCst);
    }

    /// The garbage-collection watermark: versions that ended at or before
    /// this timestamp are invisible to every active and future snapshot.
    pub fn gc_watermark(&self) -> Ts {
        self.active
            .lock()
            .values()
            .min()
            .copied()
            .unwrap_or_else(|| self.now())
    }

    /// Number of running transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    fn deregister(&self, id: TxnId) {
        self.active.lock().remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::VersionChain;

    /// Adapter: a version chain as a write-set entry.
    struct ChainEntry(Arc<VersionChain<i64>>);
    impl WriteSetEntry for ChainEntry {
        fn commit(&self, txn: TxnId, cts: Ts) {
            self.0.commit(txn, cts);
        }
        fn abort(&self, txn: TxnId) {
            self.0.abort(txn);
        }
    }

    #[test]
    fn begin_commit_lifecycle() {
        let mgr = Arc::new(TransactionManager::new());
        let chain = Arc::new(VersionChain::new());
        let t = mgr.begin();
        chain.insert(7, t.id(), t.begin_ts()).unwrap();
        t.enlist(Arc::new(ChainEntry(Arc::clone(&chain)))).unwrap();
        let cts = t.commit().unwrap();
        assert_eq!(t.status(), TxnStatus::Committed(cts));
        assert_eq!(chain.read(cts, TxnId(999)), Some(7));
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn abort_rolls_back() {
        let mgr = Arc::new(TransactionManager::new());
        let chain = Arc::new(VersionChain::new());
        let t = mgr.begin();
        chain.insert(7, t.id(), t.begin_ts()).unwrap();
        t.enlist(Arc::new(ChainEntry(Arc::clone(&chain)))).unwrap();
        t.abort().unwrap();
        assert_eq!(chain.read(mgr.now(), TxnId(999)), None);
        assert_eq!(chain.version_count(), 0);
    }

    #[test]
    fn drop_aborts_implicitly() {
        let mgr = Arc::new(TransactionManager::new());
        let chain = Arc::new(VersionChain::new());
        {
            let t = mgr.begin();
            chain.insert(7, t.id(), t.begin_ts()).unwrap();
            t.enlist(Arc::new(ChainEntry(Arc::clone(&chain)))).unwrap();
            // dropped without commit
        }
        assert_eq!(chain.version_count(), 0);
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn prepared_txn_holds_versions_until_decision() {
        let mgr = Arc::new(TransactionManager::new());
        let chain = Arc::new(VersionChain::new());
        let t = mgr.begin();
        chain.insert(7, t.id(), t.begin_ts()).unwrap();
        t.enlist(Arc::new(ChainEntry(Arc::clone(&chain)))).unwrap();
        t.prepare().unwrap();
        assert_eq!(t.status(), TxnStatus::Prepared);
        // Prepared is not committed: other snapshots still see nothing.
        let reader = mgr.begin();
        assert_eq!(chain.read(reader.begin_ts(), reader.id()), None);
        // No further writes are accepted once prepared.
        assert!(t.enlist(Arc::new(ChainEntry(Arc::clone(&chain)))).is_err());
        // Decision delivery: commit from Prepared works.
        let cts = t.commit().unwrap();
        assert_eq!(chain.read(cts, TxnId(999)), Some(7));
    }

    #[test]
    fn prepared_txn_abort_decision_rolls_back() {
        let mgr = Arc::new(TransactionManager::new());
        let chain = Arc::new(VersionChain::new());
        let t = mgr.begin();
        chain.insert(7, t.id(), t.begin_ts()).unwrap();
        t.enlist(Arc::new(ChainEntry(Arc::clone(&chain)))).unwrap();
        t.prepare().unwrap();
        t.prepare().unwrap(); // idempotent
        t.abort().unwrap();
        assert_eq!(chain.version_count(), 0);
        // A finished transaction cannot be re-prepared.
        assert!(matches!(t.prepare(), Err(DbError::TxnClosed(_))));
    }

    #[test]
    fn double_commit_rejected() {
        let mgr = Arc::new(TransactionManager::new());
        let t = mgr.begin();
        t.commit().unwrap();
        assert!(matches!(t.commit(), Err(DbError::TxnClosed(_))));
        assert!(matches!(t.abort(), Err(DbError::TxnClosed(_))));
    }

    #[test]
    fn snapshot_isolation_between_txns() {
        let mgr = Arc::new(TransactionManager::new());
        let chain = Arc::new(VersionChain::with_committed(1i64, 0));

        let reader = mgr.begin(); // snapshot at ts 0
        let writer = mgr.begin();
        chain.update(2, writer.id(), writer.begin_ts()).unwrap();
        writer
            .enlist(Arc::new(ChainEntry(Arc::clone(&chain))))
            .unwrap();
        writer.commit().unwrap();

        // Reader still sees the old value on its snapshot.
        assert_eq!(chain.read(reader.begin_ts(), reader.id()), Some(1));
        // A fresh transaction sees the new value.
        let fresh = mgr.begin();
        assert_eq!(chain.read(fresh.begin_ts(), fresh.id()), Some(2));
    }

    #[test]
    fn gc_watermark_tracks_oldest_active() {
        let mgr = Arc::new(TransactionManager::new());
        mgr.tick();
        mgr.tick(); // clock at 2
        let t1 = mgr.begin(); // begin_ts 2
        mgr.tick(); // clock 3
        let _t2 = mgr.begin(); // begin_ts 3
        assert_eq!(mgr.gc_watermark(), 2);
        t1.commit().unwrap();
        assert_eq!(mgr.gc_watermark(), 3);
    }

    #[test]
    fn gc_watermark_is_clock_when_idle() {
        let mgr = Arc::new(TransactionManager::new());
        mgr.advance_to(17);
        assert_eq!(mgr.gc_watermark(), 17);
    }

    /// Regression test for the commit-window race: a commit whose write
    /// set is still being stamped must not be covered by new snapshots.
    #[test]
    fn snapshots_exclude_in_flight_commits() {
        use crossbeam::channel::bounded;

        struct SlowEntry {
            chain: Arc<VersionChain<i64>>,
            entered: crossbeam::channel::Sender<()>,
            release: crossbeam::channel::Receiver<()>,
        }
        impl WriteSetEntry for SlowEntry {
            fn commit(&self, txn: TxnId, cts: Ts) {
                let _ = self.entered.send(());
                let _ = self.release.recv(); // simulate slow stamping
                self.chain.commit(txn, cts);
            }
            fn abort(&self, txn: TxnId) {
                self.chain.abort(txn);
            }
        }

        let mgr = Arc::new(TransactionManager::new());
        let chain = Arc::new(VersionChain::new());
        let t = mgr.begin();
        chain.insert(7, t.id(), t.begin_ts()).unwrap();
        let (entered_tx, entered_rx) = bounded(1);
        let (release_tx, release_rx) = bounded(1);
        t.enlist(Arc::new(SlowEntry {
            chain: Arc::clone(&chain),
            entered: entered_tx,
            release: release_rx,
        }))
        .unwrap();

        let committer = std::thread::spawn(move || t.commit().unwrap());
        entered_rx.recv().unwrap(); // stamping has begun but not finished

        // A snapshot taken NOW must not cover the in-flight commit.
        let mid = mgr.begin();
        assert_eq!(chain.read(mid.begin_ts(), mid.id()), None);

        release_tx.send(()).unwrap();
        let cts = committer.join().unwrap();
        assert!(mid.begin_ts() < cts, "watermark covered an unstamped commit");

        // A snapshot taken after the commit finished sees it.
        let late = mgr.begin();
        assert!(late.begin_ts() >= cts);
        assert_eq!(chain.read(late.begin_ts(), late.id()), Some(7));
        // And the mid snapshot still does not (stability).
        assert_eq!(chain.read(mid.begin_ts(), mid.id()), None);
    }

    #[test]
    fn watermark_advances_in_commit_order() {
        let mgr = Arc::new(TransactionManager::new());
        let c1 = mgr.reserve_commit_ts();
        let c2 = mgr.reserve_commit_ts();
        assert!(c2 > c1);
        // Finishing the newer commit first must NOT expose it while the
        // older one is still stamping.
        mgr.finish_commit_ts(c2);
        assert!(mgr.now() < c1, "now {} >= c1 {c1}", mgr.now());
        mgr.finish_commit_ts(c1);
        assert_eq!(mgr.now(), c2);
    }

    #[test]
    fn concurrent_txn_ids_unique() {
        let mgr = Arc::new(TransactionManager::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mgr = Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                (0..250)
                    .map(|_| {
                        let t = mgr.begin();
                        let id = t.id();
                        t.commit().unwrap();
                        id
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<TxnId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000);
    }
}
