//! The write-ahead log: redo logging of committed transactions and replay.
//!
//! The engine uses *redo-only, commit-time* logging: a transaction's DML is
//! buffered in its write set and a single log record containing all of its
//! operations is appended (and optionally fsync'd) at commit. Uncommitted
//! work never reaches the log, so recovery is a single forward scan that
//! re-applies records in commit order — no undo pass. This mirrors how the
//! in-memory systems the paper surveys (HANA, MemSQL, HyPer) log logical
//! operations rather than physical pages.
//!
//! Record framing: `[u32 payload_len][u32 crc32(payload)][payload]`.
//! A truncated or corrupt tail (the crash case) stops replay cleanly at the
//! last intact record.

use crate::clock::Ts;
use bytes::{Buf, BufMut};
use oltap_common::fault::{points, FaultInjector};
use oltap_common::ids::TxnId;
use oltap_common::{DbError, Result, Row, Value};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// One logical DML operation in the log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Insert `row` into `table`.
    Insert {
        /// Target table name.
        table: String,
        /// Full row image.
        row: Row,
    },
    /// Update the row identified by `key` in `table` to the full image `row`.
    Update {
        /// Target table name.
        table: String,
        /// Primary-key values.
        key: Row,
        /// New full row image.
        row: Row,
    },
    /// Delete the row identified by `key` from `table`.
    Delete {
        /// Target table name.
        table: String,
        /// Primary-key values.
        key: Row,
    },
    /// A DDL statement, logged as its SQL text and replayed by re-parsing
    /// (logical logging; keeps the WAL schema-free).
    Ddl {
        /// The original statement text.
        sql: String,
    },
    /// Two-phase-commit participant record: this node prepared global
    /// transaction `gtxn`, staging `rows` into `table`. The versions are
    /// pinned (invisible but held) until a matching [`WalOp::TxnDecision`]
    /// arrives. A participant that recovers with a `Prepare` but no
    /// decision record must treat the transaction as *in doubt* and ask
    /// the coordinator log — never unilaterally commit, and only abort
    /// once the coordinator's presumed-abort rule confirms it.
    Prepare {
        /// Global (cross-shard) transaction id.
        gtxn: u64,
        /// Target table name.
        table: String,
        /// Full row images staged by this participant.
        rows: Vec<Row>,
    },
    /// Two-phase-commit decision record: global transaction `gtxn` is
    /// resolved. `commit == true` makes the staged versions visible;
    /// `false` discards them. Closes the in-doubt window opened by the
    /// matching [`WalOp::Prepare`].
    TxnDecision {
        /// Global (cross-shard) transaction id.
        gtxn: u64,
        /// True = commit, false = abort.
        commit: bool,
    },
}

/// The unit of logging: everything a transaction did, stamped with its
/// commit timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// The committing transaction.
    pub txn: TxnId,
    /// Its commit timestamp.
    pub commit_ts: Ts,
    /// The redo operations, in execution order.
    pub ops: Vec<WalOp>,
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven, built once.
// ---------------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, e) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        table
    })
}

/// CRC32 checksum of `data` (IEEE polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Value / Row binary encoding
// ---------------------------------------------------------------------------

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Timestamp(i) => {
            buf.put_u8(3);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(4);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(5);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }
}

fn get_value(buf: &mut &[u8]) -> Result<Value> {
    if buf.is_empty() {
        return Err(DbError::Corruption("truncated value".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        0 => Value::Null,
        1 => {
            check_len(buf, 1)?;
            Value::Bool(buf.get_u8() != 0)
        }
        2 => {
            check_len(buf, 8)?;
            Value::Int(buf.get_i64_le())
        }
        3 => {
            check_len(buf, 8)?;
            Value::Timestamp(buf.get_i64_le())
        }
        4 => {
            check_len(buf, 8)?;
            Value::Float(buf.get_f64_le())
        }
        5 => {
            check_len(buf, 4)?;
            let n = buf.get_u32_le() as usize;
            check_len(buf, n)?;
            let s = String::from_utf8(buf[..n].to_vec())
                .map_err(|_| DbError::Corruption("invalid utf8 in wal".into()))?;
            buf.advance(n);
            Value::Str(s)
        }
        t => return Err(DbError::Corruption(format!("bad value tag {t}"))),
    })
}

fn check_len(buf: &[u8], n: usize) -> Result<()> {
    if buf.len() < n {
        Err(DbError::Corruption("truncated record".into()))
    } else {
        Ok(())
    }
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    buf.put_u16_le(row.len() as u16);
    for v in row.values() {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut &[u8]) -> Result<Row> {
    check_len(buf, 2)?;
    let n = buf.get_u16_le() as usize;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(get_value(buf)?);
    }
    Ok(Row::new(vals))
}

/// Encodes a row with the WAL's binary value codec (also used by the
/// distributed layer for Raft commands).
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    put_row(&mut buf, row);
    buf
}

/// Decodes a row produced by [`encode_row`].
pub fn decode_row(mut bytes: &[u8]) -> Result<Row> {
    let row = get_row(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(DbError::Corruption("trailing bytes after row".into()));
    }
    Ok(row)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    check_len(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    check_len(buf, n)?;
    let s = String::from_utf8(buf[..n].to_vec())
        .map_err(|_| DbError::Corruption("invalid utf8 in wal".into()))?;
    buf.advance(n);
    Ok(s)
}

impl WalOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalOp::Insert { table, row } => {
                buf.put_u8(0);
                put_str(buf, table);
                put_row(buf, row);
            }
            WalOp::Update { table, key, row } => {
                buf.put_u8(1);
                put_str(buf, table);
                put_row(buf, key);
                put_row(buf, row);
            }
            WalOp::Delete { table, key } => {
                buf.put_u8(2);
                put_str(buf, table);
                put_row(buf, key);
            }
            WalOp::Ddl { sql } => {
                buf.put_u8(3);
                put_str(buf, sql);
            }
            WalOp::Prepare { gtxn, table, rows } => {
                buf.put_u8(4);
                buf.put_u64_le(*gtxn);
                put_str(buf, table);
                buf.put_u32_le(rows.len() as u32);
                for row in rows {
                    put_row(buf, row);
                }
            }
            WalOp::TxnDecision { gtxn, commit } => {
                buf.put_u8(5);
                buf.put_u64_le(*gtxn);
                buf.put_u8(*commit as u8);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<WalOp> {
        check_len(buf, 1)?;
        let tag = buf.get_u8();
        Ok(match tag {
            0 => WalOp::Insert {
                table: get_str(buf)?,
                row: get_row(buf)?,
            },
            1 => WalOp::Update {
                table: get_str(buf)?,
                key: get_row(buf)?,
                row: get_row(buf)?,
            },
            2 => WalOp::Delete {
                table: get_str(buf)?,
                key: get_row(buf)?,
            },
            3 => WalOp::Ddl {
                sql: get_str(buf)?,
            },
            4 => {
                check_len(buf, 8)?;
                let gtxn = buf.get_u64_le();
                let table = get_str(buf)?;
                check_len(buf, 4)?;
                let n = buf.get_u32_le() as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push(get_row(buf)?);
                }
                WalOp::Prepare { gtxn, table, rows }
            }
            5 => {
                check_len(buf, 9)?;
                let gtxn = buf.get_u64_le();
                let commit = buf.get_u8() != 0;
                WalOp::TxnDecision { gtxn, commit }
            }
            t => return Err(DbError::Corruption(format!("bad op tag {t}"))),
        })
    }
}

impl CommitRecord {
    /// Serializes the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.put_u64_le(self.txn.raw());
        buf.put_u64_le(self.commit_ts);
        buf.put_u32_le(self.ops.len() as u32);
        for op in &self.ops {
            op.encode(&mut buf);
        }
        buf
    }

    /// Deserializes a record payload.
    pub fn decode(mut buf: &[u8]) -> Result<CommitRecord> {
        check_len(buf, 20)?;
        let txn = TxnId(buf.get_u64_le());
        let commit_ts = buf.get_u64_le();
        let n = buf.get_u32_le() as usize;
        let mut ops = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            ops.push(WalOp::decode(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err(DbError::Corruption("trailing bytes in record".into()));
        }
        Ok(CommitRecord {
            txn,
            commit_ts,
            ops,
        })
    }
}

/// The write-ahead log. In-memory buffer with optional file backing.
///
/// Chaos testing: a [`FaultInjector`] wired in via [`Wal::with_faults`] /
/// [`Wal::open_with_faults`] can tear an append at an arbitrary byte
/// offset (`wal.torn_write` — the crash-mid-write artifact) or silently
/// flip a payload byte after its CRC was computed (`wal.crc_corrupt` —
/// media corruption). Probes happen under the append lock, so with the
/// same seed a commit sequence produces byte-identical log images.
#[derive(Debug)]
pub struct Wal {
    buf: Mutex<WalInner>,
    faults: Arc<FaultInjector>,
}

#[derive(Debug)]
struct WalInner {
    bytes: Vec<u8>,
    file: Option<File>,
    path: Option<PathBuf>,
    records: u64,
}

impl Default for Wal {
    fn default() -> Self {
        Self::new_in_memory()
    }
}

impl Wal {
    /// An in-memory log (tests, benchmarks, ephemeral databases).
    pub fn new_in_memory() -> Self {
        Self::with_faults(FaultInjector::disabled())
    }

    /// An in-memory log with a fault injector attached.
    pub fn with_faults(faults: Arc<FaultInjector>) -> Self {
        Wal {
            buf: Mutex::new(WalInner {
                bytes: Vec::new(),
                file: None,
                path: None,
                records: 0,
            }),
            faults,
        }
    }

    /// A file-backed log; appends are written through. Pre-existing file
    /// contents are loaded so replay sees the full history. A damaged tail
    /// (torn frame, CRC mismatch — the crash artifacts) is **truncated**,
    /// on disk and in memory: without this, records appended after the
    /// damage would sit behind an unreadable frame and silently vanish on
    /// the next replay.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_faults(path, FaultInjector::disabled())
    }

    /// A file-backed log with a fault injector attached. See [`Wal::open`]
    /// for the tail-truncation semantics.
    pub fn open_with_faults(path: impl AsRef<Path>, faults: Arc<FaultInjector>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut bytes = Vec::new();
        if path.exists() {
            File::open(&path)?.read_to_end(&mut bytes)?;
        }
        let (records, valid_len) = Self::scan_intact_prefix(&bytes);
        if valid_len < bytes.len() {
            bytes.truncate(valid_len);
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(valid_len as u64)?;
            f.sync_all()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            buf: Mutex::new(WalInner {
                bytes,
                file: Some(file),
                path: Some(path),
                records,
            }),
            faults,
        })
    }

    /// The attached fault injector (disabled unless wired via `with_faults`).
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// Walks the frames of a raw log image, validating each (length, CRC,
    /// decodability — the same checks [`replay`] applies). Returns the
    /// number of intact records and the byte length of the intact prefix.
    fn scan_intact_prefix(bytes: &[u8]) -> (u64, usize) {
        let mut n = 0;
        let mut off = 0;
        while bytes.len() - off >= 8 {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            if bytes.len() - off < 8 + len {
                break;
            }
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            let payload = &bytes[off + 8..off + 8 + len];
            if crc32(payload) != crc || CommitRecord::decode(payload).is_err() {
                break;
            }
            off += 8 + len;
            n += 1;
        }
        (n, off)
    }

    /// Appends a commit record (framed + checksummed) and flushes it to the
    /// backing file if any. This is the durability point of a transaction.
    ///
    /// Fault points (probed under the append lock, so the schedule is a
    /// deterministic function of the commit sequence):
    ///
    /// * `wal.crc_corrupt` — flips one payload byte *after* the checksum was
    ///   computed, simulating silent media corruption. The append still
    ///   reports success; replay stops at the mismatching record.
    /// * `wal.torn_write` — persists only a prefix of the framed record (the
    ///   fire value picks the tear offset) and returns
    ///   [`DbError::FaultInjected`], simulating a crash mid-write.
    pub fn append(&self, record: &CommitRecord) -> Result<()> {
        let payload = record.encode();
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.put_u32_le(payload.len() as u32);
        framed.put_u32_le(crc32(&payload));
        framed.extend_from_slice(&payload);

        let mut inner = self.buf.lock();
        if let Some(v) = self.faults.fire_value(points::WAL_CRC_CORRUPT) {
            // Corrupt one payload byte; the header (and its CRC) stand.
            let idx = 8 + (v as usize) % payload.len().max(1);
            if idx < framed.len() {
                framed[idx] ^= 0x40;
            }
        }
        if let Some(v) = self.faults.fire_value(points::WAL_TORN_WRITE) {
            // Crash mid-write: only a strict prefix reaches the log.
            let cut = (v as usize) % framed.len();
            let prefix = &framed[..cut];
            inner.bytes.extend_from_slice(prefix);
            if let Some(f) = inner.file.as_mut() {
                f.write_all(prefix)?;
                f.flush()?;
            }
            return Err(DbError::FaultInjected(format!(
                "wal.torn_write: {cut}/{} bytes persisted",
                framed.len()
            )));
        }
        inner.bytes.extend_from_slice(&framed);
        inner.records += 1;
        if let Some(f) = inner.file.as_mut() {
            f.write_all(&framed)?;
            f.flush()?;
        }
        Ok(())
    }

    /// Number of appended records.
    pub fn record_count(&self) -> u64 {
        self.buf.lock().records
    }

    /// Size of the log in bytes.
    pub fn size_bytes(&self) -> usize {
        self.buf.lock().bytes.len()
    }

    /// Snapshot of the raw log bytes (crash-simulation tests truncate this).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.buf.lock().bytes.clone()
    }

    /// The backing file path, if file-backed.
    pub fn path(&self) -> Option<PathBuf> {
        self.buf.lock().path.clone()
    }

    /// Replays this log's records in order. See [`replay`].
    pub fn replay_records(&self) -> (Vec<CommitRecord>, Option<DbError>) {
        replay(&self.buf.lock().bytes)
    }
}

/// Scans a raw log image and returns every intact record, in order, plus
/// the error that terminated the scan (if the tail was torn). A clean
/// truncation mid-frame is the expected crash artifact and is reported but
/// does not invalidate the preceding records.
pub fn replay(mut bytes: &[u8]) -> (Vec<CommitRecord>, Option<DbError>) {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 8 {
            return (out, Some(DbError::Corruption("torn frame header".into())));
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if bytes.len() < 8 + len {
            return (out, Some(DbError::Corruption("torn frame payload".into())));
        }
        let payload = &bytes[8..8 + len];
        if crc32(payload) != crc {
            return (out, Some(DbError::Corruption("crc mismatch".into())));
        }
        match CommitRecord::decode(payload) {
            Ok(r) => out.push(r),
            Err(e) => return (out, Some(e)),
        }
        bytes = &bytes[8 + len..];
    }
    (out, None)
}

/// Scans replayed records for two-phase-commit state and returns the
/// global transaction ids that are *in doubt*: a [`WalOp::Prepare`] was
/// logged but no [`WalOp::TxnDecision`] followed. Recovery must hold these
/// transactions' versions and resolve them against the coordinator log
/// (presumed-abort: a coordinator with no commit record means abort).
pub fn in_doubt_gtxns(records: &[CommitRecord]) -> Vec<u64> {
    let mut prepared: Vec<u64> = Vec::new();
    for rec in records {
        for op in &rec.ops {
            match op {
                WalOp::Prepare { gtxn, .. } if !prepared.contains(gtxn) => {
                    prepared.push(*gtxn);
                }
                WalOp::TxnDecision { gtxn, .. } => {
                    prepared.retain(|g| g != gtxn);
                }
                _ => {}
            }
        }
    }
    prepared
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::fault::FaultPoint;
    use oltap_common::row;

    fn sample_record(txn: u64, ts: Ts) -> CommitRecord {
        CommitRecord {
            txn: TxnId(txn),
            commit_ts: ts,
            ops: vec![
                WalOp::Insert {
                    table: "orders".into(),
                    row: row![1i64, "widget", 9.99f64],
                },
                WalOp::Update {
                    table: "orders".into(),
                    key: row![1i64],
                    row: row![1i64, "widget", 12.50f64],
                },
                WalOp::Delete {
                    table: "stock".into(),
                    key: row![42i64],
                },
                WalOp::Ddl {
                    sql: "CREATE TABLE x (a INT)".into(),
                },
            ],
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = sample_record(7, 100);
        let enc = r.encode();
        let dec = CommitRecord::decode(&enc).unwrap();
        assert_eq!(r, dec);
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let r = CommitRecord {
            txn: TxnId(1),
            commit_ts: 2,
            ops: vec![WalOp::Insert {
                table: "t".into(),
                row: Row::new(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Int(-5),
                    Value::Timestamp(123456),
                    Value::Float(-0.25),
                    Value::Str("héllo".into()),
                ]),
            }],
        };
        assert_eq!(CommitRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn wal_append_and_replay() {
        let wal = Wal::new_in_memory();
        for i in 0..10 {
            wal.append(&sample_record(i, i * 2)).unwrap();
        }
        assert_eq!(wal.record_count(), 10);
        let (records, err) = wal.replay_records();
        assert!(err.is_none());
        assert_eq!(records.len(), 10);
        assert_eq!(records[3].commit_ts, 6);
    }

    #[test]
    fn truncated_tail_recovers_prefix() {
        let wal = Wal::new_in_memory();
        wal.append(&sample_record(1, 1)).unwrap();
        wal.append(&sample_record(2, 2)).unwrap();
        let mut bytes = wal.to_bytes();
        // Tear the last record mid-payload.
        bytes.truncate(bytes.len() - 5);
        let (records, err) = replay(&bytes);
        assert_eq!(records.len(), 1);
        assert!(matches!(err, Some(DbError::Corruption(_))));
    }

    #[test]
    fn bitflip_detected_by_crc() {
        let wal = Wal::new_in_memory();
        wal.append(&sample_record(1, 1)).unwrap();
        let mut bytes = wal.to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let (records, err) = replay(&bytes);
        assert!(records.is_empty());
        assert!(err.is_some());
    }

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("oltap_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&sample_record(1, 5)).unwrap();
            wal.append(&sample_record(2, 6)).unwrap();
        }
        // Re-open: history is preserved, new appends extend it.
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.record_count(), 2);
        wal.append(&sample_record(3, 7)).unwrap();
        let (records, err) = wal.replay_records();
        assert!(err.is_none());
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].commit_ts, 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn twopc_ops_roundtrip() {
        let r = CommitRecord {
            txn: TxnId(11),
            commit_ts: 0,
            ops: vec![
                WalOp::Prepare {
                    gtxn: 0xDEAD_BEEF,
                    table: "orders".into(),
                    rows: vec![row![1i64, "a"], row![2i64, "b"]],
                },
                WalOp::TxnDecision {
                    gtxn: 0xDEAD_BEEF,
                    commit: true,
                },
                WalOp::TxnDecision {
                    gtxn: 77,
                    commit: false,
                },
            ],
        };
        assert_eq!(CommitRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn in_doubt_scan_finds_undecided_prepares() {
        let rec = |ops: Vec<WalOp>| CommitRecord {
            txn: TxnId(0),
            commit_ts: 0,
            ops,
        };
        let records = vec![
            rec(vec![WalOp::Prepare {
                gtxn: 1,
                table: "t".into(),
                rows: vec![row![1i64]],
            }]),
            rec(vec![WalOp::Prepare {
                gtxn: 2,
                table: "t".into(),
                rows: vec![row![2i64]],
            }]),
            rec(vec![WalOp::TxnDecision {
                gtxn: 1,
                commit: true,
            }]),
            rec(vec![WalOp::Prepare {
                gtxn: 3,
                table: "t".into(),
                rows: vec![],
            }]),
            rec(vec![WalOp::TxnDecision {
                gtxn: 3,
                commit: false,
            }]),
        ];
        // gtxn 1 committed, 3 aborted; only 2 is in doubt.
        assert_eq!(in_doubt_gtxns(&records), vec![2]);
    }

    #[test]
    fn in_doubt_survives_wal_crash_replay() {
        // Prepare is durable, the decision append is torn by a crash:
        // replay must surface the transaction as in doubt.
        let faults = FaultInjector::new(0x2FC);
        faults.arm(points::WAL_TORN_WRITE, FaultPoint::times(1).after(1));
        let wal = Wal::with_faults(faults);
        wal.append(&CommitRecord {
            txn: TxnId(1),
            commit_ts: 0,
            ops: vec![WalOp::Prepare {
                gtxn: 9,
                table: "t".into(),
                rows: vec![row![5i64]],
            }],
        })
        .unwrap();
        wal.append(&CommitRecord {
            txn: TxnId(1),
            commit_ts: 1,
            ops: vec![WalOp::TxnDecision {
                gtxn: 9,
                commit: true,
            }],
        })
        .unwrap_err(); // torn mid-write
        let (records, _) = wal.replay_records();
        assert_eq!(in_doubt_gtxns(&records), vec![9]);
    }

    #[test]
    fn empty_ops_record() {
        let r = CommitRecord {
            txn: TxnId(9),
            commit_ts: 3,
            ops: vec![],
        };
        assert_eq!(CommitRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn torn_write_fault_leaves_exact_prefix() {
        let faults = FaultInjector::new(0xC4A5);
        faults.arm(points::WAL_TORN_WRITE, FaultPoint::times(1).after(2));
        let wal = Wal::with_faults(Arc::clone(&faults));
        wal.append(&sample_record(1, 1)).unwrap();
        wal.append(&sample_record(2, 2)).unwrap();
        let intact = wal.size_bytes();
        // Third append is torn mid-write.
        let err = wal.append(&sample_record(3, 3)).unwrap_err();
        assert!(matches!(err, DbError::FaultInjected(_)), "{err}");
        assert_eq!(wal.record_count(), 2, "torn record must not be counted");
        assert!(wal.size_bytes() >= intact, "prefix shrank");

        // Recovery: the two committed records survive; the torn tail is
        // reported but never resurrected as a record.
        let (records, tail) = wal.replay_records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].commit_ts, 2);
        if wal.size_bytes() > intact {
            assert!(matches!(tail, Some(DbError::Corruption(_))));
        }
    }

    #[test]
    fn torn_write_schedule_is_seed_reproducible() {
        let run = |seed: u64| {
            let faults = FaultInjector::new(seed);
            faults.arm(
                points::WAL_TORN_WRITE,
                FaultPoint::with_probability(0.4),
            );
            let wal = Wal::with_faults(faults);
            let mut outcomes = Vec::new();
            for i in 0..32u64 {
                outcomes.push(wal.append(&sample_record(i, i)).is_ok());
            }
            (outcomes, wal.to_bytes())
        };
        let (o1, b1) = run(77);
        let (o2, b2) = run(77);
        assert_eq!(o1, o2, "same seed must tear the same appends");
        assert_eq!(b1, b2, "same seed must produce byte-identical logs");
        let (o3, _) = run(78);
        assert_ne!(o1, o3, "different seed should differ (probabilistic)");
    }

    #[test]
    fn crc_corrupt_fault_detected_on_replay() {
        let faults = FaultInjector::new(1);
        faults.arm(points::WAL_CRC_CORRUPT, FaultPoint::times(1).after(1));
        let wal = Wal::with_faults(faults);
        wal.append(&sample_record(1, 1)).unwrap();
        wal.append(&sample_record(2, 2)).unwrap(); // silently corrupted
        wal.append(&sample_record(3, 3)).unwrap();
        // Replay stops at the corrupt record: later records are unreachable
        // (by design — a CRC mismatch means the log tail is untrustworthy).
        let (records, tail) = wal.replay_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].commit_ts, 1);
        assert!(matches!(tail, Some(DbError::Corruption(_))), "{tail:?}");
    }

    #[test]
    fn torn_write_on_file_backed_wal_recovers_on_reopen() {
        let dir = std::env::temp_dir().join(format!("oltap_walf_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn_fault.wal");
        let _ = std::fs::remove_file(&path);
        {
            let faults = FaultInjector::new(9);
            faults.arm(points::WAL_TORN_WRITE, FaultPoint::times(1).after(3));
            let wal = Wal::open_with_faults(&path, faults).unwrap();
            for i in 0..3 {
                wal.append(&sample_record(i, i + 10)).unwrap();
            }
            wal.append(&sample_record(3, 13)).unwrap_err(); // torn on disk
        }
        // "Restart": reopen without faults; intact prefix is fully readable.
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.record_count(), 3);
        let (records, _tail) = wal.replay_records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].commit_ts, 12);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_so_later_appends_survive() {
        let dir = std::env::temp_dir().join(format!("oltap_walt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncate_tail.wal");
        let _ = std::fs::remove_file(&path);
        {
            let faults = FaultInjector::new(9);
            faults.arm(points::WAL_TORN_WRITE, FaultPoint::times(1).after(1));
            let wal = Wal::open_with_faults(&path, faults).unwrap();
            wal.append(&sample_record(0, 10)).unwrap();
            wal.append(&sample_record(1, 11)).unwrap_err(); // torn on disk
        }
        // Recovery must cut the torn tail; otherwise the records appended
        // below would sit behind an unreadable frame and be lost on the
        // next replay.
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.record_count(), 1);
            let (_, tail_err) = wal.replay_records();
            assert!(tail_err.is_none(), "tail damage must be gone after open");
            wal.append(&sample_record(2, 12)).unwrap();
            wal.append(&sample_record(3, 13)).unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        let (records, tail_err) = wal.replay_records();
        assert!(tail_err.is_none());
        assert_eq!(
            records.iter().map(|r| r.commit_ts).collect::<Vec<_>>(),
            vec![10, 12, 13],
            "post-recovery commits lost behind the torn tail"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
