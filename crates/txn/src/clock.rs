//! The global logical clock issuing begin/commit timestamps.

use std::sync::atomic::{AtomicU64, Ordering};

/// A logical timestamp. Commit timestamps are strictly increasing; a
/// snapshot with `read_ts = t` sees exactly the effects of transactions
/// that committed with timestamp `≤ t`.
pub type Ts = u64;

/// The zero timestamp (nothing committed yet). Bootstrap/loaded data is
/// stamped `TS_ZERO` so it is visible to every snapshot.
pub const TS_ZERO: Ts = 0;

/// A monotonically increasing logical clock.
///
/// One `Clock` instance is shared by the transaction manager; everything
/// else receives timestamps, never the clock itself.
#[derive(Debug)]
pub struct Clock {
    now: AtomicU64,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    /// A clock starting at [`TS_ZERO`].
    pub fn new() -> Self {
        Clock {
            now: AtomicU64::new(TS_ZERO),
        }
    }

    /// A clock resuming from `ts` (used by WAL recovery so new commits
    /// stamp after everything already replayed).
    pub fn starting_at(ts: Ts) -> Self {
        Clock {
            now: AtomicU64::new(ts),
        }
    }

    /// Current timestamp (the latest issued commit timestamp).
    #[inline]
    pub fn now(&self) -> Ts {
        self.now.load(Ordering::SeqCst)
    }

    /// Issues the next commit timestamp (strictly greater than all
    /// previously issued ones).
    #[inline]
    pub fn tick(&self) -> Ts {
        self.now.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Advances the clock to at least `ts` (used when replaying a log or
    /// receiving a remote timestamp).
    pub fn advance_to(&self, ts: Ts) {
        self.now.fetch_max(ts, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tick_is_strictly_increasing() {
        let c = Clock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_never_goes_backwards() {
        let c = Clock::new();
        c.advance_to(100);
        assert_eq!(c.now(), 100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
        assert_eq!(c.tick(), 101);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(Clock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Ts> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000);
    }
}
