//! Version chains: the MVCC storage primitive.
//!
//! A [`VersionChain`] holds every extant version of one logical record
//! (e.g. one primary key in the row store), newest first. Each version is
//! bracketed by a `begin` and `end` [`Stamp`]. The invariants:
//!
//! * Committed versions of a chain have disjoint, contiguous
//!   `[begin, end)` validity windows.
//! * At most one version's `end` is `Infinity` or pending — the "latest"
//!   version that new writers contend for.
//! * A transaction sees its own pending writes and otherwise exactly the
//!   versions valid at its snapshot timestamp.

use crate::clock::Ts;
use oltap_common::ids::TxnId;
use oltap_common::{DbError, Result};
use parking_lot::RwLock;

/// The begin/end marker of a version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stamp {
    /// Committed at this timestamp.
    Committed(Ts),
    /// Created/ended by this still-active transaction.
    Pending(TxnId),
    /// (end only) Version is the current latest: valid forever so far.
    Infinity,
}

/// One version of a record.
#[derive(Debug, Clone)]
pub struct Version<T> {
    /// When this version became visible.
    pub begin: Stamp,
    /// When this version stopped being visible.
    pub end: Stamp,
    /// The payload. `None` encodes a delete tombstone created by an insert
    /// after delete; regular deletes just close the `end` stamp.
    pub data: T,
}

impl<T> Version<T> {
    /// Is this version visible to a snapshot at `read_ts` taken by `me`?
    pub fn visible_to(&self, read_ts: Ts, me: TxnId) -> bool {
        let begin_ok = match self.begin {
            Stamp::Committed(ts) => ts <= read_ts,
            Stamp::Pending(t) => t == me,
            Stamp::Infinity => false,
        };
        if !begin_ok {
            return false;
        }
        match self.end {
            Stamp::Infinity => true,
            Stamp::Committed(ts) => ts > read_ts,
            // Someone else's pending delete: still visible to us.
            // Our own pending delete: not visible to us.
            Stamp::Pending(t) => t != me,
        }
    }
}

/// All versions of one logical record, newest first, behind a lightweight
/// reader-writer lock.
#[derive(Debug)]
pub struct VersionChain<T> {
    versions: RwLock<Vec<Version<T>>>,
}

impl<T> Default for VersionChain<T> {
    fn default() -> Self {
        VersionChain {
            versions: RwLock::new(Vec::new()),
        }
    }
}

impl<T: Clone> VersionChain<T> {
    /// Empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// A chain bootstrapped with a single committed version (bulk load).
    pub fn with_committed(data: T, ts: Ts) -> Self {
        VersionChain {
            versions: RwLock::new(vec![Version {
                begin: Stamp::Committed(ts),
                end: Stamp::Infinity,
                data,
            }]),
        }
    }

    /// Reads the version visible at `read_ts` for transaction `me`.
    pub fn read(&self, read_ts: Ts, me: TxnId) -> Option<T> {
        let guard = self.versions.read();
        guard
            .iter()
            .find(|v| v.visible_to(read_ts, me))
            .map(|v| v.data.clone())
    }

    /// True when some version is visible at `read_ts` for `me`.
    pub fn exists_for(&self, read_ts: Ts, me: TxnId) -> bool {
        self.versions
            .read()
            .iter()
            .any(|v| v.visible_to(read_ts, me))
    }

    /// Installs a brand-new pending version at the head *without* ending a
    /// predecessor (used for INSERT of a key with no live version).
    ///
    /// Fails with [`DbError::WriteConflict`] if another transaction has a
    /// pending insert on the same chain, or with [`DbError::DuplicateKey`]
    /// if a committed live version already exists that `begin_ts` can see
    /// — or that committed after our snapshot (first-committer-wins).
    pub fn insert(&self, data: T, me: TxnId, begin_ts: Ts) -> Result<()> {
        let mut guard = self.versions.write();
        for v in guard.iter() {
            match (v.begin, v.end) {
                // Our own pending insert (double insert in one txn).
                (Stamp::Pending(t), _) if t == me => {
                    return Err(DbError::DuplicateKey("inserted twice".into()))
                }
                // Someone else's pending insert.
                (Stamp::Pending(_), _) => {
                    return Err(DbError::WriteConflict("concurrent insert".into()))
                }
                // A committed version that is still live (end = Infinity or
                // pending-delete by someone else, or committed-delete after
                // our snapshot): the key exists.
                (Stamp::Committed(_), Stamp::Infinity) => {
                    return Err(DbError::DuplicateKey("key exists".into()))
                }
                (Stamp::Committed(_), Stamp::Pending(t)) if t != me => {
                    return Err(DbError::WriteConflict(
                        "concurrent delete in flight".into(),
                    ))
                }
                (Stamp::Committed(_), Stamp::Committed(ets)) if ets > begin_ts => {
                    return Err(DbError::WriteConflict(
                        "key deleted after snapshot".into(),
                    ))
                }
                _ => {}
            }
        }
        guard.insert(
            0,
            Version {
                begin: Stamp::Pending(me),
                end: Stamp::Infinity,
                data,
            },
        );
        Ok(())
    }

    /// Updates the record: ends the currently live version (claiming its
    /// `end` stamp) and installs a new pending version with `data`.
    ///
    /// Implements first-committer-wins: if the live version committed after
    /// `begin_ts`, or is pending under another transaction, this fails with
    /// [`DbError::WriteConflict`].
    pub fn update(&self, data: T, me: TxnId, begin_ts: Ts) -> Result<()> {
        let mut guard = self.versions.write();
        self.claim_latest(&mut guard, me, begin_ts)?;
        // If we already have a pending version (our own earlier write in
        // this txn), replace its data in place instead of stacking.
        if let Some(v) = guard
            .iter_mut()
            .find(|v| matches!(v.begin, Stamp::Pending(t) if t == me))
        {
            v.data = data;
            v.end = Stamp::Infinity;
            return Ok(());
        }
        guard.insert(
            0,
            Version {
                begin: Stamp::Pending(me),
                end: Stamp::Infinity,
                data,
            },
        );
        Ok(())
    }

    /// Deletes the record: claims the live version's `end` stamp.
    pub fn delete(&self, me: TxnId, begin_ts: Ts) -> Result<()> {
        let mut guard = self.versions.write();
        // Deleting our own pending insert: drop it entirely.
        if let Some(pos) = guard
            .iter()
            .position(|v| matches!(v.begin, Stamp::Pending(t) if t == me))
        {
            guard.remove(pos);
            return Ok(());
        }
        self.claim_latest(&mut guard, me, begin_ts)
    }

    /// Finds the latest committed live version and marks its end pending
    /// under `me`, enforcing first-committer-wins.
    fn claim_latest(
        &self,
        guard: &mut [Version<T>],
        me: TxnId,
        begin_ts: Ts,
    ) -> Result<()> {
        // Reject if anyone else has a pending write anywhere on the chain.
        for v in guard.iter() {
            if matches!(v.begin, Stamp::Pending(t) if t != me)
                || matches!(v.end, Stamp::Pending(t) if t != me)
            {
                return Err(DbError::WriteConflict("record locked by writer".into()));
            }
        }
        let latest = guard
            .iter_mut()
            .find(|v| v.end == Stamp::Infinity && matches!(v.begin, Stamp::Committed(_)));
        match latest {
            Some(v) => {
                if let Stamp::Committed(bts) = v.begin {
                    if bts > begin_ts {
                        return Err(DbError::WriteConflict(
                            "record modified after snapshot".into(),
                        ));
                    }
                }
                v.end = Stamp::Pending(me);
                Ok(())
            }
            None => {
                // Our own pending version may be the only live one; that is
                // fine (claim is a no-op — commit/abort handles it).
                if guard
                    .iter()
                    .any(|v| matches!(v.begin, Stamp::Pending(t) if t == me))
                {
                    Ok(())
                } else {
                    Err(DbError::KeyNotFound("no live version".into()))
                }
            }
        }
    }

    /// Commit hook: stamps every pending marker owned by `me` with `cts`.
    pub fn commit(&self, me: TxnId, cts: Ts) {
        let mut guard = self.versions.write();
        for v in guard.iter_mut() {
            if matches!(v.begin, Stamp::Pending(t) if t == me) {
                v.begin = Stamp::Committed(cts);
            }
            if matches!(v.end, Stamp::Pending(t) if t == me) {
                v.end = Stamp::Committed(cts);
            }
        }
    }

    /// Abort hook: removes versions created by `me` and re-opens ends it
    /// had claimed.
    pub fn abort(&self, me: TxnId) {
        let mut guard = self.versions.write();
        guard.retain(|v| !matches!(v.begin, Stamp::Pending(t) if t == me));
        for v in guard.iter_mut() {
            if matches!(v.end, Stamp::Pending(t) if t == me) {
                v.end = Stamp::Infinity;
            }
        }
    }

    /// Garbage-collects versions invisible to every snapshot at or after
    /// `watermark`. Returns how many versions were pruned.
    pub fn gc(&self, watermark: Ts) -> usize {
        let mut guard = self.versions.write();
        let before = guard.len();
        guard.retain(|v| match v.end {
            Stamp::Committed(ets) => ets > watermark,
            _ => true,
        });
        before - guard.len()
    }

    /// Number of stored versions (diagnostics/GC policy).
    pub fn version_count(&self) -> usize {
        self.versions.read().len()
    }

    /// Whether a committed live version exists (ignores snapshots; used by
    /// merge and integrity checks).
    pub fn has_committed_live(&self) -> bool {
        self.versions
            .read()
            .iter()
            .any(|v| matches!(v.begin, Stamp::Committed(_)) && v.end == Stamp::Infinity)
    }

    /// Merge hook: if the latest version is committed at or before
    /// `watermark` and still live, close it at `watermark` and return its
    /// payload. The caller is responsible for re-publishing the row in the
    /// main store with `visible_from = watermark` so that no snapshot loses
    /// or double-sees it. Versions with an in-flight writer (pending `end`)
    /// or committed after the watermark are left for a later merge.
    pub fn close_latest_committed(&self, watermark: Ts) -> Option<T> {
        let mut guard = self.versions.write();
        let v = guard.iter_mut().find(|v| {
            matches!(v.begin, Stamp::Committed(ts) if ts <= watermark)
                && v.end == Stamp::Infinity
        })?;
        v.end = Stamp::Committed(watermark);
        Some(v.data.clone())
    }

    /// Latest committed live payload regardless of snapshots (merge path).
    pub fn latest_committed(&self) -> Option<T> {
        self.versions
            .read()
            .iter()
            .find(|v| matches!(v.begin, Stamp::Committed(_)) && v.end == Stamp::Infinity)
            .map(|v| v.data.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);

    #[test]
    fn insert_then_commit_becomes_visible() {
        let c: VersionChain<i32> = VersionChain::new();
        c.insert(42, T1, 10).unwrap();
        // Not yet visible to others.
        assert_eq!(c.read(100, T2), None);
        // Visible to self.
        assert_eq!(c.read(10, T1), Some(42));
        c.commit(T1, 11);
        assert_eq!(c.read(11, T2), Some(42));
        // Older snapshot still doesn't see it.
        assert_eq!(c.read(10, T2), None);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let c = VersionChain::with_committed(1, 5);
        assert!(matches!(
            c.insert(2, T1, 10),
            Err(DbError::DuplicateKey(_))
        ));
    }

    #[test]
    fn concurrent_insert_conflicts() {
        let c: VersionChain<i32> = VersionChain::new();
        c.insert(1, T1, 10).unwrap();
        assert!(matches!(
            c.insert(2, T2, 10),
            Err(DbError::WriteConflict(_))
        ));
    }

    #[test]
    fn update_creates_new_version_old_snapshot_reads_old() {
        let c = VersionChain::with_committed(1, 5);
        c.update(2, T1, 10).unwrap();
        c.commit(T1, 11);
        assert_eq!(c.read(10, T2), Some(1));
        assert_eq!(c.read(11, T2), Some(2));
    }

    #[test]
    fn first_committer_wins() {
        let c = VersionChain::with_committed(1, 5);
        // T1 updates and commits at 11.
        c.update(2, T1, 10).unwrap();
        c.commit(T1, 11);
        // T2, whose snapshot predates T1's commit, must fail.
        assert!(matches!(
            c.update(3, T2, 10),
            Err(DbError::WriteConflict(_))
        ));
        // A fresh snapshot succeeds.
        assert!(c.update(3, T2, 11).is_ok());
    }

    #[test]
    fn pending_writer_blocks_other_writers_not_readers() {
        let c = VersionChain::with_committed(1, 5);
        c.update(2, T1, 10).unwrap();
        // Writer conflicts.
        assert!(matches!(
            c.update(3, T2, 10),
            Err(DbError::WriteConflict(_))
        ));
        // Reader still sees committed version 1.
        assert_eq!(c.read(10, T2), Some(1));
    }

    #[test]
    fn abort_restores_previous_state() {
        let c = VersionChain::with_committed(1, 5);
        c.update(2, T1, 10).unwrap();
        c.abort(T1);
        assert_eq!(c.read(10, T2), Some(1));
        // After abort the chain is writable again.
        c.update(3, T2, 10).unwrap();
        c.commit(T2, 12);
        assert_eq!(c.read(12, T1), Some(3));
    }

    #[test]
    fn delete_hides_record_for_new_snapshots() {
        let c = VersionChain::with_committed(1, 5);
        c.delete(T1, 10).unwrap();
        c.commit(T1, 11);
        assert_eq!(c.read(10, T2), Some(1)); // old snapshot
        assert_eq!(c.read(11, T2), None); // new snapshot
        assert!(!c.has_committed_live());
    }

    #[test]
    fn delete_own_pending_insert_cancels() {
        let c: VersionChain<i32> = VersionChain::new();
        c.insert(1, T1, 10).unwrap();
        c.delete(T1, 10).unwrap();
        c.commit(T1, 11);
        assert_eq!(c.read(11, T2), None);
        assert_eq!(c.version_count(), 0);
    }

    #[test]
    fn update_twice_in_txn_coalesces() {
        let c = VersionChain::with_committed(1, 5);
        c.update(2, T1, 10).unwrap();
        c.update(3, T1, 10).unwrap();
        assert_eq!(c.read(10, T1), Some(3));
        c.commit(T1, 11);
        assert_eq!(c.read(11, T2), Some(3));
        // Only: original + one new version.
        assert_eq!(c.version_count(), 2);
    }

    #[test]
    fn reinsert_after_committed_delete() {
        let c = VersionChain::with_committed(1, 5);
        c.delete(T1, 10).unwrap();
        c.commit(T1, 11);
        c.insert(9, T2, 11).unwrap();
        c.commit(T2, 12);
        assert_eq!(c.read(12, TxnId(3)), Some(9));
    }

    #[test]
    fn insert_blocked_by_recent_delete() {
        let c = VersionChain::with_committed(1, 5);
        c.delete(T1, 10).unwrap();
        c.commit(T1, 11);
        // T2's snapshot (10) predates the delete: FCW conflict.
        assert!(matches!(
            c.insert(9, T2, 10),
            Err(DbError::WriteConflict(_))
        ));
    }

    #[test]
    fn gc_prunes_dead_versions() {
        let c = VersionChain::with_committed(1, 5);
        for (i, ts) in [(2, 11), (3, 13), (4, 15)] {
            let t = TxnId(ts);
            c.update(i, t, ts - 1).unwrap();
            c.commit(t, ts);
        }
        assert_eq!(c.version_count(), 4);
        // Oldest active snapshot is 13: versions ended ≤ 13 are dead.
        let pruned = c.gc(13);
        assert_eq!(pruned, 2);
        assert_eq!(c.read(20, T1), Some(4));
        assert_eq!(c.read(13, T1), Some(3));
    }

    #[test]
    fn delete_missing_key_errors() {
        let c: VersionChain<i32> = VersionChain::new();
        assert!(matches!(c.delete(T1, 10), Err(DbError::KeyNotFound(_))));
    }
}
