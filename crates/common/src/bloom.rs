//! A blocked Bloom filter for sideways information passing.
//!
//! The hash-join build side summarizes its key set into this filter so the
//! probe-side scan can drop rows (and, via zone maps, whole segments)
//! before they ever reach the probe operator — the semi-join reduction
//! that DB2 BLU and HyPer use to keep selective star-schema joins
//! scan-bound instead of probe-bound. "Blocked" means every key sets all
//! of its bits inside a single 64-bit word, so a membership test is one
//! cache line touch and two instructions, at a small false-positive cost
//! versus a classic Bloom filter of the same size.
//!
//! False positives are harmless (the join probe re-checks keys exactly);
//! false negatives are impossible, which is what makes scan-side
//! filtering semantics-preserving.

/// A blocked Bloom filter over pre-computed 64-bit key hashes.
///
/// The word index comes from the high hash bits, the three probe bits
/// from disjoint low bit ranges, so the filter composes with the radix
/// partitioner (top bits) and the open-addressing slot index (low bits)
/// without correlated aliasing.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedBloom {
    words: Vec<u64>,
}

impl BlockedBloom {
    /// A filter sized for `keys` entries at roughly 16 bits per key
    /// (false-positive rate well under 1% for blocked probing).
    pub fn with_capacity(keys: usize) -> Self {
        let words = (keys / 4).next_power_of_two().max(8);
        BlockedBloom { words: vec![0; words] }
    }

    /// A deliberately tiny filter with exactly `words.next_power_of_two()`
    /// words. Exists so tests can force high false-positive rates and
    /// exercise the probe-side rejection path.
    pub fn with_words(words: usize) -> Self {
        BlockedBloom {
            words: vec![0; words.next_power_of_two().max(1)],
        }
    }

    #[inline]
    fn word_index(&self, hash: u64) -> usize {
        ((hash >> 32) as usize) & (self.words.len() - 1)
    }

    #[inline]
    fn mask(hash: u64) -> u64 {
        (1u64 << (hash & 63)) | (1u64 << ((hash >> 8) & 63)) | (1u64 << ((hash >> 16) & 63))
    }

    /// Records a key hash.
    #[inline]
    pub fn insert(&mut self, hash: u64) {
        let i = self.word_index(hash);
        self.words[i] |= Self::mask(hash);
    }

    /// Whether a key hash may be present (no false negatives).
    #[inline]
    pub fn contains(&self, hash: u64) -> bool {
        let m = Self::mask(hash);
        self.words[self.word_index(hash)] & m == m
    }

    /// Total filter size in bits.
    pub fn bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Fraction of bits set — a saturation diagnostic for benchmarks.
    pub fn saturation(&self) -> f64 {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.bits() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_u64;

    #[test]
    fn no_false_negatives() {
        let mut b = BlockedBloom::with_capacity(1000);
        for i in 0..1000u64 {
            b.insert(hash_u64(i));
        }
        for i in 0..1000u64 {
            assert!(b.contains(hash_u64(i)), "lost key {i}");
        }
    }

    #[test]
    fn low_false_positive_rate_at_capacity() {
        let mut b = BlockedBloom::with_capacity(1000);
        for i in 0..1000u64 {
            b.insert(hash_u64(i));
        }
        let fp = (1000..101_000u64).filter(|&i| b.contains(hash_u64(i))).count();
        // 16 bits/key blocked filter: expect well under 2% false positives.
        assert!(fp < 2000, "false positive rate too high: {fp}/100000");
    }

    #[test]
    fn tiny_filter_saturates_and_stays_sound() {
        let mut b = BlockedBloom::with_words(1);
        for i in 0..256u64 {
            b.insert(hash_u64(i));
        }
        // Saturated: nearly everything passes, but inserted keys always do.
        for i in 0..256u64 {
            assert!(b.contains(hash_u64(i)));
        }
        assert!(b.saturation() > 0.9);
    }

    #[test]
    fn empty_filter_rejects() {
        let b = BlockedBloom::with_capacity(16);
        assert!(!b.contains(hash_u64(7)));
        assert_eq!(b.saturation(), 0.0);
    }
}
