//! The logical type system: [`DataType`] and dynamically typed [`Value`]s.

use crate::error::{DbError, Result};
use std::cmp::Ordering;
use std::fmt;

/// Logical column types supported by the engine.
///
/// The set is intentionally small but covers the workloads the paper's
/// motivating applications need: integers and floats for metrics, strings
/// for dimensions, booleans for flags, and timestamps (microseconds since
/// epoch) for event time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
    /// Microseconds since the Unix epoch, stored as `i64`.
    Timestamp,
}

impl DataType {
    /// Whether values of this type have a fixed-width physical
    /// representation (everything except strings).
    pub fn is_fixed_width(self) -> bool {
        !matches!(self, DataType::Utf8)
    }

    /// Human-readable name, used in error messages and `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Utf8 => "Utf8",
            DataType::Bool => "Bool",
            DataType::Timestamp => "Timestamp",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar value.
///
/// `Value` implements a *total* order so it can serve as a key in ordered
/// containers (zone maps, sort operators, primary-key indexes). Values of
/// different types order by a fixed type rank (`Null < Bool < Int64 <
/// Timestamp < Float64 < Utf8`); `Float64` uses IEEE `total_cmp`, so `NaN`
/// participates in the order deterministically.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (untyped).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Timestamp in microseconds since the epoch.
    Timestamp(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The value's logical type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int64),
            Value::Timestamp(_) => Some(DataType::Timestamp),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Utf8),
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory footprint in bytes (enum slot + string heap),
    /// the unit the executor's memory accounting works in.
    pub fn approx_size(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Str(s) => s.len(),
                _ => 0,
            }
    }

    /// Extracts an `i64`, accepting both `Int` and `Timestamp`.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) | Value::Timestamp(v) => Ok(*v),
            other => Err(DbError::TypeMismatch {
                expected: "Int64".into(),
                actual: other.type_name().into(),
            }),
        }
    }

    /// Extracts an `f64`, widening integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) | Value::Timestamp(v) => Ok(*v as f64),
            other => Err(DbError::TypeMismatch {
                expected: "Float64".into(),
                actual: other.type_name().into(),
            }),
        }
    }

    /// Extracts a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DbError::TypeMismatch {
                expected: "Utf8".into(),
                actual: other.type_name().into(),
            }),
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DbError::TypeMismatch {
                expected: "Bool".into(),
                actual: other.type_name().into(),
            }),
        }
    }

    /// Type name for diagnostics (`"Null"` for NULL).
    pub fn type_name(&self) -> &'static str {
        match self.data_type() {
            Some(t) => t.name(),
            None => "Null",
        }
    }

    /// Checks that the value is NULL or of `expected` type. `Int64` and
    /// `Timestamp` are mutually assignable (timestamps are integer
    /// microseconds and SQL has no timestamp literal syntax).
    pub fn check_type(&self, expected: DataType) -> Result<()> {
        match self.data_type() {
            None => Ok(()),
            Some(t) if t == expected => Ok(()),
            Some(DataType::Int64) if expected == DataType::Timestamp => Ok(()),
            Some(DataType::Timestamp) if expected == DataType::Int64 => Ok(()),
            // Standard SQL numeric widening: integer literals are
            // assignable to DOUBLE columns (readers coerce via as_float).
            Some(DataType::Int64) if expected == DataType::Float64 => Ok(()),
            Some(t) => Err(DbError::TypeMismatch {
                expected: expected.name().into(),
                actual: t.name().into(),
            }),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Timestamp(_) => 3,
            Value::Float(_) => 4,
            Value::Str(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b))
            | (Timestamp(a), Timestamp(b))
            | (Int(a), Timestamp(b))
            | (Timestamp(a), Int(b)) => a.cmp(b),
            // Cross int/float comparisons happen in mixed arithmetic;
            // compare numerically so predicates behave intuitively.
            (Int(a), Float(b)) | (Timestamp(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) | (Float(a), Timestamp(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(v) | Value::Timestamp(v) => {
                2u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                // Integral floats compare equal to the corresponding Int
                // under our numeric Ord, so they must hash identically.
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v <= i64::MAX as f64 {
                    2u8.hash(state);
                    (*v as i64).hash(state);
                } else {
                    3u8.hash(state);
                    v.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Timestamp(v) => write!(f, "ts:{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_types() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Timestamp(7).as_int().unwrap(), 7);
        assert_eq!(Value::Int(7).as_float().unwrap(), 7.0);
        assert!(Value::Str("x".into()).as_int().is_err());
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
        assert!(Value::Bool(true).as_bool().unwrap());
        assert!(Value::Int(1).as_bool().is_err());
    }

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Str(String::new()));
    }

    #[test]
    fn mixed_numeric_comparisons_are_numeric() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn nan_participates_in_total_order() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp: NaN > all finite numbers (positive NaN).
        assert!(nan > one);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn check_type_accepts_null() {
        assert!(Value::Null.check_type(DataType::Int64).is_ok());
        assert!(Value::Int(1).check_type(DataType::Int64).is_ok());
        assert!(Value::Int(1).check_type(DataType::Utf8).is_err());
    }

    #[test]
    fn display_roundtrip_smoke() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("hi".into()).to_string(), "'hi'");
    }

    #[test]
    fn hash_consistent_with_eq_for_int_timestamp() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        // Int(5) == Timestamp(5) under our Ord; hashes must agree.
        assert_eq!(Value::Int(5).cmp(&Value::Timestamp(5)), Ordering::Equal);
        assert_eq!(h(&Value::Int(5)), h(&Value::Timestamp(5)));
    }
}
