//! Exponential backoff with deterministic jitter.
//!
//! Retry loops in the distributed layer (leader discovery, replicated
//! writes, scatter-gather reads) previously spun on fixed short sleeps —
//! fine at three in-process nodes, a thundering herd at cluster scale.
//! [`Backoff`] centralizes the policy: exponential growth, a cap, and
//! jitter drawn from a SplitMix64 stream seeded by the caller so chaos
//! runs stay replayable (wall-clock sleeps still vary, but the *schedule*
//! of attempted delays does not).

use crate::cancel::CancellationToken;
use crate::error::Result;
use std::time::{Duration, Instant};

/// Iterator-style exponential backoff: `delay = min(base * 2^attempt, cap)`
/// plus up to 50% deterministic jitter.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng_state: u64,
}

impl Backoff {
    /// A policy starting at `base` and capping at `cap`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Backoff {
            base,
            cap,
            attempt: 0,
            rng_state: 0x5EED_BACC_0FF5_EED5,
        }
    }

    /// The default policy for intra-process cluster retries: 1ms → 64ms.
    pub fn for_cluster() -> Self {
        Self::new(Duration::from_millis(1), Duration::from_millis(64))
    }

    /// Reseeds the jitter stream (chaos tests pass the scenario seed).
    pub fn seeded(mut self, seed: u64) -> Self {
        self.rng_state = seed | 1;
        self
    }

    /// Number of delays handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the exponential schedule (e.g. after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next delay in the schedule (does not sleep).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.base.saturating_mul(1u32 << self.attempt.min(16));
        let capped = exp.min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        // Up to +50% jitter, deterministic given the seed and attempt.
        let jitter_ns = (capped.as_nanos() as u64 / 2).max(1);
        let jitter = Duration::from_nanos(self.next_u64() % jitter_ns);
        capped + jitter
    }

    /// Sleeps for the next delay in the schedule.
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }

    /// The configured base delay.
    pub fn base(&self) -> Duration {
        self.base
    }

    /// The configured delay cap (before jitter; jitter may add up to 50%).
    pub fn cap(&self) -> Duration {
        self.cap
    }

    /// Sleeps for `max(delay, floor)` where `delay` is the next delay in
    /// the schedule, checking `cancel` every few milliseconds so a
    /// retry loop sheds promptly when its query is cancelled or the
    /// server told it to stop. `floor` carries a server-provided
    /// retry-after hint (pass [`Duration::ZERO`] for none). Returns the
    /// token's typed error if it tripped mid-sleep.
    pub fn sleep_cancellable(
        &mut self,
        cancel: &CancellationToken,
        floor: Duration,
    ) -> Result<()> {
        let total = self.next_delay().max(floor);
        let deadline = Instant::now() + total;
        // Sleep in short slices so cancellation is observed within a few
        // milliseconds even for capped (tens-of-ms) delays.
        const SLICE: Duration = Duration::from_millis(2);
        loop {
            cancel.check()?;
            let now = Instant::now();
            if now >= deadline {
                return Ok(());
            }
            std::thread::sleep(SLICE.min(deadline - now));
        }
    }

    /// Sleeps for the next delay, but never past `deadline`; returns false
    /// if the deadline has already passed (caller should give up).
    pub fn sleep_until_deadline(&mut self, deadline: Instant) -> bool {
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let d = self.next_delay().min(deadline - now);
        std::thread::sleep(d);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(8)).seeded(1);
        let d: Vec<Duration> = (0..6).map(|_| b.next_delay()).collect();
        // Base component grows 1,2,4,8 then caps at 8 (jitter adds <50%).
        assert!(d[1] >= Duration::from_millis(2));
        assert!(d[3] >= Duration::from_millis(8));
        for x in &d {
            assert!(*x <= Duration::from_millis(12), "jitter exceeded 50%: {x:?}");
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let sched = |seed| {
            let mut b = Backoff::for_cluster().seeded(seed);
            (0..10).map(|_| b.next_delay()).collect::<Vec<_>>()
        };
        assert_eq!(sched(5), sched(5));
        assert_ne!(sched(5), sched(6));
    }

    #[test]
    fn reset_restarts_schedule() {
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_secs(1));
        let first = b.next_delay();
        b.next_delay();
        b.reset();
        assert_eq!(b.attempts(), 0);
        // After reset the base component is back to 1ms (delays are small).
        let again = b.next_delay();
        assert!(again < first + Duration::from_millis(2));
    }

    #[test]
    fn cancellable_sleep_returns_typed_error() {
        let mut b = Backoff::new(Duration::from_secs(10), Duration::from_secs(10));
        let token = CancellationToken::new();
        token.cancel();
        let err = b.sleep_cancellable(&token, Duration::ZERO).unwrap_err();
        assert!(matches!(err, crate::DbError::Cancelled(_)), "{err}");
        // An uncancelled short sleep completes and honors the floor.
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_millis(1));
        let start = Instant::now();
        b.sleep_cancellable(&CancellationToken::new(), Duration::from_millis(5))
            .unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn deadline_stops_sleeping() {
        let mut b = Backoff::for_cluster();
        let past = Instant::now() - Duration::from_millis(1);
        assert!(!b.sleep_until_deadline(past));
        let soon = Instant::now() + Duration::from_millis(5);
        assert!(b.sleep_until_deadline(soon));
    }
}
