//! [`Row`]: an N-tuple of [`Value`]s — the unit of DML and of the row store.

use crate::types::Value;
use std::fmt;

/// A materialized tuple.
///
/// Rows are the currency of the OLTP side of the engine: inserts, point
/// reads, and the writable delta store all traffic in `Row`s, while the
/// analytic side converts them into [`crate::vector::Batch`]es.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Wraps a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access (used by UPDATE application).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at ordinal `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Consumes the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Builds a new row containing only the given ordinals, in order.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row::new(indexes.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenates two rows (used by join output assembly).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Row::new(v)
    }

    /// Approximate in-memory footprint in bytes (used by memory accounting
    /// and merge policies).
    pub fn approx_size(&self) -> usize {
        let mut n = std::mem::size_of::<Row>();
        for v in &self.values {
            n += std::mem::size_of::<Value>();
            if let Value::Str(s) = v {
                n += s.len();
            }
        }
        n
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

/// Convenience macro for building rows in tests and examples:
/// `row![1i64, "abc", 2.5f64, Value::Null]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::types::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    #[test]
    fn basic_access() {
        let r = Row::new(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r.get(1).as_str().unwrap(), "a");
    }

    #[test]
    fn project_and_concat() {
        let r = Row::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(
            r.project(&[2, 0]).values(),
            &[Value::Int(3), Value::Int(1)]
        );
        let s = Row::new(vec![Value::Int(9)]);
        assert_eq!(r.concat(&s).len(), 4);
    }

    #[test]
    fn row_macro() {
        let r = row![1i64, "abc", 2.5f64, true];
        assert_eq!(r.len(), 4);
        assert_eq!(r[1], Value::Str("abc".into()));
        assert_eq!(r[3], Value::Bool(true));
    }

    #[test]
    fn display() {
        let r = row![1i64, "x"];
        assert_eq!(r.to_string(), "(1, 'x')");
    }

    #[test]
    fn approx_size_counts_strings() {
        let small = row![1i64];
        let big = Row::new(vec![Value::Str("x".repeat(1000))]);
        assert!(big.approx_size() > small.approx_size() + 900);
    }

    #[test]
    fn ordering_lexicographic() {
        assert!(row![1i64, 2i64] < row![1i64, 3i64]);
        assert!(row![1i64] < row![1i64, 0i64]);
    }
}
