//! Table schemas: ordered, named, typed fields plus primary-key metadata.

use crate::error::{DbError, Result};
use crate::row::Row;
use crate::types::DataType;
use std::sync::Arc;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (unique within a schema, case-sensitive).
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether NULL is admissible.
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }

    /// A NOT NULL field.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }
}

/// An ordered collection of [`Field`]s with optional primary-key columns.
///
/// Schemas are immutable once built and shared via `Arc` (see
/// [`SchemaRef`]); every storage segment, batch, and plan node points at the
/// same allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    /// Ordinal indexes of the primary-key columns, in key order.
    primary_key: Vec<usize>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Builds a schema without a primary key.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields,
            primary_key: Vec::new(),
        }
    }

    /// Builds a schema with the named primary-key columns.
    ///
    /// # Errors
    /// Returns [`DbError::ColumnNotFound`] if a key column is unknown, and
    /// [`DbError::InvalidArgument`] for duplicate field names.
    pub fn with_primary_key(fields: Vec<Field>, key_columns: &[&str]) -> Result<Self> {
        let mut schema = Schema::new(fields);
        schema.validate_unique_names()?;
        let mut pk = Vec::with_capacity(key_columns.len());
        for &k in key_columns {
            pk.push(schema.index_of(k)?);
        }
        schema.primary_key = pk;
        Ok(schema)
    }

    fn validate_unique_names(&self) -> Result<()> {
        for (i, f) in self.fields.iter().enumerate() {
            if self.fields[..i].iter().any(|g| g.name == f.name) {
                return Err(DbError::InvalidArgument(format!(
                    "duplicate column name: {}",
                    f.name
                )));
            }
        }
        Ok(())
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at ordinal `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Ordinal index of the named column.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| DbError::ColumnNotFound(name.to_string()))
    }

    /// Primary-key column ordinals (empty when no key is declared).
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// True when a primary key is declared.
    pub fn has_primary_key(&self) -> bool {
        !self.primary_key.is_empty()
    }

    /// Extracts the primary-key values of `row` (in key-column order).
    pub fn key_of(&self, row: &Row) -> Row {
        Row::new(
            self.primary_key
                .iter()
                .map(|&i| row.values()[i].clone())
                .collect(),
        )
    }

    /// Type-checks a row against the schema: arity, per-column type, and
    /// NOT NULL constraints (primary-key columns are implicitly NOT NULL).
    pub fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.fields.len() {
            return Err(DbError::InvalidArgument(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.fields.len()
            )));
        }
        for (i, (v, f)) in row.values().iter().zip(&self.fields).enumerate() {
            v.check_type(f.data_type)?;
            if v.is_null() && (!f.nullable || self.primary_key.contains(&i)) {
                return Err(DbError::InvalidArgument(format!(
                    "NULL in non-nullable column {}",
                    f.name
                )));
            }
        }
        Ok(())
    }

    /// Projects the schema to the given column ordinals (no primary key is
    /// carried over — projections are not keyed).
    pub fn project(&self, indexes: &[usize]) -> Schema {
        Schema::new(indexes.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn sample() -> Schema {
        Schema::with_primary_key(
            vec![
                Field::not_null("id", DataType::Int64),
                Field::new("name", DataType::Utf8),
                Field::new("score", DataType::Float64),
            ],
            &["id"],
        )
        .unwrap()
    }

    #[test]
    fn index_lookup() {
        let s = sample();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(matches!(
            s.index_of("nope"),
            Err(DbError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn rejects_duplicate_names() {
        let r = Schema::with_primary_key(
            vec![
                Field::new("a", DataType::Int64),
                Field::new("a", DataType::Int64),
            ],
            &[],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_unknown_key_column() {
        let r = Schema::with_primary_key(vec![Field::new("a", DataType::Int64)], &["b"]);
        assert!(matches!(r, Err(DbError::ColumnNotFound(_))));
    }

    #[test]
    fn check_row_validates_arity_types_nulls() {
        let s = sample();
        let ok = Row::new(vec![Value::Int(1), Value::Str("x".into()), Value::Float(0.5)]);
        assert!(s.check_row(&ok).is_ok());

        let short = Row::new(vec![Value::Int(1)]);
        assert!(s.check_row(&short).is_err());

        let wrong = Row::new(vec![Value::Str("1".into()), Value::Null, Value::Null]);
        assert!(s.check_row(&wrong).is_err());

        // NULL primary key rejected even though column 0 is also NOT NULL.
        let null_pk = Row::new(vec![Value::Null, Value::Null, Value::Null]);
        assert!(s.check_row(&null_pk).is_err());

        // NULL in nullable column accepted.
        let null_name = Row::new(vec![Value::Int(2), Value::Null, Value::Null]);
        assert!(s.check_row(&null_name).is_ok());
    }

    #[test]
    fn key_extraction() {
        let s = sample();
        let r = Row::new(vec![Value::Int(9), Value::Str("x".into()), Value::Null]);
        assert_eq!(s.key_of(&r).values(), &[Value::Int(9)]);
    }

    #[test]
    fn projection_drops_key() {
        let s = sample();
        let p = s.project(&[1, 2]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).name, "name");
        assert!(!p.has_primary_key());
    }
}
