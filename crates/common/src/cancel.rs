//! Cooperative cancellation with deadlines.
//!
//! A [`CancellationToken`] is a cheap, cloneable handle checked at **batch
//! boundaries** in the vectorized executor: a long OLAP scan observes
//! cancellation within one batch (~1k rows) rather than running to
//! completion. Tokens carry an optional deadline, so a session-level
//! statement timeout and an explicit `cancel()` flow through one
//! mechanism; the admission controller uses the same token to shed
//! queued work that expired before it ever ran.

use crate::error::{DbError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Optional parent: a child token also trips when any ancestor is
    /// cancelled or past its deadline. Lets a per-connection token fan
    /// out to per-query tokens (server drain / slow-client shedding
    /// cancels the in-flight statement through the same machinery as an
    /// explicit `cancel()`).
    parent: Option<Arc<Inner>>,
}

impl Inner {
    /// Walks this token and its ancestors; the first tripped condition
    /// wins, explicit cancellation taking precedence over deadlines at
    /// each level.
    fn tripped(&self) -> Option<DbError> {
        let mut cur = Some(self);
        let mut deadline_hit = false;
        while let Some(inner) = cur {
            if inner.cancelled.load(Ordering::Acquire) {
                return Some(DbError::Cancelled("query cancelled".into()));
            }
            if inner.deadline.is_some_and(|d| Instant::now() >= d) {
                deadline_hit = true;
            }
            cur = inner.parent.as_deref();
        }
        deadline_hit.then(|| DbError::DeadlineExceeded("query deadline exceeded".into()))
    }
}

/// A cheap, cloneable cancellation handle with an optional deadline.
///
/// `Default`/[`CancellationToken::none`] yields a token that never
/// cancels, so operators can hold one unconditionally.
#[derive(Debug, Clone)]
pub struct CancellationToken {
    inner: Arc<Inner>,
}

impl Default for CancellationToken {
    fn default() -> Self {
        Self::none()
    }
}

impl CancellationToken {
    /// A token that never cancels (the executor default).
    pub fn none() -> Self {
        CancellationToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that can only be cancelled explicitly.
    pub fn new() -> Self {
        Self::none()
    }

    /// A token that expires `timeout` from now (and can also be cancelled
    /// explicitly).
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// A token that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancellationToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
                parent: None,
            }),
        }
    }

    /// A child token that trips when `self` does *or* when its own
    /// (optional) timeout expires or it is cancelled directly. Cancelling
    /// the child does not affect the parent, so one connection-lifetime
    /// token can gate many successive per-query tokens.
    pub fn child(&self, timeout: Option<Duration>) -> Self {
        CancellationToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: timeout.map(|t| Instant::now() + t),
                parent: Some(Arc::clone(&self.inner)),
            }),
        }
    }

    /// Requests cancellation; all clones (and children) observe it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True if explicitly cancelled or past the deadline (own or any
    /// ancestor's).
    pub fn is_cancelled(&self) -> bool {
        self.inner.tripped().is_some()
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// `Err` if the token has tripped; the check every operator performs
    /// at each batch boundary. Explicit cancellation surfaces as
    /// [`DbError::Cancelled`], deadline expiry as
    /// [`DbError::DeadlineExceeded`] — the two are accounted differently
    /// by the admission layer.
    pub fn check(&self) -> Result<()> {
        match self.inner.tripped() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_cancels() {
        let t = CancellationToken::none();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_visible_to_clones() {
        let t = CancellationToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert!(matches!(c.check(), Err(DbError::Cancelled(_))));
    }

    #[test]
    fn deadline_expires() {
        let t = CancellationToken::with_timeout(Duration::from_millis(5));
        assert!(t.check().is_ok() || t.is_cancelled()); // may race on slow CI
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.is_cancelled());
        // Deadline expiry is distinguishable from explicit cancellation.
        assert!(matches!(t.check(), Err(DbError::DeadlineExceeded(_))));
    }

    #[test]
    fn explicit_cancel_wins_over_deadline_classification() {
        let t = CancellationToken::with_timeout(Duration::from_secs(3600));
        t.cancel();
        assert!(matches!(t.check(), Err(DbError::Cancelled(_))));
    }

    #[test]
    fn child_trips_with_parent_but_not_vice_versa() {
        let parent = CancellationToken::new();
        let child = parent.child(None);
        assert!(child.check().is_ok());
        parent.cancel();
        assert!(matches!(child.check(), Err(DbError::Cancelled(_))));

        let parent = CancellationToken::new();
        let child = parent.child(None);
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not leak upward");
    }

    #[test]
    fn child_combines_own_timeout_with_parent_cancel() {
        let parent = CancellationToken::new();
        let child = parent.child(Some(Duration::ZERO));
        // Own deadline expired: deadline classification.
        assert!(matches!(child.check(), Err(DbError::DeadlineExceeded(_))));
        // Explicit ancestor cancel outranks the deadline.
        parent.cancel();
        assert!(matches!(child.check(), Err(DbError::Cancelled(_))));
    }

    #[test]
    fn already_expired_deadline_trips_immediately() {
        let t = CancellationToken::with_deadline(Instant::now() - Duration::from_secs(1));
        assert!(t.is_cancelled());
        assert!(matches!(t.check(), Err(DbError::DeadlineExceeded(_))));
    }
}
