//! Newtype identifiers used across the engine.
//!
//! Keeping these as distinct types (rather than bare `u64`s) prevents an
//! entire class of "passed the segment id where the table id was expected"
//! bugs at zero runtime cost.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric id.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Identifies a table in the catalog.
    TableId,
    "t"
);
define_id!(
    /// Identifies a column within a table (ordinal position).
    ColumnId,
    "c"
);
define_id!(
    /// Identifies an immutable columnar segment within a table.
    SegmentId,
    "seg"
);
define_id!(
    /// Identifies a transaction. Also used as the "transaction timestamp"
    /// namespace in the MVCC layer.
    TxnId,
    "txn"
);
define_id!(
    /// Identifies a node in the (simulated) cluster.
    NodeId,
    "node"
);
define_id!(
    /// Identifies a horizontal partition of a table.
    PartitionId,
    "p"
);
define_id!(
    /// Identifies a NUMA socket in the simulated topology.
    SocketId,
    "numa"
);

/// A stable physical locator for a row: which segment (or delta) it lives
/// in and its ordinal position there. `segment == None` means the row is in
/// the writable delta store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId {
    /// The containing segment, or `None` for the delta store.
    pub segment: Option<SegmentId>,
    /// Ordinal position within the segment/delta.
    pub offset: u32,
}

impl RowId {
    /// A row in the writable delta store.
    pub fn in_delta(offset: u32) -> Self {
        RowId {
            segment: None,
            offset,
        }
    }

    /// A row in an immutable main segment.
    pub fn in_segment(segment: SegmentId, offset: u32) -> Self {
        RowId {
            segment: Some(segment),
            offset,
        }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.segment {
            Some(s) => write!(f, "{s}@{}", self.offset),
            None => write!(f, "delta@{}", self.offset),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(TableId(3).to_string(), "t3");
        assert_eq!(SegmentId(7).to_string(), "seg7");
        assert_eq!(NodeId(1).to_string(), "node1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(TxnId(1) < TxnId(2));
        let mut set = std::collections::HashSet::new();
        set.insert(PartitionId(9));
        assert!(set.contains(&PartitionId(9)));
    }

    #[test]
    fn row_id_locations() {
        let d = RowId::in_delta(4);
        assert!(d.segment.is_none());
        let s = RowId::in_segment(SegmentId(2), 10);
        assert_eq!(s.to_string(), "seg2@10");
        assert_eq!(d.to_string(), "delta@4");
    }
}
