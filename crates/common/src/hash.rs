//! A fast, non-cryptographic hasher for engine-internal hash tables.
//!
//! Hash joins, hash aggregation, and dictionary encoding all hash millions
//! of keys per query; the default SipHash is needlessly slow for that
//! (HashDoS resistance is irrelevant for in-process query state). This is
//! an implementation of the Fx multiply-rotate hash used by rustc, written
//! from scratch so the workspace adds no extra dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden-ratio-derived, as in rustc's Fx).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash. Use on all hot paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes one `u64` directly (used by vectorized hash kernels where going
/// through the `Hasher` trait would obscure autovectorization).
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    // Two rounds of the Fx mix to spread low-entropy integers.
    let h = (v ^ v.rotate_left(25)).wrapping_mul(SEED);
    (h ^ (h >> 29)).wrapping_mul(SEED)
}

/// Hashes a byte slice to `u64` without constructing a hasher.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_eq!(hash_u64(42), hash_u64(42));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_ne!(hash_u64(1), hash_u64(2));
        // Length mixing: a prefix plus zero bytes must differ.
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn map_works_with_fx() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["key513"], 513);
    }

    #[test]
    fn low_entropy_integers_spread() {
        // Sequential integers must not collide in low bits (bucket index).
        let mut buckets = std::collections::HashSet::new();
        for i in 0..1024u64 {
            buckets.insert(hash_u64(i) & 1023);
        }
        // Expect decent coverage of the 1024 buckets.
        assert!(buckets.len() > 600, "only {} distinct buckets", buckets.len());
    }
}
