//! A fast, non-cryptographic hasher for engine-internal hash tables.
//!
//! Hash joins, hash aggregation, and dictionary encoding all hash millions
//! of keys per query; the default SipHash is needlessly slow for that
//! (HashDoS resistance is irrelevant for in-process query state). This is
//! an implementation of the Fx multiply-rotate hash used by rustc, written
//! from scratch so the workspace adds no extra dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden-ratio-derived, as in rustc's Fx).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            // Mix in the length so "ab" and "ab\0" differ.
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash. Use on all hot paths.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hashes one `u64` directly (used by vectorized hash kernels where going
/// through the `Hasher` trait would obscure autovectorization).
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    // Two rounds of the Fx mix to spread low-entropy integers.
    let h = (v ^ v.rotate_left(25)).wrapping_mul(SEED);
    (h ^ (h >> 29)).wrapping_mul(SEED)
}

/// Hashes a byte slice to `u64` without constructing a hasher.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Initial accumulator for multi-column join-key hashing. Build and probe
/// sides (and the scan-side join filter) must all fold per-column hashes
/// from this seed with [`join_hash_combine`] so their combined hashes
/// agree.
pub const JOIN_KEY_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Folds one column's value hash into a multi-column join-key hash.
#[inline]
pub fn join_hash_combine(acc: u64, h: u64) -> u64 {
    (acc.rotate_left(5) ^ h).wrapping_mul(SEED)
}

/// Hash of one `Int`/`Timestamp` join-key value (the two share a hash
/// class because they compare equal under [`crate::types::Value`]'s `Ord`).
#[inline]
pub fn join_hash_int(v: i64) -> u64 {
    hash_u64(join_hash_combine(2, v as u64))
}

/// Hash of one `Float` join-key value. Integral floats in `i64` range
/// compare equal to the corresponding `Int`, so they hash into the integer
/// class; everything else hashes its bit pattern.
#[inline]
pub fn join_hash_float(v: f64) -> u64 {
    if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 {
        join_hash_int(v as i64)
    } else {
        hash_u64(join_hash_combine(3, v.to_bits()))
    }
}

/// Hash of one `Bool` join-key value.
#[inline]
pub fn join_hash_bool(v: bool) -> u64 {
    hash_u64(join_hash_combine(1, v as u64))
}

/// Hash of one `Str` join-key value.
#[inline]
pub fn join_hash_str(v: &str) -> u64 {
    hash_u64(join_hash_combine(4, hash_bytes(v.as_bytes())))
}

/// Hashes one join-key [`crate::types::Value`], consistent with `Value`
/// equality: values that compare equal across types (`Int(5)`,
/// `Timestamp(5)`, `Float(5.0)`) hash equal. The vectorized kernels hash
/// typed columns directly through the per-class helpers above; this is
/// the scalar entry point (row stores, scan-side join filters). NULL is
/// hashed to a fixed class — callers must exclude NULL keys themselves
/// (SQL equality never joins them).
pub fn join_hash_value(v: &crate::types::Value) -> u64 {
    use crate::types::Value;
    match v {
        Value::Null => hash_u64(join_hash_combine(0, 0)),
        Value::Bool(b) => join_hash_bool(*b),
        Value::Int(x) | Value::Timestamp(x) => join_hash_int(*x),
        Value::Float(f) => join_hash_float(*f),
        Value::Str(s) => join_hash_str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
        assert_eq!(hash_u64(42), hash_u64(42));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_bytes(b"hello"), hash_bytes(b"hellp"));
        assert_ne!(hash_u64(1), hash_u64(2));
        // Length mixing: a prefix plus zero bytes must differ.
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
    }

    #[test]
    fn map_works_with_fx() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(format!("key{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["key513"], 513);
    }

    #[test]
    fn join_hash_agrees_with_value_equality() {
        use crate::types::Value;
        // Cross-type equal values must share a hash class.
        assert_eq!(
            join_hash_value(&Value::Int(5)),
            join_hash_value(&Value::Timestamp(5))
        );
        assert_eq!(
            join_hash_value(&Value::Int(5)),
            join_hash_value(&Value::Float(5.0))
        );
        assert_ne!(
            join_hash_value(&Value::Float(5.5)),
            join_hash_value(&Value::Int(5))
        );
        // Vectorized per-class kernels must match the scalar entry point.
        assert_eq!(join_hash_int(7), join_hash_value(&Value::Int(7)));
        assert_eq!(join_hash_float(2.5), join_hash_value(&Value::Float(2.5)));
        assert_eq!(join_hash_bool(true), join_hash_value(&Value::Bool(true)));
        assert_eq!(join_hash_str("x"), join_hash_value(&Value::Str("x".into())));
    }

    #[test]
    fn low_entropy_integers_spread() {
        // Sequential integers must not collide in low bits (bucket index).
        let mut buckets = std::collections::HashSet::new();
        for i in 0..1024u64 {
            buckets.insert(hash_u64(i) & 1023);
        }
        // Expect decent coverage of the 1024 buckets.
        assert!(buckets.len() > 600, "only {} distinct buckets", buckets.len());
    }
}
