//! A packed bitmap used for validity masks, selection vectors, and delete
//! vectors.
//!
//! The representation is a `Vec<u64>` of words plus a logical length in
//! bits. All bulk operations (`union`, `intersect`, `count_ones`) work a
//! word at a time, which the compiler autovectorizes — this matters because
//! delete-vector application sits on the scan hot path.


/// A growable, packed bitmap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitset of `len` bits, all clear.
    pub fn with_len(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bitset of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut s = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        s.clear_trailing();
        s
    }

    fn clear_trailing(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Extends the bitset with `n` clear bits.
    pub fn grow(&mut self, n: usize) {
        self.len += n;
        let need = self.len.div_ceil(64);
        if need > self.words.len() {
            self.words.resize(need, 0);
        }
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let idx = self.len;
        self.grow(1);
        if bit {
            self.set(idx);
        }
    }

    /// Sets bit `i`. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`. Panics if out of range.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Returns bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Returns bit `i`, or `false` when out of range (useful for sparse
    /// delete vectors that only grow on first delete).
    #[inline]
    pub fn get_or_false(&self, i: usize) -> bool {
        if i < self.len {
            self.get(i)
        } else {
            false
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with `other` (must have the same length).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other` (must have the same length).
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place set difference: clears every bit set in `other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Flips every bit in place.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_trailing();
    }

    /// Iterator over the indexes of set bits, ascending.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            len: self.len,
        }
    }

    /// Collects set-bit indexes into a `Vec<u32>` selection vector.
    pub fn to_selection(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        out.extend(self.iter_ones().map(|i| i as u32));
        out
    }

    /// Builds a bitset of length `len` with the given positions set.
    pub fn from_indexes(len: usize, idx: &[usize]) -> Self {
        let mut s = Self::with_len(len);
        for &i in idx {
            s.set(i);
        }
        s
    }

    /// ORs a full 64-bit word of bits into word slot `idx` (bit `idx*64 + j`
    /// for each set bit `j`). Bits beyond the logical length are masked
    /// off. Used by vectorized kernels that produce hits a word at a time.
    pub fn or_word(&mut self, idx: usize, bits: u64) {
        if idx >= self.words.len() || bits == 0 {
            return;
        }
        self.words[idx] |= bits;
        if idx == self.words.len() - 1 {
            self.clear_trailing();
        }
    }

    /// Raw word access (read-only), used by vectorized kernels.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Copies bits `[start, start + len)` into a fresh bitset whose bit 0
    /// is the source's bit `start`. Word-shift copy, so row-group slices of
    /// a segment-wide selection stay cheap even when groups are not
    /// 64-aligned.
    pub fn slice(&self, start: usize, len: usize) -> BitSet {
        assert!(start + len <= self.len, "slice out of range");
        let nwords = len.div_ceil(64);
        let mut words = vec![0u64; nwords];
        let base = start / 64;
        let off = start % 64;
        if off == 0 {
            words.copy_from_slice(&self.words[base..base + nwords]);
        } else {
            for (k, w) in words.iter_mut().enumerate() {
                let lo = self.words[base + k] >> off;
                let hi = self
                    .words
                    .get(base + k + 1)
                    .map_or(0, |next| next << (64 - off));
                *w = lo | hi;
            }
        }
        let mut s = BitSet { words, len };
        s.clear_trailing();
        s
    }

    /// Rebuilds a bitset from raw words and a logical length (the inverse
    /// of [`BitSet::words`], used by the column-page codec). Missing words
    /// are zero-filled; surplus words and trailing bits are masked off.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(len.div_ceil(64), 0);
        let mut s = Self { words, len };
        s.clear_trailing();
        s
    }
}

/// Iterator over set-bit indexes produced by [`BitSet::iter_ones`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    len: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                let idx = self.word_idx * 64 + bit;
                if idx < self.len {
                    return Some(idx);
                }
                return None;
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::with_len(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let b = BitSet::with_len(10);
        b.get(10);
    }

    #[test]
    fn get_or_false_tolerates_short_sets() {
        let mut b = BitSet::with_len(5);
        b.set(3);
        assert!(b.get_or_false(3));
        assert!(!b.get_or_false(1000));
    }

    #[test]
    fn all_set_masks_trailing_bits() {
        let b = BitSet::all_set(70);
        assert_eq!(b.count_ones(), 70);
        let b = BitSet::all_set(64);
        assert_eq!(b.count_ones(), 64);
        let b = BitSet::all_set(0);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn push_and_grow() {
        let mut b = BitSet::new();
        for i in 0..100 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 34); // 0,3,...,99
    }

    #[test]
    fn boolean_algebra() {
        let mut a = BitSet::from_indexes(10, &[1, 3, 5]);
        let b = BitSet::from_indexes(10, &[3, 5, 7]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_selection(), vec![1, 3, 5, 7]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_selection(), vec![3, 5]);
        a.difference_with(&b);
        assert_eq!(a.to_selection(), vec![1]);
    }

    #[test]
    fn negate_respects_length() {
        let mut b = BitSet::from_indexes(70, &[0, 69]);
        b.negate();
        assert_eq!(b.count_ones(), 68);
        assert!(!b.get(0) && !b.get(69));
        assert!(b.get(1));
    }

    #[test]
    fn iter_ones_crosses_words() {
        let idx = [0usize, 63, 64, 127, 128, 199];
        let b = BitSet::from_indexes(200, &idx);
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, idx);
    }

    #[test]
    fn slice_matches_per_bit_copy() {
        let idx: Vec<usize> = (0..500).filter(|i| i % 7 == 0 || i % 13 == 0).collect();
        let b = BitSet::from_indexes(500, &idx);
        for (start, len) in [(0, 64), (0, 500), (1, 63), (63, 130), (64, 64), (37, 251), (499, 1), (500, 0)] {
            let s = b.slice(start, len);
            assert_eq!(s.len(), len);
            for i in 0..len {
                assert_eq!(s.get(i), b.get(start + i), "start {start} len {len} bit {i}");
            }
        }
    }

    #[test]
    fn iter_ones_empty_and_full() {
        assert_eq!(BitSet::with_len(100).iter_ones().count(), 0);
        assert_eq!(BitSet::all_set(100).iter_ones().count(), 100);
        assert_eq!(BitSet::new().iter_ones().count(), 0);
    }
}
