//! The error type shared by every `oltapdb` crate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = DbError> = std::result::Result<T, E>;

/// Errors surfaced by any layer of the engine.
///
/// The engine keeps a single flat error enum rather than per-crate error
/// types so that errors can flow from the storage layer through the executor
/// and out of the SQL front end without conversion boilerplate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A value had an unexpected [`crate::DataType`] for the operation.
    TypeMismatch {
        /// What the operation required.
        expected: String,
        /// What it actually received.
        actual: String,
    },
    /// A named table does not exist in the catalog.
    TableNotFound(String),
    /// A named column does not exist in the referenced table.
    ColumnNotFound(String),
    /// An object with the same name already exists.
    AlreadyExists(String),
    /// A primary-key constraint was violated.
    DuplicateKey(String),
    /// A row with the requested key does not exist.
    KeyNotFound(String),
    /// The transaction lost a first-committer-wins conflict and must abort.
    WriteConflict(String),
    /// The transaction was already committed or aborted.
    TxnClosed(String),
    /// SQL text failed to tokenize or parse.
    Parse(String),
    /// The query was well-formed but cannot be planned/bound.
    Plan(String),
    /// A runtime execution failure (overflow, division by zero, ...).
    Execution(String),
    /// Corrupt or truncated data encountered (e.g. WAL replay).
    Corruption(String),
    /// A distributed-layer failure (no leader, node down, quorum lost).
    Cluster(String),
    /// A specific partition could not serve a request (no leader elected
    /// within the timeout, or no running replica). Carries the partition id
    /// so routers can retry or redirect per shard instead of failing the
    /// whole statement.
    ShardUnavailable {
        /// The partition that was unreachable.
        partition: u64,
        /// What the shard was needed for ("no leader", "no replica", ...).
        reason: String,
    },
    /// A distributed transaction whose outcome is not yet known at this
    /// node: it prepared (or decided) but the coordinator crashed before
    /// the decision reached every participant. Recovery resolves it from
    /// the replicated coordinator log; callers must not assume commit *or*
    /// abort until then.
    TxnInDoubt {
        /// The global transaction id.
        gtxn: u64,
    },
    /// The operation is not supported by this table format or engine build.
    Unsupported(String),
    /// Invalid argument supplied by the caller.
    InvalidArgument(String),
    /// Underlying I/O failure (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// The operation was cancelled explicitly (session closed, `cancel()`
    /// called, or the admission controller shed an already-cancelled
    /// request). Deadline expiry is [`DbError::DeadlineExceeded`].
    Cancelled(String),
    /// A query or queued request ran past its deadline. Split from
    /// [`DbError::Cancelled`] so callers can distinguish "the user gave
    /// up" from "the system timed the work out" — retry policies and
    /// admission accounting treat the two differently.
    DeadlineExceeded(String),
    /// A memory reservation (or other resource claim) could not be
    /// satisfied and the operator had no way to degrade (e.g. no spill
    /// directory configured). Carries the workload class and the sizes so
    /// the admission layer can log and account the rejection.
    ResourceExhausted {
        /// Workload class whose pool was exhausted ("oltp" / "olap").
        class: String,
        /// Bytes the reservation asked for.
        requested: u64,
        /// Bytes that were still available in the pool at the time.
        available: u64,
    },
    /// An injected fault fired (chaos testing only; never in production
    /// paths unless a [`crate::fault::FaultInjector`] is installed).
    FaultInjected(String),
    /// The server cannot take this request right now but expects to
    /// recover: it is draining for shutdown, at its connection cap, or
    /// shedding load at the edge. Distinct from
    /// [`DbError::ResourceExhausted`] (a sized resource claim failed) —
    /// this is an admission-surface rejection carrying an explicit
    /// retry-after hint the client's backoff must honor as a floor.
    Unavailable {
        /// Why the request was turned away ("draining", "connection
        /// limit", ...).
        reason: String,
        /// Minimum milliseconds the client should wait before retrying
        /// (0 = retry at the client's own backoff pace).
        retry_after_ms: u64,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            DbError::TableNotFound(t) => write!(f, "table not found: {t}"),
            DbError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            DbError::AlreadyExists(o) => write!(f, "already exists: {o}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            DbError::KeyNotFound(k) => write!(f, "key not found: {k}"),
            DbError::WriteConflict(m) => write!(f, "write-write conflict: {m}"),
            DbError::TxnClosed(m) => write!(f, "transaction closed: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Plan(m) => write!(f, "plan error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::Corruption(m) => write!(f, "corruption: {m}"),
            DbError::Cluster(m) => write!(f, "cluster error: {m}"),
            DbError::ShardUnavailable { partition, reason } => {
                write!(f, "shard unavailable: partition {partition} ({reason})")
            }
            DbError::TxnInDoubt { gtxn } => {
                write!(f, "transaction in doubt: gtxn {gtxn} awaits coordinator recovery")
            }
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::Cancelled(m) => write!(f, "cancelled: {m}"),
            DbError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            DbError::ResourceExhausted {
                class,
                requested,
                available,
            } => write!(
                f,
                "resource exhausted: class {class} requested {requested} B, {available} B available"
            ),
            DbError::FaultInjected(m) => write!(f, "fault injected: {m}"),
            DbError::Unavailable {
                reason,
                retry_after_ms,
            } => write!(
                f,
                "unavailable: {reason} (retry after {retry_after_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_payload() {
        let e = DbError::TableNotFound("orders".into());
        assert_eq!(e.to_string(), "table not found: orders");
        let e = DbError::TypeMismatch {
            expected: "Int64".into(),
            actual: "Utf8".into(),
        };
        assert!(e.to_string().contains("Int64"));
        assert!(e.to_string().contains("Utf8"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: DbError = io.into();
        assert!(matches!(e, DbError::Io(_)));
    }

    #[test]
    fn resource_exhausted_reports_sizes() {
        let e = DbError::ResourceExhausted {
            class: "olap".into(),
            requested: 4096,
            available: 128,
        };
        let s = e.to_string();
        assert!(s.contains("olap"));
        assert!(s.contains("4096"));
        assert!(s.contains("128"));
    }

    #[test]
    fn cancelled_and_deadline_are_distinct() {
        assert_ne!(
            DbError::Cancelled("x".into()),
            DbError::DeadlineExceeded("x".into())
        );
    }

    #[test]
    fn shard_unavailable_names_partition() {
        let e = DbError::ShardUnavailable {
            partition: 3,
            reason: "no leader".into(),
        };
        let s = e.to_string();
        assert!(s.contains("partition 3"));
        assert!(s.contains("no leader"));
    }

    #[test]
    fn txn_in_doubt_names_gtxn() {
        let e = DbError::TxnInDoubt { gtxn: 42 };
        assert!(e.to_string().contains("42"));
        assert_ne!(e, DbError::TxnInDoubt { gtxn: 43 });
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            DbError::Parse("x".into()),
            DbError::Parse("x".into())
        );
        assert_ne!(DbError::Parse("x".into()), DbError::Plan("x".into()));
    }
}
