//! # oltap-common
//!
//! The shared data model underneath every other `oltapdb` crate.
//!
//! This crate deliberately has no dependencies on the rest of the system so
//! that storage, transaction, execution, and distribution layers can all
//! agree on a single vocabulary:
//!
//! * [`types::DataType`] / [`types::Value`] — the logical type system and
//!   dynamically typed scalar values.
//! * [`schema::Schema`] / [`schema::Field`] — table schemas with primary-key
//!   metadata.
//! * [`row::Row`] — an N-tuple of values (the unit of the row store and of
//!   DML).
//! * [`vector::ColumnVector`] / [`vector::Batch`] — typed columnar batches
//!   (the unit of the vectorized executor).
//! * [`bitset::BitSet`] — packed validity/selection/delete bitmaps.
//! * [`hash`] — a fast, non-cryptographic hasher (Fx-style) plus `HashMap`
//!   aliases used on hot paths throughout the engine.
//! * [`ids`] — newtype identifiers (tables, columns, segments, transactions,
//!   cluster nodes, partitions).
//! * [`error::DbError`] — the error type shared across crates.

pub mod bitset;
pub mod error;
pub mod hash;
pub mod ids;
pub mod row;
pub mod schema;
pub mod types;
pub mod vector;

pub use bitset::BitSet;
pub use error::{DbError, Result};
pub use row::Row;
pub use schema::{Field, Schema};
pub use types::{DataType, Value};
pub use vector::{Batch, ColumnVector};
