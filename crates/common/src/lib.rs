//! # oltap-common
//!
//! The shared data model underneath every other `oltapdb` crate.
//!
//! This crate deliberately has no dependencies on the rest of the system so
//! that storage, transaction, execution, and distribution layers can all
//! agree on a single vocabulary:
//!
//! * [`types::DataType`] / [`types::Value`] — the logical type system and
//!   dynamically typed scalar values.
//! * [`schema::Schema`] / [`schema::Field`] — table schemas with primary-key
//!   metadata.
//! * [`row::Row`] — an N-tuple of values (the unit of the row store and of
//!   DML).
//! * [`vector::ColumnVector`] / [`vector::Batch`] — typed columnar batches
//!   (the unit of the vectorized executor).
//! * [`bitset::BitSet`] — packed validity/selection/delete bitmaps.
//! * [`bloom::BlockedBloom`] — a blocked Bloom filter for join
//!   sideways-information-passing into scans.
//! * [`hash`] — a fast, non-cryptographic hasher (Fx-style) plus `HashMap`
//!   aliases used on hot paths throughout the engine.
//! * [`ids`] — newtype identifiers (tables, columns, segments, transactions,
//!   cluster nodes, partitions).
//! * [`error::DbError`] — the error type shared across crates.
//! * [`fault::FaultInjector`] — seeded, deterministic fault injection for
//!   chaos testing (named points, per-point RNG streams, decision log).
//! * [`cancel::CancellationToken`] — cooperative cancellation + deadlines,
//!   checked at batch boundaries by the executor.
//! * [`mem::MemoryGovernor`] / [`mem::MemoryBudget`] — hierarchical memory
//!   accounting (process pool → workload class → per-query budget); failed
//!   reservations drive the executor's spill-to-disk paths.
//! * [`retry::Backoff`] — exponential backoff with deterministic jitter
//!   for distributed retry loops.

pub mod bitset;
pub mod bloom;
pub mod cancel;
pub mod error;
pub mod fault;
pub mod hash;
pub mod mem;
pub mod retry;
pub mod ids;
pub mod row;
pub mod schema;
pub mod types;
pub mod vector;

pub use bitset::BitSet;
pub use bloom::BlockedBloom;
pub use cancel::CancellationToken;
pub use error::{DbError, Result};
pub use fault::{FaultInjector, FaultPoint};
pub use mem::{MemoryBudget, MemoryGovernor, WorkloadClass};
pub use row::Row;
pub use schema::{Field, Schema};
pub use types::{DataType, Value};
pub use vector::{Batch, ColumnVector};
