//! Hierarchical memory governance.
//!
//! The defining HTAP robustness problem (Polynesia, L-Store, HyPer's
//! admission work) is resource isolation: one runaway OLAP aggregation
//! must not OOM the process or starve OLTP traffic. This module provides
//! the accounting substrate the rest of the engine builds on:
//!
//! ```text
//!   MemoryGovernor (process pool, e.g. 8 GiB)
//!     ├─ class pool OLTP  (reserved slice, e.g. 25%)
//!     └─ class pool OLAP  (the rest)
//!          └─ MemoryBudget (per query, e.g. 256 MiB)
//! ```
//!
//! Reservations are **atomic and hierarchical**: a query-level
//! [`MemoryBudget::try_reserve`] claims bytes at all three levels or at
//! none. A failed reservation is not an error by itself — the pipeline
//! breakers respond by *spilling* (see `oltap-exec`) and only surface
//! [`DbError::ResourceExhausted`] when no degradation path exists.
//!
//! The [`points::MEM_RESERVE_FAIL`](crate::fault::points::MEM_RESERVE_FAIL)
//! fault point fires inside `try_reserve`, so chaos tests can force the
//! spill paths deterministically without provisioning tiny pools.
//!
//! [`WorkloadClass`] is canonical here (re-exported by `oltap-sched`):
//! the scheduler's priority dispatch and the governor's class pools must
//! agree on what a "class" is.

use crate::error::{DbError, Result};
use crate::fault::{points, FaultInjector};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The two workload classes of the operational-analytics engine.
///
/// OLTP: short point reads/writes, latency-critical, always admitted.
/// OLAP: scans/joins/aggregations, throughput-oriented, throttled and
/// memory-bounded under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Transactional work: point queries, DML, commits.
    Oltp,
    /// Analytical work: scans, joins, aggregations.
    Olap,
}

impl WorkloadClass {
    /// Stable lowercase name, used in errors and stats.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkloadClass::Oltp => "oltp",
            WorkloadClass::Olap => "olap",
        }
    }

    fn index(self) -> usize {
        match self {
            WorkloadClass::Oltp => 0,
            WorkloadClass::Olap => 1,
        }
    }
}

#[derive(Debug)]
struct ClassPool {
    limit: u64,
    used: AtomicU64,
}

impl ClassPool {
    fn new(limit: u64) -> Self {
        ClassPool {
            limit,
            used: AtomicU64::new(0),
        }
    }

    /// Claims `bytes` or leaves the pool untouched; returns bytes left.
    fn try_claim(&self, bytes: u64) -> std::result::Result<(), u64> {
        let prev = self.used.fetch_add(bytes, Ordering::AcqRel);
        if prev.saturating_add(bytes) > self.limit {
            self.used.fetch_sub(bytes, Ordering::AcqRel);
            Err(self.limit.saturating_sub(prev))
        } else {
            Ok(())
        }
    }

    fn release(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::AcqRel);
        debug_assert!(prev >= bytes, "memory pool release underflow");
    }
}

/// Process-wide memory pool split into per-class sub-pools.
///
/// Construction is cheap; probing an unlimited governor costs two atomic
/// RMWs per reservation, so the executor reserves in coarse chunks (whole
/// radix partitions, whole sort runs), not per row.
#[derive(Debug)]
pub struct MemoryGovernor {
    total: ClassPool,
    classes: [ClassPool; 2],
    /// Carve-out for the storage buffer pool (resident column pages).
    /// Unlimited unless constructed via [`MemoryGovernor::with_buffer_pool`],
    /// so buffer-pool bytes, operator budgets, and OLTP working sets all
    /// draw from the same process-wide `total` hierarchy.
    buffer: ClassPool,
    faults: Arc<FaultInjector>,
    spill_events: AtomicU64,
}

impl MemoryGovernor {
    /// A governor with a process-wide limit and per-class limits. Pass
    /// `u64::MAX` for "unlimited" at any level.
    pub fn new(total_limit: u64, oltp_limit: u64, olap_limit: u64) -> Arc<MemoryGovernor> {
        Self::with_faults(total_limit, oltp_limit, olap_limit, FaultInjector::disabled())
    }

    /// Like [`MemoryGovernor::new`], but reservations probe
    /// `mem.reserve_fail` on the given injector first.
    pub fn with_faults(
        total_limit: u64,
        oltp_limit: u64,
        olap_limit: u64,
        faults: Arc<FaultInjector>,
    ) -> Arc<MemoryGovernor> {
        Self::with_buffer_pool(total_limit, oltp_limit, olap_limit, u64::MAX, faults)
    }

    /// Like [`MemoryGovernor::with_faults`], plus an explicit carve-out
    /// limit for the storage buffer pool. Buffer-pool claims count against
    /// both the carve-out and the process total, so page caching competes
    /// with operator budgets in one hierarchy instead of OOMing past it.
    pub fn with_buffer_pool(
        total_limit: u64,
        oltp_limit: u64,
        olap_limit: u64,
        buffer_limit: u64,
        faults: Arc<FaultInjector>,
    ) -> Arc<MemoryGovernor> {
        Arc::new(MemoryGovernor {
            total: ClassPool::new(total_limit),
            classes: [ClassPool::new(oltp_limit), ClassPool::new(olap_limit)],
            buffer: ClassPool::new(buffer_limit),
            faults,
            spill_events: AtomicU64::new(0),
        })
    }

    /// A governor that never rejects (all limits `u64::MAX`).
    pub fn unlimited() -> Arc<MemoryGovernor> {
        Self::new(u64::MAX, u64::MAX, u64::MAX)
    }

    /// Creates a per-query budget in `class` capped at `query_limit`
    /// bytes (`u64::MAX` for uncapped-within-the-class).
    pub fn budget(self: &Arc<Self>, class: WorkloadClass, query_limit: u64) -> MemoryBudget {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                governor: Some(Arc::clone(self)),
                class,
                limit: query_limit,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                spills: AtomicU64::new(0),
            }),
        }
    }

    /// Bytes currently reserved in `class`.
    pub fn used(&self, class: WorkloadClass) -> u64 {
        self.classes[class.index()].used.load(Ordering::Acquire)
    }

    /// Bytes currently reserved process-wide.
    pub fn total_used(&self) -> u64 {
        self.total.used.load(Ordering::Acquire)
    }

    /// Total spill events recorded by budgets of this governor.
    pub fn spill_events(&self) -> u64 {
        self.spill_events.load(Ordering::Relaxed)
    }

    /// Bytes currently held by the storage buffer pool.
    pub fn buffer_used(&self) -> u64 {
        self.buffer.used.load(Ordering::Acquire)
    }

    /// The buffer-pool carve-out limit (`u64::MAX` when unconstrained).
    pub fn buffer_limit(&self) -> u64 {
        self.buffer.limit
    }

    /// Claims `bytes` for the buffer pool — carve-out first, then the
    /// process total, all-or-nothing. `Err` carries the bytes left in the
    /// tighter of the two pools; the buffer manager responds by evicting,
    /// not by failing the query.
    pub fn try_claim_buffer(&self, bytes: u64) -> std::result::Result<(), u64> {
        self.buffer.try_claim(bytes)?;
        if let Err(left) = self.total.try_claim(bytes) {
            self.buffer.release(bytes);
            return Err(left);
        }
        Ok(())
    }

    /// Returns buffer-pool bytes to the carve-out and the process total.
    pub fn release_buffer(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.buffer.release(bytes);
        self.total.release(bytes);
    }

    /// Claims at class level then process level; all-or-nothing.
    fn try_claim(&self, class: WorkloadClass, bytes: u64) -> std::result::Result<(), u64> {
        let pool = &self.classes[class.index()];
        let class_left = pool.try_claim(bytes).err();
        if let Some(left) = class_left {
            return Err(left);
        }
        if let Err(left) = self.total.try_claim(bytes) {
            pool.release(bytes);
            return Err(left);
        }
        Ok(())
    }

    fn release(&self, class: WorkloadClass, bytes: u64) {
        self.classes[class.index()].release(bytes);
        self.total.release(bytes);
    }
}

#[derive(Debug)]
struct BudgetInner {
    /// `None` for the zero-cost unlimited budget.
    governor: Option<Arc<MemoryGovernor>>,
    class: WorkloadClass,
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
    spills: AtomicU64,
}

impl Drop for BudgetInner {
    fn drop(&mut self) {
        // Whatever the query still holds flows back to the pools; a
        // query that errors out mid-spill cannot leak reservation.
        if let Some(gov) = &self.governor {
            let held = *self.used.get_mut();
            if held > 0 {
                gov.release(self.class, held);
            }
        }
    }
}

/// A cheap, cloneable per-query memory budget.
///
/// Clones share one account (workers of a parallel pipeline reserve
/// against the same query budget). Dropping the last clone releases any
/// outstanding reservation back to the governor.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<BudgetInner>,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl MemoryBudget {
    /// A budget that never rejects and never touches a governor — the
    /// executor default when no memory management is configured.
    pub fn unlimited() -> Self {
        MemoryBudget {
            inner: Arc::new(BudgetInner {
                governor: None,
                class: WorkloadClass::Olap,
                limit: u64::MAX,
                used: AtomicU64::new(0),
                peak: AtomicU64::new(0),
                spills: AtomicU64::new(0),
            }),
        }
    }

    /// True if a reservation can ever fail (so operators can skip size
    /// estimation entirely on the unlimited fast path).
    pub fn is_limited(&self) -> bool {
        self.inner.governor.is_some()
    }

    /// The workload class this budget draws from.
    pub fn class(&self) -> WorkloadClass {
        self.inner.class
    }

    /// Attempts to reserve `bytes` at query, class, and process level.
    ///
    /// On failure nothing is reserved and [`DbError::ResourceExhausted`]
    /// describes the shortfall. Operators treat that error as a *spill
    /// request*, not a query failure.
    pub fn try_reserve(&self, bytes: u64) -> Result<()> {
        let Some(gov) = &self.inner.governor else {
            return Ok(());
        };
        // Chaos probe before any cap check, so an armed `mem.reserve_fail`
        // exercises the spill path even when the caps would have decided
        // the same way.
        if gov.faults.should_fire(points::MEM_RESERVE_FAIL) {
            return Err(self.exhausted(bytes, 0));
        }
        // Query-level cap first (purely local).
        let prev = self.inner.used.fetch_add(bytes, Ordering::AcqRel);
        if prev.saturating_add(bytes) > self.inner.limit {
            self.inner.used.fetch_sub(bytes, Ordering::AcqRel);
            return Err(self.exhausted(bytes, self.inner.limit.saturating_sub(prev)));
        }
        // Then the shared pools.
        if let Err(available) = gov.try_claim(self.inner.class, bytes) {
            self.inner.used.fetch_sub(bytes, Ordering::AcqRel);
            return Err(self.exhausted(bytes, available));
        }
        self.inner.peak.fetch_max(prev + bytes, Ordering::AcqRel);
        Ok(())
    }

    /// Reserves `bytes` unconditionally (tracked, never fails). Used for
    /// a pipeline breaker's *final materialized result* — the hash table
    /// or sorted output the query cannot proceed without. The governor
    /// bounds working/accumulation memory via [`MemoryBudget::try_reserve`];
    /// resident results are the admission controller's problem.
    pub fn reserve_forced(&self, bytes: u64) {
        if self.inner.governor.is_none() {
            return;
        }
        let prev = self.inner.used.fetch_add(bytes, Ordering::AcqRel);
        self.inner.peak.fetch_max(prev + bytes, Ordering::AcqRel);
        if let Some(gov) = &self.inner.governor {
            // Forced claims bypass the limit checks but stay accounted.
            gov.classes[self.inner.class.index()]
                .used
                .fetch_add(bytes, Ordering::AcqRel);
            gov.total.used.fetch_add(bytes, Ordering::AcqRel);
        }
    }

    /// Returns `bytes` to the pools.
    pub fn release(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let Some(gov) = &self.inner.governor else {
            return;
        };
        let prev = self.inner.used.fetch_sub(bytes, Ordering::AcqRel);
        debug_assert!(prev >= bytes, "budget release underflow");
        gov.release(self.inner.class, bytes);
    }

    /// Bytes currently reserved by this query.
    pub fn used(&self) -> u64 {
        self.inner.used.load(Ordering::Acquire)
    }

    /// High-water mark of this query's reservation.
    pub fn peak(&self) -> u64 {
        self.inner.peak.load(Ordering::Acquire)
    }

    /// The per-query cap.
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// Records that an operator spilled because a reservation failed
    /// (stats only; visible on the budget and aggregated on the governor).
    pub fn note_spill(&self) {
        self.inner.spills.fetch_add(1, Ordering::Relaxed);
        if let Some(gov) = &self.inner.governor {
            gov.spill_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of spill events this query triggered.
    pub fn spill_count(&self) -> u64 {
        self.inner.spills.load(Ordering::Relaxed)
    }

    fn exhausted(&self, requested: u64, available: u64) -> DbError {
        DbError::ResourceExhausted {
            class: self.inner.class.as_str().to_string(),
            requested,
            available,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPoint;

    #[test]
    fn unlimited_budget_never_rejects() {
        let b = MemoryBudget::unlimited();
        assert!(!b.is_limited());
        for _ in 0..1000 {
            b.try_reserve(u64::MAX / 2).unwrap();
        }
        b.release(12345); // no-op, must not underflow
    }

    #[test]
    fn query_cap_enforced_and_released() {
        let gov = MemoryGovernor::new(1 << 30, 1 << 30, 1 << 30);
        let b = gov.budget(WorkloadClass::Olap, 1000);
        b.try_reserve(600).unwrap();
        let err = b.try_reserve(600).unwrap_err();
        match err {
            DbError::ResourceExhausted {
                class,
                requested,
                available,
            } => {
                assert_eq!(class, "olap");
                assert_eq!(requested, 600);
                assert_eq!(available, 400);
            }
            other => panic!("wrong error: {other:?}"),
        }
        b.release(600);
        b.try_reserve(900).unwrap();
        assert_eq!(b.peak(), 900);
    }

    #[test]
    fn class_pool_isolates_oltp_from_olap() {
        let gov = MemoryGovernor::new(u64::MAX, 1000, 1000);
        let olap = gov.budget(WorkloadClass::Olap, u64::MAX);
        let oltp = gov.budget(WorkloadClass::Oltp, u64::MAX);
        olap.try_reserve(1000).unwrap();
        assert!(olap.try_reserve(1).is_err(), "olap pool is full");
        oltp.try_reserve(1000).unwrap();
        assert_eq!(gov.used(WorkloadClass::Oltp), 1000);
        assert_eq!(gov.used(WorkloadClass::Olap), 1000);
        assert_eq!(gov.total_used(), 2000);
    }

    #[test]
    fn process_pool_caps_sum_of_classes() {
        let gov = MemoryGovernor::new(1500, 1000, 1000);
        let a = gov.budget(WorkloadClass::Oltp, u64::MAX);
        let b = gov.budget(WorkloadClass::Olap, u64::MAX);
        a.try_reserve(1000).unwrap();
        // Class pool would allow it, process pool must not.
        assert!(b.try_reserve(1000).is_err());
        b.try_reserve(500).unwrap();
        // The failed claim rolled back fully.
        assert_eq!(gov.total_used(), 1500);
    }

    #[test]
    fn drop_releases_outstanding_reservation() {
        let gov = MemoryGovernor::new(1000, 1000, 1000);
        {
            let b = gov.budget(WorkloadClass::Olap, u64::MAX);
            b.try_reserve(800).unwrap();
            assert_eq!(gov.total_used(), 800);
        }
        assert_eq!(gov.total_used(), 0, "drop returned the bytes");
    }

    #[test]
    fn clones_share_one_account() {
        let gov = MemoryGovernor::new(1000, 1000, 1000);
        let b = gov.budget(WorkloadClass::Olap, 1000);
        let c = b.clone();
        b.try_reserve(600).unwrap();
        assert!(c.try_reserve(600).is_err(), "clone sees the same account");
        drop(b);
        assert_eq!(gov.total_used(), 600, "still held by the surviving clone");
        drop(c);
        assert_eq!(gov.total_used(), 0);
    }

    #[test]
    fn forced_reservation_bypasses_caps_but_is_accounted() {
        let gov = MemoryGovernor::new(100, 100, 100);
        let b = gov.budget(WorkloadClass::Olap, 100);
        b.reserve_forced(5000);
        assert_eq!(b.used(), 5000);
        assert_eq!(gov.total_used(), 5000);
        drop(b);
        assert_eq!(gov.total_used(), 0);
    }

    #[test]
    fn reserve_fail_fault_point_fires_deterministically() {
        let faults = FaultInjector::new(0xBEEF);
        faults.arm(points::MEM_RESERVE_FAIL, FaultPoint::times(2));
        let gov = MemoryGovernor::with_faults(u64::MAX, u64::MAX, u64::MAX, faults.clone());
        let b = gov.budget(WorkloadClass::Olap, u64::MAX);
        assert!(b.try_reserve(1).is_err());
        assert!(b.try_reserve(1).is_err());
        assert!(b.try_reserve(1).is_ok(), "limit of 2 firings respected");
        assert_eq!(faults.fired_count(), 2);
        // A fired reservation must not leak partial claims.
        assert_eq!(gov.total_used(), 1);
    }

    #[test]
    fn spill_stats_flow_to_governor() {
        let gov = MemoryGovernor::new(u64::MAX, u64::MAX, u64::MAX);
        let b = gov.budget(WorkloadClass::Olap, u64::MAX);
        b.note_spill();
        b.note_spill();
        assert_eq!(b.spill_count(), 2);
        assert_eq!(gov.spill_events(), 2);
    }

    #[test]
    fn buffer_carveout_caps_and_releases() {
        let gov = MemoryGovernor::with_buffer_pool(
            u64::MAX,
            u64::MAX,
            u64::MAX,
            1000,
            FaultInjector::disabled(),
        );
        assert_eq!(gov.buffer_limit(), 1000);
        gov.try_claim_buffer(600).unwrap();
        assert_eq!(gov.buffer_used(), 600);
        assert_eq!(gov.total_used(), 600, "buffer bytes count in the total");
        let left = gov.try_claim_buffer(600).unwrap_err();
        assert_eq!(left, 400);
        assert_eq!(gov.buffer_used(), 600, "failed claim rolled back fully");
        gov.release_buffer(600);
        assert_eq!(gov.buffer_used(), 0);
        assert_eq!(gov.total_used(), 0);
    }

    #[test]
    fn buffer_competes_with_operator_budgets_in_total() {
        let gov = MemoryGovernor::with_buffer_pool(
            1000,
            u64::MAX,
            u64::MAX,
            u64::MAX,
            FaultInjector::disabled(),
        );
        let b = gov.budget(WorkloadClass::Olap, u64::MAX);
        b.try_reserve(700).unwrap();
        // The carve-out is unlimited but the process total is not: a
        // buffer claim that would exceed it must fail and roll back.
        let left = gov.try_claim_buffer(700).unwrap_err();
        assert_eq!(left, 300);
        assert_eq!(gov.buffer_used(), 0, "total-level failure rolled back the carve-out");
        gov.try_claim_buffer(300).unwrap();
        assert_eq!(gov.total_used(), 1000);
        gov.release_buffer(300);
        drop(b);
        assert_eq!(gov.total_used(), 0);
    }

    #[test]
    fn default_ctors_leave_buffer_unlimited() {
        let gov = MemoryGovernor::new(u64::MAX, u64::MAX, u64::MAX);
        assert_eq!(gov.buffer_limit(), u64::MAX);
        gov.try_claim_buffer(1 << 40).unwrap();
        gov.release_buffer(1 << 40);
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(WorkloadClass::Oltp.as_str(), "oltp");
        assert_eq!(WorkloadClass::Olap.as_str(), "olap");
    }
}
