//! Typed columnar vectors and batches — the unit of vectorized execution.
//!
//! A [`ColumnVector`] holds one column's values for a run of rows in a
//! dense, typed representation; a [`Batch`] is a set of equally long
//! vectors. The executor processes batches of ~4K rows at a time, which is
//! the standard way (MonetDB/X100 lineage, adopted by HANA, BLU, and
//! friends — see the paper's §3/§4) to amortize interpretation overhead
//! while staying cache-resident.

use crate::bitset::BitSet;
use crate::error::{DbError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::types::{DataType, Value};

/// Default number of rows the executor processes per batch.
pub const BATCH_SIZE: usize = 4096;

/// One column's values in dense typed storage plus an optional validity
/// bitmap (a set bit means "valid/non-null"; absence of a bitmap means all
/// valid).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnVector {
    /// 64-bit integers (also carries `Timestamp` physically).
    Int64 {
        /// Dense values; positions whose validity bit is clear hold 0.
        values: Vec<i64>,
        /// Validity bitmap (`None` = all valid).
        validity: Option<BitSet>,
    },
    /// 64-bit floats.
    Float64 {
        /// Dense values.
        values: Vec<f64>,
        /// Validity bitmap.
        validity: Option<BitSet>,
    },
    /// UTF-8 strings.
    Utf8 {
        /// Dense values (empty string at null positions).
        values: Vec<String>,
        /// Validity bitmap.
        validity: Option<BitSet>,
    },
    /// Booleans, bit-packed.
    Bool {
        /// Packed values.
        values: BitSet,
        /// Validity bitmap.
        validity: Option<BitSet>,
    },
}

impl ColumnVector {
    /// Creates an empty vector of the given logical type. `Timestamp` maps
    /// onto the `Int64` physical representation.
    pub fn new(data_type: DataType) -> Self {
        match data_type {
            DataType::Int64 | DataType::Timestamp => ColumnVector::Int64 {
                values: Vec::new(),
                validity: None,
            },
            DataType::Float64 => ColumnVector::Float64 {
                values: Vec::new(),
                validity: None,
            },
            DataType::Utf8 => ColumnVector::Utf8 {
                values: Vec::new(),
                validity: None,
            },
            DataType::Bool => ColumnVector::Bool {
                values: BitSet::new(),
                validity: None,
            },
        }
    }

    /// Creates an all-valid Int64 vector.
    pub fn from_i64(values: Vec<i64>) -> Self {
        ColumnVector::Int64 {
            values,
            validity: None,
        }
    }

    /// Creates an all-valid Float64 vector.
    pub fn from_f64(values: Vec<f64>) -> Self {
        ColumnVector::Float64 {
            values,
            validity: None,
        }
    }

    /// Creates an all-valid Utf8 vector.
    pub fn from_strings(values: Vec<String>) -> Self {
        ColumnVector::Utf8 {
            values,
            validity: None,
        }
    }

    /// Creates an all-valid Bool vector.
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut bits = BitSet::with_len(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                bits.set(i);
            }
        }
        ColumnVector::Bool {
            values: bits,
            validity: None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Int64 { values, .. } => values.len(),
            ColumnVector::Float64 { values, .. } => values.len(),
            ColumnVector::Utf8 { values, .. } => values.len(),
            ColumnVector::Bool { values, .. } => values.len(),
        }
    }

    /// True when the vector holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical type of this vector (`Timestamp` reports as `Int64`).
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnVector::Int64 { .. } => DataType::Int64,
            ColumnVector::Float64 { .. } => DataType::Float64,
            ColumnVector::Utf8 { .. } => DataType::Utf8,
            ColumnVector::Bool { .. } => DataType::Bool,
        }
    }

    /// Whether the row at `i` is non-null.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match self.validity() {
            Some(v) => v.get(i),
            None => true,
        }
    }

    /// The validity bitmap, if any.
    pub fn validity(&self) -> Option<&BitSet> {
        match self {
            ColumnVector::Int64 { validity, .. }
            | ColumnVector::Float64 { validity, .. }
            | ColumnVector::Utf8 { validity, .. }
            | ColumnVector::Bool { validity, .. } => validity.as_ref(),
        }
    }

    /// Materializes the value at `i` as a dynamically typed [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match self {
            ColumnVector::Int64 { values, .. } => Value::Int(values[i]),
            ColumnVector::Float64 { values, .. } => Value::Float(values[i]),
            ColumnVector::Utf8 { values, .. } => Value::Str(values[i].clone()),
            ColumnVector::Bool { values, .. } => Value::Bool(values.get(i)),
        }
    }

    /// Appends a dynamically typed value, promoting to a validity bitmap on
    /// the first NULL.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        let idx = self.len();
        let is_null = value.is_null();
        match self {
            ColumnVector::Int64 { values, validity } => {
                values.push(if is_null { 0 } else { value.as_int()? });
                push_validity(validity, idx, is_null);
            }
            ColumnVector::Float64 { values, validity } => {
                values.push(if is_null { 0.0 } else { value.as_float()? });
                push_validity(validity, idx, is_null);
            }
            ColumnVector::Utf8 { values, validity } => {
                values.push(if is_null {
                    String::new()
                } else {
                    value.as_str()?.to_string()
                });
                push_validity(validity, idx, is_null);
            }
            ColumnVector::Bool { values, validity } => {
                values.push(if is_null { false } else { value.as_bool()? });
                push_validity(validity, idx, is_null);
            }
        }
        Ok(())
    }

    /// Gathers the rows at `sel` into a new vector (selection-vector
    /// application).
    pub fn take(&self, sel: &[u32]) -> ColumnVector {
        let gather_validity = |validity: &Option<BitSet>| -> Option<BitSet> {
            validity.as_ref().map(|v| {
                let mut out = BitSet::with_len(sel.len());
                for (o, &s) in sel.iter().enumerate() {
                    if v.get(s as usize) {
                        out.set(o);
                    }
                }
                out
            })
        };
        match self {
            ColumnVector::Int64 { values, validity } => ColumnVector::Int64 {
                values: sel.iter().map(|&i| values[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            ColumnVector::Float64 { values, validity } => ColumnVector::Float64 {
                values: sel.iter().map(|&i| values[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            ColumnVector::Utf8 { values, validity } => ColumnVector::Utf8 {
                values: sel.iter().map(|&i| values[i as usize].clone()).collect(),
                validity: gather_validity(validity),
            },
            ColumnVector::Bool { values, validity } => {
                let mut bits = BitSet::with_len(sel.len());
                for (o, &s) in sel.iter().enumerate() {
                    if values.get(s as usize) {
                        bits.set(o);
                    }
                }
                ColumnVector::Bool {
                    values: bits,
                    validity: gather_validity(validity),
                }
            }
        }
    }

    /// Borrows the dense `i64` values; errors for other types.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            ColumnVector::Int64 { values, .. } => Ok(values),
            other => Err(DbError::TypeMismatch {
                expected: "Int64".into(),
                actual: other.data_type().name().into(),
            }),
        }
    }

    /// Borrows the dense `f64` values; errors for other types.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            ColumnVector::Float64 { values, .. } => Ok(values),
            other => Err(DbError::TypeMismatch {
                expected: "Float64".into(),
                actual: other.data_type().name().into(),
            }),
        }
    }

    /// Borrows the string values; errors for other types.
    pub fn as_strings(&self) -> Result<&[String]> {
        match self {
            ColumnVector::Utf8 { values, .. } => Ok(values),
            other => Err(DbError::TypeMismatch {
                expected: "Utf8".into(),
                actual: other.data_type().name().into(),
            }),
        }
    }

    /// Borrows the packed booleans; errors for other types.
    pub fn as_bools(&self) -> Result<&BitSet> {
        match self {
            ColumnVector::Bool { values, .. } => Ok(values),
            other => Err(DbError::TypeMismatch {
                expected: "Bool".into(),
                actual: other.data_type().name().into(),
            }),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn approx_size(&self) -> usize {
        match self {
            ColumnVector::Int64 { values, .. } => values.len() * 8,
            ColumnVector::Float64 { values, .. } => values.len() * 8,
            ColumnVector::Utf8 { values, .. } => values
                .iter()
                .map(|s| s.len() + std::mem::size_of::<String>())
                .sum(),
            ColumnVector::Bool { values, .. } => values.len() / 8 + 8,
        }
    }
}

#[inline]
fn push_validity(validity: &mut Option<BitSet>, idx: usize, is_null: bool) {
    match validity {
        Some(v) => v.push(!is_null),
        None if is_null => {
            // First NULL: promote to a bitmap with all prior rows valid.
            let mut v = BitSet::all_set(idx);
            v.push(false);
            *validity = Some(v);
        }
        None => {}
    }
}

/// A set of equally long column vectors — the executor's unit of work.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Batch {
    columns: Vec<ColumnVector>,
    len: usize,
}

impl Batch {
    /// Builds a batch from columns (all must have equal length).
    pub fn new(columns: Vec<ColumnVector>) -> Result<Self> {
        let len = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != len) {
            return Err(DbError::InvalidArgument(
                "batch columns have differing lengths".into(),
            ));
        }
        Ok(Batch { columns, len })
    }

    /// An empty batch shaped like `schema`.
    pub fn empty(schema: &Schema) -> Self {
        Batch {
            columns: schema
                .fields()
                .iter()
                .map(|f| ColumnVector::new(f.data_type))
                .collect(),
            len: 0,
        }
    }

    /// Builds a batch from rows, using `schema` to type the columns.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> Result<Self> {
        let mut cols: Vec<ColumnVector> = schema
            .fields()
            .iter()
            .map(|f| ColumnVector::new(f.data_type))
            .collect();
        for row in rows {
            if row.len() != cols.len() {
                return Err(DbError::InvalidArgument(format!(
                    "row arity {} != schema arity {}",
                    row.len(),
                    cols.len()
                )));
            }
            for (c, v) in cols.iter_mut().zip(row.values()) {
                c.push(v)?;
            }
        }
        Batch::new(cols)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column at ordinal `i`.
    pub fn column(&self, i: usize) -> &ColumnVector {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    /// Consumes the batch, returning its columns.
    pub fn into_columns(self) -> Vec<ColumnVector> {
        self.columns
    }

    /// Materializes row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value_at(i)).collect())
    }

    /// Materializes every row (test/utility path, not the hot path).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Applies a selection vector to every column.
    pub fn take(&self, sel: &[u32]) -> Batch {
        Batch {
            columns: self.columns.iter().map(|c| c.take(sel)).collect(),
            len: sel.len(),
        }
    }

    /// Keeps only the given column ordinals, in order.
    pub fn project(&self, indexes: &[usize]) -> Batch {
        Batch {
            columns: indexes.iter().map(|&i| self.columns[i].clone()).collect(),
            len: self.len,
        }
    }

    /// Vertically concatenates `other` onto `self` (same column shapes).
    pub fn append(&mut self, other: &Batch) -> Result<()> {
        if self.num_columns() != other.num_columns() {
            return Err(DbError::InvalidArgument(
                "appending batches with different column counts".into(),
            ));
        }
        for i in 0..other.len {
            for (c, o) in self.columns.iter_mut().zip(&other.columns) {
                c.push(&o.value_at(i))?;
            }
        }
        self.len += other.len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
            Field::new("c", DataType::Float64),
            Field::new("d", DataType::Bool),
        ])
    }

    #[test]
    fn from_rows_roundtrip() {
        let s = schema();
        let rows = vec![
            Row::new(vec![
                Value::Int(1),
                Value::Str("x".into()),
                Value::Float(0.5),
                Value::Bool(true),
            ]),
            Row::new(vec![Value::Int(2), Value::Null, Value::Null, Value::Null]),
        ];
        let b = Batch::from_rows(&s, &rows).unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn null_promotion_is_lazy() {
        let mut c = ColumnVector::new(DataType::Int64);
        c.push(&Value::Int(1)).unwrap();
        assert!(c.validity().is_none());
        c.push(&Value::Null).unwrap();
        let v = c.validity().unwrap();
        assert!(v.get(0));
        assert!(!v.get(1));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert_eq!(c.value_at(1), Value::Null);
    }

    #[test]
    fn type_errors_on_push() {
        let mut c = ColumnVector::new(DataType::Int64);
        assert!(c.push(&Value::Str("no".into())).is_err());
    }

    #[test]
    fn take_gathers_and_preserves_nulls() {
        let s = Schema::new(vec![Field::new("a", DataType::Int64)]);
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                Row::new(vec![if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Int(i)
                }])
            })
            .collect();
        let b = Batch::from_rows(&s, &rows).unwrap();
        let t = b.take(&[0, 4, 9]);
        assert_eq!(t.row(0)[0], Value::Null);
        assert_eq!(t.row(1)[0], Value::Int(4));
        assert_eq!(t.row(2)[0], Value::Null);
    }

    #[test]
    fn mismatched_columns_rejected() {
        let a = ColumnVector::from_i64(vec![1, 2]);
        let b = ColumnVector::from_i64(vec![1]);
        assert!(Batch::new(vec![a, b]).is_err());
    }

    #[test]
    fn append_batches() {
        let s = Schema::new(vec![Field::new("a", DataType::Int64)]);
        let mut b1 = Batch::from_rows(&s, &[Row::new(vec![Value::Int(1)])]).unwrap();
        let b2 = Batch::from_rows(&s, &[Row::new(vec![Value::Int(2)])]).unwrap();
        b1.append(&b2).unwrap();
        assert_eq!(b1.len(), 2);
        assert_eq!(b1.row(1)[0], Value::Int(2));
    }

    #[test]
    fn bool_vector_roundtrip() {
        let c = ColumnVector::from_bools(&[true, false, true]);
        assert_eq!(c.value_at(0), Value::Bool(true));
        assert_eq!(c.value_at(1), Value::Bool(false));
        let t = c.take(&[2, 1]);
        assert_eq!(t.value_at(0), Value::Bool(true));
        assert_eq!(t.value_at(1), Value::Bool(false));
    }

    #[test]
    fn project_reorders() {
        let s = schema();
        let b = Batch::from_rows(
            &s,
            &[Row::new(vec![
                Value::Int(1),
                Value::Str("x".into()),
                Value::Float(0.5),
                Value::Bool(false),
            ])],
        )
        .unwrap();
        let p = b.project(&[1, 0]);
        assert_eq!(p.num_columns(), 2);
        assert_eq!(p.row(0)[0], Value::Str("x".into()));
    }
}
