//! Deterministic fault injection.
//!
//! Production operational-analytics engines are defined by how they behave
//! under failure — Kudu's Raft replication, HANA's delta-merge recovery —
//! and the only way to *test* that behaviour repeatably is to make the
//! failures themselves deterministic. This module provides the substrate:
//! a [`FaultInjector`] holding a registry of **named fault points**
//! (`"wal.torn_write"`, `"raft.drop_msg"`, …) that production code probes
//! via [`FaultInjector::should_fire`] / [`FaultInjector::fire_value`].
//!
//! Determinism story: every fault point owns an independent SplitMix64
//! stream seeded with `master_seed ^ fxhash(point_name)`. Decisions at a
//! point therefore depend only on (seed, point, probe ordinal) — never on
//! wall-clock time, thread interleaving at *other* points, or HashMap
//! iteration order. A chaos run that probes a point N times makes the
//! same N decisions every run with the same seed; the [`decision log`]
//! (`FaultInjector::decisions`) lets tests assert exactly that.
//!
//! The injector is plumbed explicitly (`Arc<FaultInjector>` handles), not
//! through a process-global: the same process hosts many simulated nodes,
//! and per-node injectors are what make "crash node 2 only" expressible.
//! [`FaultInjector::disabled`] is a zero-cost default — every probe on it
//! is a single atomic load of an empty registry flag.

use crate::hash::hash_bytes;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Canonical fault-point names, so call sites and tests can't drift apart.
pub mod points {
    /// Torn WAL write: persist only a prefix of an appended record.
    pub const WAL_TORN_WRITE: &str = "wal.torn_write";
    /// Flip a byte of a WAL record *after* its CRC was computed.
    pub const WAL_CRC_CORRUPT: &str = "wal.crc_corrupt";
    /// Drop a Raft message in the transport.
    pub const RAFT_DROP_MSG: &str = "raft.drop_msg";
    /// Delay a Raft message by a bounded number of milliseconds.
    pub const RAFT_DELAY_MSG: &str = "raft.delay_msg";
    /// Deliver a Raft message twice.
    pub const RAFT_DUP_MSG: &str = "raft.dup_msg";
    /// Kill a node's event loop (crash without warning).
    pub const RAFT_CRASH_NODE: &str = "raft.crash_node";
    /// Abort a delta→main merge partway through.
    pub const MERGE_ABORT: &str = "merge.abort";
    /// Fail a scatter-gather partition read.
    pub const SCAN_PARTITION_FAIL: &str = "scan.partition_fail";
    /// Fail a morsel dispatch in the parallel executor; the worker retries
    /// the boundary a bounded number of times before surfacing an error.
    pub const EXEC_MORSEL_FAIL: &str = "exec.morsel_fail";
    /// Fail a morsel of the partitioned hash-join build; the worker
    /// retries the boundary like [`EXEC_MORSEL_FAIL`].
    pub const EXEC_JOIN_BUILD_FAIL: &str = "exec.join_build_fail";
    /// Fail a [`crate::mem::MemoryBudget`] reservation as if the pool
    /// were exhausted; operators must degrade (spill) or surface a typed
    /// `ResourceExhausted`, never panic.
    pub const MEM_RESERVE_FAIL: &str = "mem.reserve_fail";
    /// Crash the 2PC coordinator after at least one participant prepared
    /// but before the decision is logged — the classic in-doubt window.
    pub const TWOPC_COORD_CRASH_AFTER_PREPARE: &str = "twopc.coord_crash_after_prepare";
    /// Crash the 2PC coordinator after its decision is durably logged but
    /// before every participant learned it.
    pub const TWOPC_COORD_CRASH_AFTER_DECISION: &str = "twopc.coord_crash_after_decision";
    /// Kill a participant replica's event loop right after it applies a
    /// PREPARE (prepared-but-undecided state held across the crash).
    pub const TWOPC_PARTICIPANT_CRASH_PREPARED: &str = "twopc.participant_crash_prepared";
    /// Drop a COMMIT/ABORT decision message to a participant; the
    /// coordinator must retry until every shard has the decision.
    pub const TWOPC_DECISION_MSG_DROP: &str = "twopc.decision_msg_drop";
    /// Fail a follower-side Raft snapshot installation; the leader retries
    /// and, where the entries are still in its log, falls back to plain
    /// log replication.
    pub const RAFT_SNAPSHOT_INSTALL_FAIL: &str = "raft.snapshot_install_fail";
    /// Corrupt a column-page read from a segment page file (one payload
    /// byte flipped *after* the page checksum was computed). The buffer
    /// manager's CRC verification must catch it and surface a typed
    /// `Corruption` error — never a panic, never silent bad data.
    pub const STORAGE_PAGE_READ_FAIL: &str = "storage.page_read_fail";
    /// Simulate an eviction race in the buffer pool: the clock hand's
    /// chosen victim looks unpinned, but a concurrent pin lands before
    /// the eviction completes. The evictor must re-check under the lock,
    /// skip the frame, and keep searching (or surface a typed
    /// `ResourceExhausted` when nothing evictable remains).
    pub const BUFFER_EVICT_RACE: &str = "buffer.evict_race";

    /// Forces the fused operate-on-compressed aggregate kernels to take
    /// the scalar decode-then-evaluate fallback at a row-group boundary.
    /// Fired per (segment, row group); fused and fallback paths must
    /// produce byte-identical results, which the chaos suite asserts.
    pub const EXEC_KERNEL_FALLBACK: &str = "exec.kernel_fallback";

    /// Crash the background freeze pass *after* the frozen replacement
    /// segment's page file was published (tmp+rename) but *before* the
    /// in-memory swap. The table must keep serving the old representation
    /// unchanged — never a torn mix — and the orphaned page file must be
    /// reclaimed (Drop on the unpublished segment, purge-at-open after a
    /// real crash).
    pub const STORAGE_FREEZE_CRASH: &str = "storage.freeze_crash";

    /// Fail an accepted connection before its session starts (as if the
    /// accept syscall or the initial socket setup failed). The accept loop
    /// must drop that one connection and keep serving; the client sees a
    /// reset and retries with backoff.
    pub const NET_ACCEPT_FAIL: &str = "net.accept_fail";
    /// Tear a wire-protocol frame mid-read: the reader observes a
    /// truncated or corrupted payload. CRC verification must catch it and
    /// surface a typed `Corruption` — never a hang, never garbage rows.
    pub const NET_READ_TORN: &str = "net.read_torn";
    /// Write only a prefix of a response frame, then fail the connection.
    /// The peer must detect the torn frame (short read / CRC mismatch)
    /// and the server must release every resource the dead connection
    /// held (admission tickets, governor bytes, open transactions).
    pub const NET_WRITE_PARTIAL: &str = "net.write_partial";
    /// Drop the connection abruptly while a query is in flight (after the
    /// request was read, before its response is written). Open
    /// transactions must roll back; no admission ticket or governor byte
    /// may leak.
    pub const NET_CONN_DROP_MID_QUERY: &str = "net.conn_drop_mid_query";
}

/// Configuration of one named fault point.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Probability in `[0, 1]` that an armed probe fires.
    pub probability: f64,
    /// Remaining number of times the point may fire; `None` = unlimited.
    pub remaining: Option<u64>,
    /// Number of initial probes to let pass before arming (lets a scenario
    /// say "fail the 5th append, not the 1st").
    pub arm_after: u64,
}

impl FaultPoint {
    /// A point that fires on every armed probe.
    pub fn always() -> Self {
        FaultPoint {
            probability: 1.0,
            remaining: None,
            arm_after: 0,
        }
    }

    /// A point that fires exactly `n` times, then disarms.
    pub fn times(n: u64) -> Self {
        FaultPoint {
            probability: 1.0,
            remaining: Some(n),
            arm_after: 0,
        }
    }

    /// A point that fires with probability `p` on each probe.
    pub fn with_probability(p: f64) -> Self {
        FaultPoint {
            probability: p,
            remaining: None,
            arm_after: 0,
        }
    }

    /// Skips the first `n` probes before arming.
    pub fn after(mut self, n: u64) -> Self {
        self.arm_after = n;
        self
    }

    /// Caps the number of firings.
    pub fn limit(mut self, n: u64) -> Self {
        self.remaining = Some(n);
        self
    }
}

/// One recorded probe decision, for reproducibility assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The fault point probed.
    pub point: &'static str,
    /// Probe ordinal at that point (0-based).
    pub probe: u64,
    /// Whether the fault fired.
    pub fired: bool,
}

/// Deterministic SplitMix64 stream; one per fault point.
#[derive(Debug)]
struct PointState {
    cfg: FaultPoint,
    rng_state: u64,
    probes: u64,
    fired: u64,
}

impl PointState {
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seeded registry of named fault points. Cheap to probe when empty;
/// deterministic when armed. See the module docs for the seeding scheme.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    /// Fast path: true iff no point has ever been armed.
    empty: AtomicBool,
    /// BTreeMap so Debug output and iteration are deterministic too.
    points: Mutex<BTreeMap<&'static str, PointState>>,
    decisions: Mutex<Vec<Decision>>,
    total_fired: AtomicU64,
}

impl FaultInjector {
    /// A seeded injector with no points armed yet.
    pub fn new(seed: u64) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            seed,
            empty: AtomicBool::new(true),
            points: Mutex::new(BTreeMap::new()),
            decisions: Mutex::new(Vec::new()),
            total_fired: AtomicU64::new(0),
        })
    }

    /// The inert injector production code uses by default: every probe is
    /// one relaxed atomic load.
    pub fn disabled() -> Arc<FaultInjector> {
        FaultInjector::new(0)
    }

    /// The master seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Arms (or re-arms) a named fault point.
    pub fn arm(&self, point: &'static str, cfg: FaultPoint) {
        let mut points = self.points.lock().unwrap_or_else(PoisonError::into_inner);
        points.insert(
            point,
            PointState {
                cfg,
                // Independent stream per point: decisions at one point are
                // unaffected by probe counts at any other.
                rng_state: self.seed ^ hash_bytes(point.as_bytes()),
                probes: 0,
                fired: 0,
            },
        );
        self.empty.store(false, Ordering::Release);
    }

    /// Disarms a point; later probes never fire.
    pub fn disarm(&self, point: &'static str) {
        let mut points = self.points.lock().unwrap_or_else(PoisonError::into_inner);
        points.remove(point);
        if points.is_empty() {
            self.empty.store(true, Ordering::Release);
        }
    }

    /// Probes `point`; true means the caller should inject its fault.
    pub fn should_fire(&self, point: &'static str) -> bool {
        self.fire_value(point).is_some()
    }

    /// Probes `point`; on fire, returns a deterministic payload u64 the
    /// caller can use to parameterize the fault (byte offset to tear at,
    /// milliseconds to delay, …). `None` means proceed normally.
    pub fn fire_value(&self, point: &'static str) -> Option<u64> {
        if self.empty.load(Ordering::Acquire) {
            return None;
        }
        let mut points = self.points.lock().unwrap_or_else(PoisonError::into_inner);
        let st = points.get_mut(point)?;
        let probe = st.probes;
        st.probes += 1;
        let armed = probe >= st.cfg.arm_after && st.cfg.remaining.is_none_or(|r| r > st.fired);
        let fired = armed && st.next_f64() < st.cfg.probability;
        let payload = if fired { Some(st.next_u64()) } else { None };
        if fired {
            st.fired += 1;
        }
        drop(points);
        self.decisions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Decision {
                point,
                probe,
                fired,
            });
        if fired {
            self.total_fired.fetch_add(1, Ordering::Relaxed);
        }
        payload
    }

    /// Full decision log, in probe order (global order across points is
    /// only meaningful for single-threaded schedules; per-point order is
    /// always meaningful).
    pub fn decisions(&self) -> Vec<Decision> {
        self.decisions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Decision log filtered to one point (deterministic for any schedule).
    pub fn decisions_at(&self, point: &'static str) -> Vec<Decision> {
        self.decisions()
            .into_iter()
            .filter(|d| d.point == point)
            .collect()
    }

    /// Total faults fired across all points.
    pub fn fired_count(&self) -> u64 {
        self.total_fired.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let f = FaultInjector::disabled();
        for _ in 0..1000 {
            assert!(!f.should_fire(points::WAL_TORN_WRITE));
        }
        assert!(f.decisions().is_empty(), "disabled probes are not logged");
    }

    #[test]
    fn always_fires_until_disarmed() {
        let f = FaultInjector::new(1);
        f.arm(points::MERGE_ABORT, FaultPoint::always());
        assert!(f.should_fire(points::MERGE_ABORT));
        f.disarm(points::MERGE_ABORT);
        assert!(!f.should_fire(points::MERGE_ABORT));
    }

    #[test]
    fn times_limits_firings() {
        let f = FaultInjector::new(2);
        f.arm(points::RAFT_DROP_MSG, FaultPoint::times(3));
        let fired = (0..10).filter(|_| f.should_fire(points::RAFT_DROP_MSG)).count();
        assert_eq!(fired, 3);
        // The first three probes fire, the rest pass.
        let log = f.decisions_at(points::RAFT_DROP_MSG);
        assert!(log[..3].iter().all(|d| d.fired));
        assert!(log[3..].iter().all(|d| !d.fired));
    }

    #[test]
    fn arm_after_skips_initial_probes() {
        let f = FaultInjector::new(3);
        f.arm(points::WAL_TORN_WRITE, FaultPoint::always().after(2).limit(1));
        let fired: Vec<bool> = (0..5).map(|_| f.should_fire(points::WAL_TORN_WRITE)).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| {
            let f = FaultInjector::new(seed);
            f.arm(points::RAFT_DROP_MSG, FaultPoint::with_probability(0.3));
            f.arm(points::RAFT_DELAY_MSG, FaultPoint::with_probability(0.5));
            for _ in 0..200 {
                f.fire_value(points::RAFT_DROP_MSG);
                f.fire_value(points::RAFT_DELAY_MSG);
            }
            f.decisions()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn points_have_independent_streams() {
        // Probing point A must not change point B's decisions.
        let solo = {
            let f = FaultInjector::new(7);
            f.arm(points::RAFT_DROP_MSG, FaultPoint::with_probability(0.5));
            (0..100).map(|_| f.should_fire(points::RAFT_DROP_MSG)).collect::<Vec<_>>()
        };
        let interleaved = {
            let f = FaultInjector::new(7);
            f.arm(points::RAFT_DROP_MSG, FaultPoint::with_probability(0.5));
            f.arm(points::RAFT_DELAY_MSG, FaultPoint::with_probability(0.5));
            (0..100)
                .map(|_| {
                    f.should_fire(points::RAFT_DELAY_MSG);
                    f.should_fire(points::RAFT_DROP_MSG)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn fire_value_payload_is_deterministic() {
        let payloads = |seed| {
            let f = FaultInjector::new(seed);
            f.arm(points::WAL_TORN_WRITE, FaultPoint::always());
            (0..10).filter_map(|_| f.fire_value(points::WAL_TORN_WRITE)).collect::<Vec<_>>()
        };
        assert_eq!(payloads(9), payloads(9));
    }
}
