//! # oltap-client
//!
//! Blocking wire-protocol client for oltapdb. Two layers:
//!
//! * [`Client`] — one TCP connection: handshake, send a query, collect
//!   the streamed response (Schema / Rows… / Done, or a typed error).
//!   Torn frames surface as [`DbError::Corruption`], a dead peer as
//!   [`DbError::Io`]; the caller decides whether to reconnect.
//! * [`RetryClient`] — reconnecting wrapper: transport failures rebuild
//!   the connection, retryable server errors ([`DbError::Unavailable`],
//!   [`DbError::ResourceExhausted`], [`DbError::DeadlineExceeded`])
//!   back off with jitter via [`oltap_common::retry::Backoff`], honoring
//!   the server's retry-after hint as a floor. Everything else is
//!   returned to the caller unchanged — a retry loop must never mask a
//!   real error.

use oltap_common::retry::Backoff;
use oltap_common::{CancellationToken, DbError, Field, Result, Row};
use oltap_server::wire::{frame_bytes, read_frame, DoneKind, Request, Response, PROTOCOL_VERSION};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A completed statement as seen by the client.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// Result schema (SELECTs only).
    pub schema: Vec<Field>,
    /// Result rows (SELECTs only).
    pub rows: Vec<Row>,
    /// What kind of completion the server reported.
    pub done: Option<DoneKind>,
    /// Row count: result rows for SELECTs, affected rows for DML.
    pub count: u64,
    /// Completion note (transaction-control statements).
    pub note: String,
}

/// One blocking wire-protocol connection.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Retry-after hint from the most recent server error (milliseconds;
    /// 0 when the server offered none).
    last_retry_after_ms: u64,
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with_timeouts(addr, Duration::from_secs(10), Duration::from_secs(10))
    }

    /// Connects with explicit per-frame read/write deadlines.
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| DbError::InvalidArgument("no address resolved".into()))?;
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        let mut client = Client {
            stream,
            last_retry_after_ms: 0,
        };
        client.send(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            Response::HelloAck { .. } => Ok(client),
            Response::Error {
                error,
                retry_after_ms,
            } => {
                client.last_retry_after_ms = retry_after_ms;
                Err(error)
            }
            other => Err(DbError::Corruption(format!(
                "unexpected handshake response {other:?}"
            ))),
        }
    }

    /// The server's most recent retry-after hint in milliseconds (0 when
    /// none was offered). Valid after an `Err` return.
    pub fn last_retry_after_ms(&self) -> u64 {
        self.last_retry_after_ms
    }

    /// Runs one statement and collects the full response stream.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome> {
        self.send(&Request::Query { sql: sql.into() })?;
        let mut out = QueryOutcome::default();
        loop {
            match self.recv()? {
                Response::Schema { fields } => out.schema = fields,
                Response::Rows { rows } => out.rows.extend(rows),
                Response::Done { kind, count, note } => {
                    out.done = Some(kind);
                    out.count = count;
                    out.note = note;
                    return Ok(out);
                }
                Response::Error {
                    error,
                    retry_after_ms,
                } => {
                    self.last_retry_after_ms = retry_after_ms;
                    return Err(error);
                }
                Response::HelloAck { .. } => {
                    return Err(DbError::Corruption(
                        "unexpected HelloAck mid-stream".into(),
                    ))
                }
            }
        }
    }

    /// Sends an orderly close; the server releases the session promptly
    /// instead of waiting for the idle timeout.
    pub fn close(mut self) -> Result<()> {
        self.send(&Request::Close)
    }

    fn send(&mut self, req: &Request) -> Result<()> {
        self.stream.write_all(&frame_bytes(&req.encode()))?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response> {
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(&payload),
            None => Err(DbError::Io("server closed the connection".into())),
        }
    }
}

/// Retry policy knobs for [`RetryClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Backoff base delay.
    pub base: Duration,
    /// Backoff cap (before jitter).
    pub cap: Duration,
    /// Give up after this many consecutive failed attempts of one query.
    pub max_attempts: u32,
    /// Per-frame read/write deadlines for the underlying connections.
    pub io_timeout: Duration,
    /// Deterministic jitter seed (tests); 0 keeps the default.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_attempts: 8,
            io_timeout: Duration::from_secs(10),
            seed: 0,
        }
    }
}

/// Reconnecting client: transport errors rebuild the connection,
/// retryable server errors back off (honoring the server's retry-after
/// hint as a floor), everything else propagates.
///
/// Note for writers: a retried DML statement may have committed before
/// the connection died, so retrying an INSERT can legitimately surface
/// [`DbError::DuplicateKey`] — callers doing exactly-once writes should
/// use keyed idempotent statements and treat that as success.
pub struct RetryClient {
    addr: String,
    cfg: RetryConfig,
    conn: Option<Client>,
    backoff: Backoff,
    cancel: CancellationToken,
    reconnects: u64,
    retries: u64,
}

impl RetryClient {
    /// Creates a lazily-connecting retry client.
    pub fn new(addr: impl Into<String>, cfg: RetryConfig) -> RetryClient {
        let mut backoff = Backoff::new(cfg.base, cfg.cap);
        if cfg.seed != 0 {
            backoff = backoff.seeded(cfg.seed);
        }
        RetryClient {
            addr: addr.into(),
            cfg,
            conn: None,
            backoff,
            cancel: CancellationToken::none(),
            reconnects: 0,
            retries: 0,
        }
    }

    /// Installs a cancellation token observed during backoff sleeps, so
    /// a caller can abort a retry loop promptly.
    pub fn set_cancel(&mut self, cancel: CancellationToken) {
        self.cancel = cancel;
    }

    /// Connections rebuilt so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Backoff retries taken so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Runs one statement, reconnecting and retrying per policy.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome> {
        let mut last_err: Option<DbError> = None;
        for _ in 0..self.cfg.max_attempts.max(1) {
            self.cancel.check()?;
            let conn = match self.ensure_connected() {
                Ok(c) => c,
                Err(e) => {
                    if !retryable(&e) {
                        return Err(e);
                    }
                    self.retries += 1;
                    last_err = Some(e);
                    self.backoff
                        .sleep_cancellable(&self.cancel, Duration::ZERO)?;
                    continue;
                }
            };
            match conn.query(sql) {
                Ok(out) => {
                    self.backoff.reset();
                    return Ok(out);
                }
                Err(e) => {
                    let floor = Duration::from_millis(conn.last_retry_after_ms());
                    // Transport/framing damage poisons the connection:
                    // the stream may be desynchronized, so rebuild it.
                    if matches!(e, DbError::Io(_) | DbError::Corruption(_)) {
                        self.conn = None;
                    }
                    if !retryable(&e) {
                        return Err(e);
                    }
                    self.retries += 1;
                    last_err = Some(e);
                    self.backoff.sleep_cancellable(&self.cancel, floor)?;
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            DbError::Execution("retry loop exhausted without an error".into())
        }))
    }

    fn ensure_connected(&mut self) -> Result<&mut Client> {
        if self.conn.is_none() {
            let c = Client::connect_with_timeouts(
                self.addr.as_str(),
                self.cfg.io_timeout,
                self.cfg.io_timeout,
            )?;
            self.reconnects += 1;
            self.conn = Some(c);
        }
        Ok(self.conn.as_mut().expect("connection just ensured"))
    }
}

/// Whether an error is worth retrying at the client edge: transient
/// transport damage (reconnect) or explicit server pushback (back off).
fn retryable(e: &DbError) -> bool {
    matches!(
        e,
        DbError::Io(_)
            | DbError::Corruption(_)
            | DbError::Unavailable { .. }
            | DbError::ResourceExhausted { .. }
            | DbError::DeadlineExceeded(_)
    )
}
