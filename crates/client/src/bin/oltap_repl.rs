//! Minimal line-oriented REPL against a running `oltap_server`.
//!
//! ```text
//! oltap_repl [--addr HOST:PORT]
//! ```
//!
//! Reads one SQL statement per line from stdin, prints rows as
//! tab-separated values. Uses the reconnecting [`RetryClient`], so the
//! server can be bounced mid-session and the REPL keeps working.

use oltap_client::{RetryClient, RetryConfig};
use std::io::{BufRead, Write};

fn main() {
    let mut addr = "127.0.0.1:5433".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs HOST:PORT"),
            "--help" | "-h" => {
                eprintln!("usage: oltap_repl [--addr HOST:PORT]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    let mut client = RetryClient::new(addr.clone(), RetryConfig::default());
    eprintln!("connected target {addr}; one SQL statement per line, Ctrl-D to exit");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("oltap> ");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql.eq_ignore_ascii_case("exit") || sql.eq_ignore_ascii_case("quit") {
            break;
        }
        match client.query(sql) {
            Ok(res) => {
                if !res.schema.is_empty() {
                    let header: Vec<&str> =
                        res.schema.iter().map(|f| f.name.as_str()).collect();
                    let _ = writeln!(out, "{}", header.join("\t"));
                    for row in &res.rows {
                        let cells: Vec<String> =
                            row.values().iter().map(|v| v.to_string()).collect();
                        let _ = writeln!(out, "{}", cells.join("\t"));
                    }
                    let _ = writeln!(out, "({} rows)", res.count);
                } else {
                    let _ = writeln!(
                        out,
                        "ok: {:?} count={} {}",
                        res.done, res.count, res.note
                    );
                }
                let _ = out.flush();
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
