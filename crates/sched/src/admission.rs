//! Query-level admission control for mixed OLTP + OLAP workloads.
//!
//! The worker pool ([`crate::pool`]) already prioritizes *tasks*: OLTP
//! morsels dispatch before queued OLAP morsels. That is not enough under
//! overload — once a large analytic query is running, its morsels are in
//! flight and transactional latency collapses anyway. The systems the
//! tutorial surveys therefore gate at *query* granularity (HANA workload
//! classes, DB2 WLM, Psaroudakis et al.): an analytic query must be
//! **admitted** before it may execute at all.
//!
//! The [`AdmissionController`] implements that gate:
//!
//! * **OLTP is always admitted immediately** — transactions never queue
//!   behind analytics.
//! * **OLAP concurrency is capped.** The cap has two levels: a generous
//!   [`AdmissionConfig::max_olap`] when the system is quiet, and a
//!   throttled [`AdmissionConfig::throttled_olap`] that engages while the
//!   number of in-flight OLTP queries is at or above
//!   [`AdmissionConfig::pressure_threshold`] — Psaroudakis-style OLAP
//!   throttling under OLTP pressure.
//! * **Queue-with-timeout, not hard rejection.** An OLAP query that finds
//!   no free slot waits on a condition variable; it only fails — with a
//!   typed [`DbError::ResourceExhausted`] — if no slot frees within
//!   [`AdmissionConfig::queue_timeout`].
//!
//! Admission is RAII: [`AdmissionController::admit`] returns an
//! [`AdmissionTicket`] whose `Drop` releases the slot and wakes waiters,
//! so an early return (error, cancellation, panic unwind) can never leak
//! a slot.

use oltap_common::mem::WorkloadClass;
use oltap_common::{DbError, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Admission policy knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Concurrent OLAP queries admitted when OLTP pressure is low.
    pub max_olap: usize,
    /// Concurrent OLAP queries admitted while the throttle is engaged.
    pub throttled_olap: usize,
    /// In-flight OLTP query count at or above which the throttle engages.
    pub pressure_threshold: usize,
    /// How long an OLAP query may wait for a slot before admission fails.
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_olap: 4,
            throttled_olap: 1,
            pressure_threshold: 2,
            queue_timeout: Duration::from_secs(5),
        }
    }
}

#[derive(Default)]
struct Gate {
    running_oltp: usize,
    running_olap: usize,
    waiting_olap: usize,
}

/// Counters the overload experiment (E15) reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// OLTP queries admitted (always immediate).
    pub oltp_admitted: u64,
    /// OLAP queries admitted, whether immediately or after queueing.
    pub olap_admitted: u64,
    /// OLAP admissions that had to queue before getting a slot.
    pub olap_queued: u64,
    /// OLAP admissions that timed out waiting for a slot.
    pub olap_timeouts: u64,
    /// Admission decisions taken while the OLTP-pressure throttle was
    /// engaged.
    pub throttled_decisions: u64,
}

/// The query-granularity admission gate (see module docs).
pub struct AdmissionController {
    cfg: AdmissionConfig,
    gate: Mutex<Gate>,
    cv: Condvar,
    oltp_admitted: AtomicU64,
    olap_admitted: AtomicU64,
    olap_queued: AtomicU64,
    olap_timeouts: AtomicU64,
    throttled_decisions: AtomicU64,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.gate.lock();
        f.debug_struct("AdmissionController")
            .field("running_oltp", &g.running_oltp)
            .field("running_olap", &g.running_olap)
            .field("waiting_olap", &g.waiting_olap)
            .finish()
    }
}

impl AdmissionController {
    /// A controller enforcing `cfg`.
    pub fn new(cfg: AdmissionConfig) -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            cfg,
            gate: Mutex::new(Gate::default()),
            cv: Condvar::new(),
            oltp_admitted: AtomicU64::new(0),
            olap_admitted: AtomicU64::new(0),
            olap_queued: AtomicU64::new(0),
            olap_timeouts: AtomicU64::new(0),
            throttled_decisions: AtomicU64::new(0),
        })
    }

    /// The effective OLAP cap for the current OLTP pressure.
    fn olap_cap(&self, gate: &Gate) -> usize {
        if gate.running_oltp >= self.cfg.pressure_threshold {
            self.throttled_decisions.fetch_add(1, Ordering::Relaxed);
            self.cfg.throttled_olap
        } else {
            self.cfg.max_olap
        }
    }

    /// Admits one query of `class`, blocking (up to the configured queue
    /// timeout) when the OLAP cap is reached. OLTP never blocks.
    pub fn admit(self: &Arc<Self>, class: WorkloadClass) -> Result<AdmissionTicket> {
        match class {
            WorkloadClass::Oltp => {
                self.gate.lock().running_oltp += 1;
                self.oltp_admitted.fetch_add(1, Ordering::Relaxed);
                Ok(AdmissionTicket {
                    ctrl: Arc::clone(self),
                    class,
                })
            }
            WorkloadClass::Olap => {
                let deadline = Instant::now() + self.cfg.queue_timeout;
                let mut gate = self.gate.lock();
                let mut queued = false;
                while gate.running_olap >= self.olap_cap(&gate) {
                    if !queued {
                        queued = true;
                        self.olap_queued.fetch_add(1, Ordering::Relaxed);
                    }
                    gate.waiting_olap += 1;
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    let timed_out = self.cv.wait_for(&mut gate, remaining).timed_out();
                    gate.waiting_olap -= 1;
                    if timed_out && gate.running_olap >= self.olap_cap(&gate) {
                        self.olap_timeouts.fetch_add(1, Ordering::Relaxed);
                        let cap = self.olap_cap(&gate);
                        return Err(DbError::ResourceExhausted {
                            class: "olap-admission".to_string(),
                            requested: 1,
                            available: cap.saturating_sub(gate.running_olap) as u64,
                        });
                    }
                }
                gate.running_olap += 1;
                self.olap_admitted.fetch_add(1, Ordering::Relaxed);
                Ok(AdmissionTicket {
                    ctrl: Arc::clone(self),
                    class,
                })
            }
        }
    }

    /// In-flight query counts (oltp, olap).
    pub fn running(&self) -> (usize, usize) {
        let g = self.gate.lock();
        (g.running_oltp, g.running_olap)
    }

    /// OLAP queries currently queued for a slot (edge-shedding signal).
    pub fn queue_depth(&self) -> usize {
        self.gate.lock().waiting_olap
    }

    /// How long a rejected client should wait before retrying, derived
    /// from the current queue depth: an empty queue suggests a quick
    /// retry, a deep one spreads retries across multiple queue-timeout
    /// windows so the shed load does not reconverge as a thundering
    /// herd. The network front end attaches this to every typed
    /// rejection it sends.
    pub fn retry_after_hint(&self) -> Duration {
        let depth = self.queue_depth() as u32;
        let base = Duration::from_millis(25);
        (base + self.cfg.queue_timeout.saturating_mul(depth) / 4)
            .min(Duration::from_secs(5))
    }

    /// Aggregate counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            oltp_admitted: self.oltp_admitted.load(Ordering::Relaxed),
            olap_admitted: self.olap_admitted.load(Ordering::Relaxed),
            olap_queued: self.olap_queued.load(Ordering::Relaxed),
            olap_timeouts: self.olap_timeouts.load(Ordering::Relaxed),
            throttled_decisions: self.throttled_decisions.load(Ordering::Relaxed),
        }
    }

    fn release(&self, class: WorkloadClass) {
        let mut gate = self.gate.lock();
        match class {
            WorkloadClass::Oltp => gate.running_oltp = gate.running_oltp.saturating_sub(1),
            WorkloadClass::Olap => gate.running_olap = gate.running_olap.saturating_sub(1),
        }
        // An OLAP slot freed, or OLTP pressure dropped (which may raise
        // the effective cap): wake every waiter and let them re-check.
        drop(gate);
        self.cv.notify_all();
    }
}

/// RAII admission slot; dropping it releases the slot and wakes waiters.
#[derive(Debug)]
pub struct AdmissionTicket {
    ctrl: Arc<AdmissionController>,
    class: WorkloadClass,
}

impl AdmissionTicket {
    /// The class this ticket was admitted under.
    pub fn class(&self) -> WorkloadClass {
        self.class
    }
}

impl Drop for AdmissionTicket {
    fn drop(&mut self) {
        self.ctrl.release(self.class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> AdmissionConfig {
        AdmissionConfig {
            max_olap: 2,
            throttled_olap: 1,
            pressure_threshold: 1,
            queue_timeout: Duration::from_millis(50),
        }
    }

    #[test]
    fn oltp_always_admitted() {
        let ctrl = AdmissionController::new(quick_cfg());
        let tickets: Vec<_> = (0..16)
            .map(|_| ctrl.admit(WorkloadClass::Oltp).unwrap())
            .collect();
        assert_eq!(ctrl.running(), (16, 0));
        drop(tickets);
        assert_eq!(ctrl.running(), (0, 0));
        assert_eq!(ctrl.stats().oltp_admitted, 16);
    }

    #[test]
    fn olap_over_cap_times_out_with_typed_error() {
        let ctrl = AdmissionController::new(quick_cfg());
        let _a = ctrl.admit(WorkloadClass::Olap).unwrap();
        let _b = ctrl.admit(WorkloadClass::Olap).unwrap();
        let err = ctrl.admit(WorkloadClass::Olap).unwrap_err();
        assert!(
            matches!(err, DbError::ResourceExhausted { ref class, .. } if class == "olap-admission"),
            "{err:?}"
        );
        assert_eq!(ctrl.stats().olap_timeouts, 1);
    }

    #[test]
    fn releasing_a_slot_admits_a_queued_query() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            queue_timeout: Duration::from_secs(5),
            ..quick_cfg()
        });
        let a = ctrl.admit(WorkloadClass::Olap).unwrap();
        let _b = ctrl.admit(WorkloadClass::Olap).unwrap();
        let ctrl2 = Arc::clone(&ctrl);
        let waiter = std::thread::spawn(move || ctrl2.admit(WorkloadClass::Olap).map(|_| ()));
        // Let the waiter reach the queue, then free a slot.
        while ctrl.gate.lock().waiting_olap == 0 {
            std::thread::yield_now();
        }
        drop(a);
        waiter.join().unwrap().unwrap();
        assert_eq!(ctrl.stats().olap_queued, 1);
        assert_eq!(ctrl.stats().olap_timeouts, 0);
    }

    #[test]
    fn retry_after_hint_grows_with_queue_depth() {
        let ctrl = AdmissionController::new(AdmissionConfig {
            queue_timeout: Duration::from_secs(5),
            ..quick_cfg()
        });
        let empty = ctrl.retry_after_hint();
        let _a = ctrl.admit(WorkloadClass::Olap).unwrap();
        let _b = ctrl.admit(WorkloadClass::Olap).unwrap();
        let ctrl2 = Arc::clone(&ctrl);
        let waiter = std::thread::spawn(move || ctrl2.admit(WorkloadClass::Olap).map(|_| ()));
        while ctrl.queue_depth() == 0 {
            std::thread::yield_now();
        }
        let queued = ctrl.retry_after_hint();
        assert!(queued > empty, "{queued:?} vs {empty:?}");
        assert!(queued <= Duration::from_secs(5), "hint is capped");
        drop(_a);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn oltp_pressure_throttles_olap_cap() {
        let ctrl = AdmissionController::new(quick_cfg());
        // Quiet system: two OLAP slots.
        let a = ctrl.admit(WorkloadClass::Olap).unwrap();
        drop(ctrl.admit(WorkloadClass::Olap).unwrap());
        // Engage pressure (threshold = 1 in-flight OLTP query): the cap
        // drops to 1, already filled by `a`.
        let _t = ctrl.admit(WorkloadClass::Oltp).unwrap();
        let err = ctrl.admit(WorkloadClass::Olap).unwrap_err();
        assert!(matches!(err, DbError::ResourceExhausted { .. }), "{err:?}");
        assert!(ctrl.stats().throttled_decisions > 0);
        drop(a);
        // Pressure gone after OLTP finishes + slot free: admitted again.
        drop(_t);
        ctrl.admit(WorkloadClass::Olap).unwrap();
    }
}
