//! The worker pool with workload classes and admission control.
//!
//! Mixed OLTP + OLAP workloads interfere: a handful of long analytic
//! queries can monopolize every core and collapse transaction throughput.
//! The systems the tutorial surveys manage this with workload classes,
//! priorities, and admission control (Psaroudakis et al. \[32\], HANA's
//! workload classes, DB2's WLM). This pool implements the essential
//! mechanism set:
//!
//! * Two queues: OLTP (latency-critical) and OLAP (throughput), with OLTP
//!   always dispatched first.
//! * An **OLAP admission limit**: at most `olap_limit` analytic tasks run
//!   concurrently, reserving workers for transactional bursts.
//! * Counters for queue waits and completions, which the mixed-workload
//!   experiment (E7) reports.

use oltap_common::CancellationToken;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

// The workload-class enum is canonical in `oltap-common::mem` (the memory
// governor partitions its pool by the same two classes); the scheduler
// re-exports it so task dispatch and memory accounting share one vocabulary.
pub use oltap_common::mem::WorkloadClass;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueuedJob {
    job: Job,
    class: WorkloadClass,
    enqueued: Instant,
    /// Admission token: if tripped before dispatch, the job is shed.
    cancel: Option<CancellationToken>,
    /// Notified instead of `job` when the task is shed.
    on_shed: Option<Job>,
}

#[derive(Default)]
struct Queues {
    oltp: VecDeque<QueuedJob>,
    olap: VecDeque<QueuedJob>,
    running_olap: usize,
}

/// Aggregate pool statistics (nanosecond totals are summed across tasks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Completed OLTP tasks.
    pub oltp_done: u64,
    /// Completed OLAP tasks.
    pub olap_done: u64,
    /// Total OLTP queue-wait nanoseconds.
    pub oltp_wait_ns: u64,
    /// Total OLAP queue-wait nanoseconds.
    pub olap_wait_ns: u64,
    /// Tasks shed at dispatch because their cancellation token had
    /// tripped while they queued (admission control under overload).
    pub shed: u64,
}

struct PoolInner {
    queues: Mutex<Queues>,
    cv: Condvar,
    stop: AtomicBool,
    olap_limit: AtomicU64,
    oltp_done: AtomicU64,
    olap_done: AtomicU64,
    oltp_wait_ns: AtomicU64,
    olap_wait_ns: AtomicU64,
    shed: AtomicU64,
}

/// A fixed-size worker pool with class-aware dispatch.
pub struct WorkerPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Starts `workers` threads; at most `olap_limit` OLAP tasks run
    /// concurrently (0 = OLAP fully starved; `workers` = no limit).
    pub fn new(workers: usize, olap_limit: usize) -> Self {
        let inner = Arc::new(PoolInner {
            queues: Mutex::new(Queues::default()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            olap_limit: AtomicU64::new(olap_limit as u64),
            oltp_done: AtomicU64::new(0),
            olap_done: AtomicU64::new(0),
            oltp_wait_ns: AtomicU64::new(0),
            olap_wait_ns: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("oltap-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool {
            inner,
            workers: handles,
        }
    }

    /// Adjusts the OLAP admission limit at runtime (the workload manager's
    /// throttle knob).
    pub fn set_olap_limit(&self, limit: usize) {
        self.inner.olap_limit.store(limit as u64, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// The current OLAP admission limit.
    pub fn olap_limit(&self) -> usize {
        self.inner.olap_limit.load(Ordering::SeqCst) as usize
    }

    /// Submits a task; the returned receiver fires when it finishes.
    pub fn submit<F: FnOnce() + Send + 'static>(
        &self,
        class: WorkloadClass,
        job: F,
    ) -> mpsc::Receiver<()> {
        let (tx, rx) = mpsc::channel();
        let wrapped: Job = Box::new(move || {
            job();
            let _ = tx.send(());
        });
        self.enqueue(QueuedJob {
            job: wrapped,
            class,
            enqueued: Instant::now(),
            cancel: None,
            on_shed: None,
        });
        rx
    }

    /// Submits a task guarded by `token`. If the token trips (explicit
    /// cancel or expired deadline) while the task is still queued, the
    /// task is *shed*: it never runs, the receiver yields `false`, and
    /// [`PoolStats::shed`] is incremented. A task that dispatches before
    /// the token trips runs normally and the receiver yields `true`.
    pub fn submit_cancellable<F: FnOnce() + Send + 'static>(
        &self,
        class: WorkloadClass,
        token: CancellationToken,
        job: F,
    ) -> mpsc::Receiver<bool> {
        let (tx, rx) = mpsc::channel();
        let tx_shed = tx.clone();
        let wrapped: Job = Box::new(move || {
            job();
            let _ = tx.send(true);
        });
        let on_shed: Job = Box::new(move || {
            let _ = tx_shed.send(false);
        });
        self.enqueue(QueuedJob {
            job: wrapped,
            class,
            enqueued: Instant::now(),
            cancel: Some(token),
            on_shed: Some(on_shed),
        });
        rx
    }

    fn enqueue(&self, item: QueuedJob) {
        {
            let mut q = self.inner.queues.lock();
            match item.class {
                WorkloadClass::Oltp => q.oltp.push_back(item),
                WorkloadClass::Olap => q.olap.push_back(item),
            }
        }
        self.inner.cv.notify_one();
    }

    /// Submits and waits.
    pub fn run<F: FnOnce() + Send + 'static>(&self, class: WorkloadClass, job: F) {
        let _ = self.submit(class, job).recv();
    }

    /// Length of the two queues (oltp, olap).
    pub fn queue_lengths(&self) -> (usize, usize) {
        let q = self.inner.queues.lock();
        (q.oltp.len(), q.olap.len())
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            oltp_done: self.inner.oltp_done.load(Ordering::Relaxed),
            olap_done: self.inner.olap_done.load(Ordering::Relaxed),
            oltp_wait_ns: self.inner.oltp_wait_ns.load(Ordering::Relaxed),
            olap_wait_ns: self.inner.olap_wait_ns.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: Arc<PoolInner>) {
    loop {
        let (item, was_olap) = {
            let mut q = inner.queues.lock();
            loop {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                // OLTP always first.
                if let Some(item) = q.oltp.pop_front() {
                    break (item, false);
                }
                let limit = inner.olap_limit.load(Ordering::SeqCst) as usize;
                if q.running_olap < limit {
                    if let Some(item) = q.olap.pop_front() {
                        q.running_olap += 1;
                        break (item, true);
                    }
                }
                inner.cv.wait(&mut q);
            }
        };
        // Admission check at dispatch: a task whose token tripped while it
        // queued is shed instead of run — expired deadlines never consume
        // a worker.
        if item.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            inner.shed.fetch_add(1, Ordering::Relaxed);
            if let Some(shed) = item.on_shed {
                shed();
            }
            if was_olap {
                let mut q = inner.queues.lock();
                q.running_olap -= 1;
                inner.cv.notify_one();
            }
            continue;
        }
        let wait_ns = item.enqueued.elapsed().as_nanos() as u64;
        match item.class {
            WorkloadClass::Oltp => {
                inner.oltp_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
            }
            WorkloadClass::Olap => {
                inner.olap_wait_ns.fetch_add(wait_ns, Ordering::Relaxed);
            }
        }
        (item.job)();
        match item.class {
            WorkloadClass::Oltp => inner.oltp_done.fetch_add(1, Ordering::Relaxed),
            WorkloadClass::Olap => inner.olap_done.fetch_add(1, Ordering::Relaxed),
        };
        if was_olap {
            let mut q = inner.queues.lock();
            q.running_olap -= 1;
            // A slot freed: wake a waiting worker.
            inner.cv.notify_one();
        }
    }
}

/// An adaptive workload manager: watches the OLTP queue and throttles OLAP
/// admission when transactions start queueing (a miniature of the
/// policies in \[32\]).
pub struct WorkloadManager {
    pool: Arc<WorkerPool>,
    max_olap: usize,
    min_olap: usize,
    /// OLTP queue length above which OLAP is throttled down.
    pressure_threshold: usize,
}

impl WorkloadManager {
    /// Creates a manager over `pool` oscillating OLAP admission between
    /// `min_olap` and `max_olap`.
    pub fn new(pool: Arc<WorkerPool>, min_olap: usize, max_olap: usize, pressure_threshold: usize) -> Self {
        WorkloadManager {
            pool,
            max_olap,
            min_olap,
            pressure_threshold,
        }
    }

    /// One control step: inspect queues, adjust the OLAP limit. Call this
    /// periodically (the experiments call it between workload slices).
    pub fn tick(&self) {
        let (oltp_q, _) = self.pool.queue_lengths();
        let cur = self.pool.olap_limit();
        if oltp_q > self.pressure_threshold && cur > self.min_olap {
            self.pool.set_olap_limit(cur - 1);
        } else if oltp_q == 0 && cur < self.max_olap {
            self.pool.set_olap_limit(cur + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    /// A two-phase handshake for deterministic scheduling tests: the task
    /// calls [`Gate::enter`] (signalling it has been dispatched, then
    /// blocking), and the test calls [`Gate::wait_entered`] /
    /// [`Gate::release`] to observe and control it. No sleeps, no races.
    struct Gate {
        started_tx: mpsc::Sender<()>,
        started_rx: mpsc::Receiver<()>,
        release_tx: mpsc::Sender<()>,
        release_rx: Mutex<Option<mpsc::Receiver<()>>>,
    }

    /// The task-side half: signals start, then blocks until released.
    struct GateEntry {
        started: mpsc::Sender<()>,
        release: mpsc::Receiver<()>,
    }

    impl GateEntry {
        fn enter(&self) {
            let _ = self.started.send(());
            let _ = self.release.recv();
        }
    }

    impl Gate {
        fn new() -> Gate {
            let (started_tx, started_rx) = mpsc::channel();
            let (release_tx, release_rx) = mpsc::channel();
            Gate {
                started_tx,
                started_rx,
                release_tx,
                release_rx: Mutex::new(Some(release_rx)),
            }
        }

        /// The handle to move into the pooled task (single use).
        fn entry(&self) -> GateEntry {
            GateEntry {
                started: self.started_tx.clone(),
                release: self.release_rx.lock().take().expect("entry taken twice"),
            }
        }

        /// Blocks until the task has been dispatched and is inside
        /// [`GateEntry::enter`].
        fn wait_entered(&self) {
            self.started_rx.recv().expect("task never started");
        }

        fn release(&self) {
            let _ = self.release_tx.send(());
        }
    }

    #[test]
    fn runs_submitted_tasks() {
        let pool = WorkerPool::new(4, 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let rxs: Vec<_> = (0..100)
            .map(|i| {
                let c = Arc::clone(&counter);
                pool.submit(
                    if i % 2 == 0 {
                        WorkloadClass::Oltp
                    } else {
                        WorkloadClass::Olap
                    },
                    move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    },
                )
            })
            .collect();
        for rx in rxs {
            rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        let s = pool.stats();
        assert_eq!(s.oltp_done, 50);
        assert_eq!(s.olap_done, 50);
    }

    #[test]
    fn olap_admission_limit_enforced() {
        let pool = WorkerPool::new(4, 1);
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        // Each task blocks on its gate after bumping the concurrency
        // counter; the test releases them one at a time, so every task is
        // held at its peak-concurrency moment before the next can start.
        let gates: Vec<_> = (0..8).map(|_| Gate::new()).collect();
        let rxs: Vec<_> = gates
            .iter()
            .map(|g| {
                let c = Arc::clone(&concurrent);
                let p = Arc::clone(&peak);
                let entry = g.entry();
                pool.submit(WorkloadClass::Olap, move || {
                    let now = c.fetch_add(1, Ordering::SeqCst) + 1;
                    p.fetch_max(now, Ordering::SeqCst);
                    entry.enter();
                    c.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        // OLAP dispatch is FIFO under limit 1: release in submit order.
        for g in &gates {
            g.wait_entered();
            g.release();
        }
        for rx in rxs {
            rx.recv().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn oltp_bypasses_olap_queue() {
        // One worker, one long OLAP task hogging it, then N OLTP tasks and
        // N more OLAP tasks: every OLTP task must complete before any of
        // the queued OLAP tasks.
        let pool = WorkerPool::new(1, 1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let gate = Gate::new();
        let entry = gate.entry();
        let blocker = pool.submit(WorkloadClass::Olap, move || entry.enter());
        gate.wait_entered(); // the worker is now occupied
        let mut rxs = Vec::new();
        for i in 0..3 {
            let o = Arc::clone(&order);
            rxs.push(pool.submit(WorkloadClass::Olap, move || {
                o.lock().push(format!("olap{i}"));
            }));
        }
        for i in 0..3 {
            let o = Arc::clone(&order);
            rxs.push(pool.submit(WorkloadClass::Oltp, move || {
                o.lock().push(format!("oltp{i}"));
            }));
        }
        gate.release();
        blocker.recv().unwrap();
        for rx in rxs {
            rx.recv().unwrap();
        }
        let order = order.lock();
        let first_olap = order.iter().position(|s| s.starts_with("olap")).unwrap();
        let last_oltp = order
            .iter()
            .rposition(|s| s.starts_with("oltp"))
            .unwrap();
        assert!(
            last_oltp < first_olap,
            "OLTP should preempt queued OLAP: {order:?}"
        );
    }

    #[test]
    fn olap_limit_zero_starves_olap_until_raised() {
        let pool = WorkerPool::new(2, 0);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let rx = pool.submit(WorkloadClass::Olap, move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        // With the limit at 0 no worker may pop the OLAP queue, so the
        // task is provably still queued and unrun — no waiting needed.
        assert_eq!(pool.queue_lengths(), (0, 1));
        assert_eq!(done.load(Ordering::SeqCst), 0);
        assert!(rx.try_recv().is_err());
        pool.set_olap_limit(1);
        rx.recv().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn workload_manager_throttles_under_pressure() {
        let pool = Arc::new(WorkerPool::new(2, 4));
        let mgr = WorkloadManager::new(Arc::clone(&pool), 1, 4, 2);
        // Pin both workers on gated tasks, then flood the OLTP queue: the
        // queued backlog is exact (nothing can drain it) when tick() runs.
        let gates: Vec<_> = (0..2).map(|_| Gate::new()).collect();
        let blockers: Vec<_> = gates
            .iter()
            .map(|g| {
                let entry = g.entry();
                pool.submit(WorkloadClass::Oltp, move || entry.enter())
            })
            .collect();
        for g in &gates {
            g.wait_entered();
        }
        let rxs: Vec<_> = (0..5)
            .map(|_| pool.submit(WorkloadClass::Oltp, || {}))
            .collect();
        assert_eq!(pool.queue_lengths().0, 5);
        let before = pool.olap_limit();
        mgr.tick();
        let after = pool.olap_limit();
        assert!(after < before, "limit should drop: {before} -> {after}");
        for g in &gates {
            g.release();
        }
        for rx in blockers.into_iter().chain(rxs) {
            rx.recv().unwrap();
        }
        // Every receiver fired, so the OLTP queue is drained: recovery.
        assert_eq!(pool.queue_lengths().0, 0);
        mgr.tick();
        assert!(pool.olap_limit() > after);
    }

    #[test]
    fn expired_tasks_are_shed_not_run() {
        let pool = WorkerPool::new(1, 1);
        // Pin the single worker so the doomed task is still queued when
        // its (already-elapsed) deadline is checked at dispatch.
        let gate = Gate::new();
        let entry = gate.entry();
        let blocker = pool.submit(WorkloadClass::Oltp, move || entry.enter());
        gate.wait_entered();
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        let doomed = pool.submit_cancellable(
            WorkloadClass::Olap,
            CancellationToken::with_deadline(Instant::now()),
            move || {
                r2.fetch_add(1, Ordering::SeqCst);
            },
        );
        let r3 = Arc::clone(&ran);
        let healthy = pool.submit_cancellable(
            WorkloadClass::Olap,
            CancellationToken::new(),
            move || {
                r3.fetch_add(1, Ordering::SeqCst);
            },
        );
        gate.release();
        blocker.recv().unwrap();
        assert!(!doomed.recv().unwrap(), "expired task must be shed");
        assert!(healthy.recv().unwrap(), "live task must run");
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(pool.stats().shed, 1);
    }

    #[test]
    fn explicit_cancel_sheds_queued_task() {
        let pool = WorkerPool::new(1, 1);
        let gate = Gate::new();
        let entry = gate.entry();
        let blocker = pool.submit(WorkloadClass::Oltp, move || entry.enter());
        gate.wait_entered();
        let token = CancellationToken::new();
        let rx = pool.submit_cancellable(WorkloadClass::Oltp, token.clone(), || {
            panic!("shed task must never run");
        });
        token.cancel(); // trips while provably still queued
        gate.release();
        blocker.recv().unwrap();
        assert!(!rx.recv().unwrap());
        assert_eq!(pool.stats().shed, 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4, 4);
        pool.run(WorkloadClass::Oltp, || {});
        drop(pool); // must not hang
    }
}
