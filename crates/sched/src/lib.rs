//! # oltap-sched
//!
//! Workload management for mixed OLTP + OLAP workloads and simulated-NUMA
//! placement — the tutorial's "workload management" and "NUMA-awareness"
//! dimensions (§1, \[31, 32\]).
//!
//! * [`pool`] — a class-aware worker pool: OLTP tasks preempt queued OLAP
//!   work, an admission limit bounds concurrent analytics, and an adaptive
//!   [`pool::WorkloadManager`] throttles OLAP when transactions queue.
//! * [`admission`] — query-granularity admission control: OLTP always
//!   admitted, OLAP capped (throttled harder under OLTP pressure) with
//!   queue-with-timeout semantics instead of hard rejection.
//! * [`numa`] — a simulated multi-socket topology with data/task placement
//!   policies and a cost model charging local vs. remote memory accesses.

pub mod admission;
pub mod numa;
pub mod pool;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats, AdmissionTicket};
pub use numa::{DataPlacement, NumaStats, NumaTopology, ScanTask, TaskPlacementPolicy};
pub use pool::{PoolStats, WorkerPool, WorkloadClass, WorkloadManager};
