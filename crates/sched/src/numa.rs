//! Simulated NUMA topology, data placement, and locality-aware scheduling.
//!
//! The tutorial lists NUMA-awareness among the advanced query-processing
//! topics every scale-up operational analytics system must address (§1;
//! Psaroudakis et al. \[31\], Li et al. \[23\]): on a multi-socket machine,
//! touching memory attached to a remote socket costs ~1.5–2× a local
//! access, so both *data placement* (which socket's memory holds which
//! partition) and *task placement* (which socket's cores scan it) matter.
//!
//! **Substitution (documented in DESIGN.md):** this environment has no
//! multi-socket hardware, so the topology is simulated: a declarative
//! [`NumaTopology`] carries per-access-class costs, placements are real
//! data structures, and the scheduler below charges the cost model while
//! executing real scan work. The *decision logic* — the part the cited
//! papers contribute — is identical to what would run on real hardware;
//! only the penalty is injected instead of physical.

use oltap_common::ids::{PartitionId, SocketId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulated multi-socket machine.
#[derive(Debug, Clone, PartialEq)]
pub struct NumaTopology {
    /// Number of sockets (NUMA nodes).
    pub sockets: usize,
    /// Cores per socket (parallelism available per node).
    pub cores_per_socket: usize,
    /// Cost of streaming 1 KiB from socket-local memory, nanoseconds.
    pub local_ns_per_kb: f64,
    /// Cost of streaming 1 KiB from a remote socket, nanoseconds.
    pub remote_ns_per_kb: f64,
}

impl NumaTopology {
    /// A typical 4-socket box: remote accesses cost ~1.8× local (the
    /// ratio reported for 4-socket Ivy Bridge/Haswell systems in \[31\]).
    pub fn four_socket() -> Self {
        NumaTopology {
            sockets: 4,
            cores_per_socket: 8,
            local_ns_per_kb: 60.0,
            remote_ns_per_kb: 108.0,
        }
    }

    /// A 2-socket box.
    pub fn two_socket() -> Self {
        NumaTopology {
            sockets: 2,
            cores_per_socket: 8,
            local_ns_per_kb: 60.0,
            remote_ns_per_kb: 100.0,
        }
    }

    /// Cost in nanoseconds for `kb` KiB accessed from `task_socket` when
    /// the data lives on `data_socket`.
    pub fn access_ns(&self, task_socket: SocketId, data_socket: SocketId, kb: f64) -> f64 {
        if task_socket == data_socket {
            kb * self.local_ns_per_kb
        } else {
            kb * self.remote_ns_per_kb
        }
    }
}

/// Where each partition's memory lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPlacement {
    /// `partition_socket[p]` = socket owning partition `p`.
    pub partition_socket: Vec<SocketId>,
}

impl DataPlacement {
    /// Round-robin placement — the NUMA-aware default (each socket gets an
    /// equal share, and the scheduler can colocate tasks).
    pub fn round_robin(partitions: usize, topology: &NumaTopology) -> Self {
        DataPlacement {
            partition_socket: (0..partitions)
                .map(|p| SocketId((p % topology.sockets) as u64))
                .collect(),
        }
    }

    /// All partitions on one socket — the pathological default of a
    /// first-touch allocation by a single loader thread.
    pub fn single_socket(partitions: usize, socket: SocketId) -> Self {
        DataPlacement {
            partition_socket: vec![socket; partitions],
        }
    }

    /// Uniform random placement (seeded for reproducibility).
    pub fn random(partitions: usize, topology: &NumaTopology, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        DataPlacement {
            partition_socket: (0..partitions)
                .map(|_| SocketId(rng.gen_range(0..topology.sockets) as u64))
                .collect(),
        }
    }

    /// Socket owning partition `p`.
    pub fn socket_of(&self, p: PartitionId) -> SocketId {
        self.partition_socket[p.raw() as usize]
    }
}

/// How scan tasks are assigned to sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPlacementPolicy {
    /// Run each partition's task on the socket that owns its data
    /// (NUMA-aware).
    LocalityAware,
    /// Spread tasks round-robin over sockets ignoring data location.
    RoundRobin,
    /// Random socket per task (seeded).
    Random(u64),
}

/// Accounting of one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NumaStats {
    /// KiB read from task-local memory.
    pub local_kb: f64,
    /// KiB read from remote sockets.
    pub remote_kb: f64,
    /// Simulated makespan in nanoseconds (sockets work in parallel; each
    /// socket's tasks divide over its cores).
    pub makespan_ns: f64,
    /// Sum of per-task costs (total work).
    pub total_work_ns: f64,
}

impl NumaStats {
    /// Fraction of bytes accessed locally.
    pub fn locality(&self) -> f64 {
        let total = self.local_kb + self.remote_kb;
        if total == 0.0 {
            1.0
        } else {
            self.local_kb / total
        }
    }

    /// Simulated scan throughput in KiB per millisecond.
    pub fn throughput_kb_per_ms(&self) -> f64 {
        if self.makespan_ns == 0.0 {
            0.0
        } else {
            (self.local_kb + self.remote_kb) / (self.makespan_ns / 1e6)
        }
    }
}

/// One scan task: read all of partition `partition` (of `kb` KiB).
#[derive(Debug, Clone, Copy)]
pub struct ScanTask {
    /// The partition to scan.
    pub partition: PartitionId,
    /// Partition size in KiB.
    pub kb: f64,
}

/// Simulates executing `tasks` under a data placement and a task-placement
/// policy on `topology`. Each socket's assigned work is divided across its
/// cores; the makespan is the slowest socket.
pub fn simulate_scan(
    topology: &NumaTopology,
    data: &DataPlacement,
    policy: TaskPlacementPolicy,
    tasks: &[ScanTask],
) -> NumaStats {
    let mut socket_work = vec![0.0f64; topology.sockets];
    let mut stats = NumaStats::default();
    let mut rng = match policy {
        TaskPlacementPolicy::Random(seed) => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    for (i, t) in tasks.iter().enumerate() {
        let data_socket = data.socket_of(t.partition);
        let task_socket = match policy {
            TaskPlacementPolicy::LocalityAware => data_socket,
            TaskPlacementPolicy::RoundRobin => SocketId((i % topology.sockets) as u64),
            TaskPlacementPolicy::Random(_) => {
                SocketId(rng.as_mut().unwrap().gen_range(0..topology.sockets) as u64)
            }
        };
        let ns = topology.access_ns(task_socket, data_socket, t.kb);
        socket_work[task_socket.raw() as usize] += ns;
        stats.total_work_ns += ns;
        if task_socket == data_socket {
            stats.local_kb += t.kb;
        } else {
            stats.remote_kb += t.kb;
        }
    }
    stats.makespan_ns = socket_work
        .iter()
        .map(|w| w / topology.cores_per_socket as f64)
        .fold(0.0, f64::max);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: usize, kb: f64) -> Vec<ScanTask> {
        (0..n)
            .map(|p| ScanTask {
                partition: PartitionId(p as u64),
                kb,
            })
            .collect()
    }

    #[test]
    fn locality_aware_is_fully_local() {
        let topo = NumaTopology::four_socket();
        let data = DataPlacement::round_robin(16, &topo);
        let stats = simulate_scan(&topo, &data, TaskPlacementPolicy::LocalityAware, &tasks(16, 1024.0));
        assert_eq!(stats.locality(), 1.0);
        assert_eq!(stats.remote_kb, 0.0);
    }

    #[test]
    fn locality_beats_random_by_cost_ratio() {
        let topo = NumaTopology::four_socket();
        let data = DataPlacement::round_robin(64, &topo);
        let ts = tasks(64, 4096.0);
        let aware = simulate_scan(&topo, &data, TaskPlacementPolicy::LocalityAware, &ts);
        let random = simulate_scan(&topo, &data, TaskPlacementPolicy::Random(7), &ts);
        assert!(aware.makespan_ns < random.makespan_ns);
        // Expected random locality ≈ 1/sockets = 0.25.
        assert!(random.locality() < 0.5);
        // Throughput advantage bounded by the remote/local ratio (1.8×)
        // plus imbalance effects.
        let speedup = random.makespan_ns / aware.makespan_ns;
        assert!(speedup > 1.1, "speedup {speedup}");
    }

    #[test]
    fn single_socket_data_bottlenecks_even_aware_placement() {
        let topo = NumaTopology::four_socket();
        let good = DataPlacement::round_robin(16, &topo);
        let bad = DataPlacement::single_socket(16, SocketId(0));
        let ts = tasks(16, 1024.0);
        let balanced = simulate_scan(&topo, &good, TaskPlacementPolicy::LocalityAware, &ts);
        let skewed = simulate_scan(&topo, &bad, TaskPlacementPolicy::LocalityAware, &ts);
        // All work lands on socket 0: makespan ~4× the balanced case.
        assert!(skewed.makespan_ns > balanced.makespan_ns * 3.0);
    }

    #[test]
    fn round_robin_tasks_on_round_robin_data_align() {
        // With equal partition counts and the same modulus, round-robin
        // task placement happens to be fully local too.
        let topo = NumaTopology::four_socket();
        let data = DataPlacement::round_robin(16, &topo);
        let stats = simulate_scan(&topo, &data, TaskPlacementPolicy::RoundRobin, &tasks(16, 100.0));
        assert_eq!(stats.locality(), 1.0);
    }

    #[test]
    fn access_cost_model() {
        let topo = NumaTopology::two_socket();
        let local = topo.access_ns(SocketId(0), SocketId(0), 10.0);
        let remote = topo.access_ns(SocketId(0), SocketId(1), 10.0);
        assert_eq!(local, 600.0);
        assert_eq!(remote, 1000.0);
    }

    #[test]
    fn random_placement_is_reproducible() {
        let topo = NumaTopology::four_socket();
        let a = DataPlacement::random(32, &topo, 42);
        let b = DataPlacement::random(32, &topo, 42);
        assert_eq!(a, b);
        let c = DataPlacement::random(32, &topo, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_tasks() {
        let topo = NumaTopology::two_socket();
        let data = DataPlacement::round_robin(4, &topo);
        let stats = simulate_scan(&topo, &data, TaskPlacementPolicy::LocalityAware, &[]);
        assert_eq!(stats.makespan_ns, 0.0);
        assert_eq!(stats.locality(), 1.0);
    }
}
