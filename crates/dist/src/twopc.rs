//! Cross-shard atomic commit: two-phase commit where *both* the
//! participants and the coordinator's decision log are Raft-replicated.
//!
//! The classic 2PC availability flaw — a coordinator crash between
//! prepare and decision blocks participants forever — is repaired the way
//! Spanner-style systems do it: the decision is a replicated log record,
//! so any successor coordinator can read it and finish the protocol. The
//! protocol is **presumed abort**: a prepared transaction with *no*
//! decision record is aborted during recovery, so the coordinator never
//! has to log anything before the prepare phase.
//!
//! State machines (see DESIGN.md for the full argument):
//!
//! ```text
//! coordinator:  working → prepared-all → decision logged → delivered → ended
//!                  │            │                │
//!                  └─ crash ────┴─> recovery: no decision record ⇒ ABORT
//!                                              decision record   ⇒ re-deliver
//! participant:  idle → PREPARED (versions pinned, WAL'd) → committed/aborted
//!                           │
//!                           └─ crash ⇒ restart re-stages from log/snapshot,
//!                              stays in doubt until the coordinator resolves
//! ```
//!
//! Chaos hooks: `twopc.coord_crash_after_prepare`,
//! `twopc.coord_crash_after_decision`, `twopc.participant_crash_prepared`,
//! and `twopc.decision_msg_drop` (see [`oltap_common::fault::points`]).

use crate::cluster::{DistributedTable, ShardCmd};
use crate::raft::{RaftConfig, RaftGroup};
use oltap_common::fault::{points, FaultInjector};
use oltap_common::retry::Backoff;
use oltap_common::{DbError, Result, Row};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A record in the replicated coordinator log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordRecord {
    /// A coordinator incarnation's epoch claim (gtxn namespace fence).
    /// The claimed epoch is *not* stored: it is the record's 1-based
    /// ordinal among all `Epoch` records in committed log order, so it
    /// derives from the log itself, never from a possibly-stale read.
    Epoch {
        /// Uniquely identifies which incarnation appended this claim.
        nonce: u64,
    },
    /// The commit decision for `gtxn` — the 2PC commit point.
    Commit {
        /// Global transaction id.
        gtxn: u64,
    },
    /// The abort decision for `gtxn`.
    Abort {
        /// Global transaction id.
        gtxn: u64,
    },
    /// All participants acknowledged the decision; recovery can skip it.
    End {
        /// Global transaction id.
        gtxn: u64,
    },
}

impl CoordRecord {
    /// Serializes the record (tag byte + u64 payload).
    pub fn encode(&self) -> Vec<u8> {
        let (tag, v) = match *self {
            CoordRecord::Epoch { nonce } => (0u8, nonce),
            CoordRecord::Commit { gtxn } => (1, gtxn),
            CoordRecord::Abort { gtxn } => (2, gtxn),
            CoordRecord::End { gtxn } => (3, gtxn),
        };
        let mut buf = Vec::with_capacity(9);
        buf.push(tag);
        buf.extend_from_slice(&v.to_le_bytes());
        buf
    }

    /// Decodes a record produced by [`CoordRecord::encode`].
    pub fn decode(bytes: &[u8]) -> Result<CoordRecord> {
        if bytes.len() != 9 {
            return Err(DbError::Corruption("bad coordinator record length".into()));
        }
        let v = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
        match bytes[0] {
            0 => Ok(CoordRecord::Epoch { nonce: v }),
            1 => Ok(CoordRecord::Commit { gtxn: v }),
            2 => Ok(CoordRecord::Abort { gtxn: v }),
            3 => Ok(CoordRecord::End { gtxn: v }),
            t => Err(DbError::Corruption(format!("bad coordinator tag {t}"))),
        }
    }
}

/// The outcome of a cross-shard transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPcOutcome {
    /// Every shard committed.
    Committed,
    /// Every shard aborted (some participant voted no or was unreachable).
    Aborted,
}

/// What [`TwoPcCoordinator::resolve_in_doubt`] did.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions with a logged decision that was re-delivered.
    pub resumed: Vec<u64>,
    /// Prepared transactions with no decision record, aborted by
    /// presumption.
    pub presumed_aborted: Vec<u64>,
}

/// Cross-shard transaction coordinator backed by a replicated decision
/// log. Cheap to drop and re-[`attach`](Self::attach) — exactly what a
/// crash-restart does: all durable state lives in the Raft group.
pub struct TwoPcCoordinator {
    log: Arc<RaftGroup>,
    epoch: u64,
    seq: AtomicU64,
    faults: Arc<FaultInjector>,
}

/// How long each coordinator-driven step may retry before the txn is
/// declared in doubt.
const STEP_TIMEOUT: Duration = Duration::from_secs(10);

impl TwoPcCoordinator {
    /// Spawns a fresh `replication`-way replicated coordinator log and
    /// attaches to it.
    pub fn new(replication: usize, faults: Arc<FaultInjector>) -> Result<TwoPcCoordinator> {
        let log = Arc::new(RaftGroup::spawn(replication, RaftConfig::default()));
        Self::attach(log, faults)
    }

    /// Attaches a (possibly recovering) coordinator to an existing log:
    /// claims the next epoch so this incarnation's gtxns cannot collide
    /// with ids handed out before a crash — even ones whose prepares are
    /// still floating around un-decided.
    ///
    /// The claim goes through a *committed barrier*: a nonce'd `Epoch`
    /// record is replicated first, and the epoch is then derived from
    /// that record's position among all `Epoch` records in log order.
    /// Deriving it from a replica read instead (e.g. max-seen epoch + 1)
    /// would let two racing incarnations claim the same epoch whenever
    /// the read missed a committed-but-not-yet-applied claim.
    pub fn attach(
        log: Arc<RaftGroup>,
        faults: Arc<FaultInjector>,
    ) -> Result<TwoPcCoordinator> {
        static ATTACH_NONCE: AtomicU64 = AtomicU64::new(1);
        let nonce = ATTACH_NONCE.fetch_add(1, Ordering::SeqCst);
        Self::log_record_to(&log, CoordRecord::Epoch { nonce })?;
        // `log_record_to` returns only after the record is applied on the
        // log leader, whose applied list is the longest — so the re-read
        // below is guaranteed to include our claim and every claim
        // committed before it.
        let mut ordinal = 0u64;
        let mut epoch = None;
        for r in Self::records_of(&log) {
            if let CoordRecord::Epoch { nonce: n } = r {
                ordinal += 1;
                if n == nonce {
                    epoch = Some(ordinal);
                    break;
                }
            }
        }
        let epoch = epoch.ok_or_else(|| {
            DbError::Cluster("epoch claim not visible after commit".into())
        })?;
        Ok(TwoPcCoordinator {
            log,
            epoch,
            seq: AtomicU64::new(0),
            faults,
        })
    }

    /// The replicated coordinator log (share it to simulate a successor
    /// coordinator taking over after a crash).
    pub fn log(&self) -> Arc<RaftGroup> {
        Arc::clone(&self.log)
    }

    /// This incarnation's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Allocates a globally unique transaction id: `epoch << 32 | seq`.
    fn next_gtxn(&self) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        // The epoch fence lives in the high 32 bits; letting seq bleed
        // into them would break cross-incarnation uniqueness.
        assert!(
            seq <= u64::from(u32::MAX),
            "gtxn sequence exhausted for epoch {}: re-attach for a fresh epoch",
            self.epoch
        );
        (self.epoch << 32) | seq
    }

    /// The applied coordinator records, read from the most caught-up
    /// running replica of the log group.
    fn records_of(log: &RaftGroup) -> Vec<CoordRecord> {
        let mut best: Vec<CoordRecord> = Vec::new();
        for (i, node) in log.nodes.iter().enumerate() {
            if !node.is_running() {
                continue;
            }
            let records: Vec<CoordRecord> = log.applied[i]
                .lock()
                .iter()
                .filter_map(|(_, cmd)| CoordRecord::decode(cmd).ok())
                .collect();
            if records.len() > best.len() {
                best = records;
            }
        }
        best
    }

    /// All applied records (recovery + tests).
    pub fn records(&self) -> Vec<CoordRecord> {
        Self::records_of(&self.log)
    }

    /// The logged decision for `gtxn`, if any. The **first** decision
    /// record in log order wins: racing coordinator incarnations may
    /// append a later conflicting record, which every reader ignores, so
    /// all incarnations converge on one outcome.
    pub fn decision_for(&self, gtxn: u64) -> Option<bool> {
        self.records().iter().find_map(|r| match *r {
            CoordRecord::Commit { gtxn: g } if g == gtxn => Some(true),
            CoordRecord::Abort { gtxn: g } if g == gtxn => Some(false),
            _ => None,
        })
    }

    /// Appends a record to the replicated log, retrying across log-group
    /// elections. Returns only once the record is committed and applied
    /// on the log leader — the durability point.
    fn log_record(&self, rec: CoordRecord) -> Result<()> {
        Self::log_record_to(&self.log, rec)
    }

    fn log_record_to(log: &RaftGroup, rec: CoordRecord) -> Result<()> {
        let bytes = rec.encode();
        let deadline = Instant::now() + STEP_TIMEOUT;
        let mut backoff = Backoff::for_cluster();
        loop {
            let leader = log
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.is_running())
                .filter_map(|(i, n)| n.report().map(|rep| (i, rep)))
                .filter(|(_, rep)| rep.role == crate::raft::Role::Leader)
                .max_by_key(|(_, rep)| rep.term)
                .map(|(i, _)| i);
            if let Some(i) = leader {
                if log.nodes[i].propose(bytes.clone()).is_ok() {
                    return Ok(());
                }
            }
            if !backoff.sleep_until_deadline(deadline) {
                return Err(DbError::Cluster(
                    "coordinator log unavailable: decision not durable".into(),
                ));
            }
        }
    }

    /// Makes the decision for `gtxn` durable, **first-writer-wins**
    /// across racing coordinator incarnations: if the log already holds
    /// a decision for `gtxn`, it is adopted and nothing is appended; if
    /// a racer appends between our read and our write, the re-read below
    /// yields whichever record landed first in log order. Either way the
    /// caller must act on the *returned* decision, which may differ from
    /// the one it proposed.
    fn log_decision(&self, gtxn: u64, commit: bool) -> Result<bool> {
        if let Some(existing) = self.decision_for(gtxn) {
            return Ok(existing);
        }
        let rec = if commit {
            CoordRecord::Commit { gtxn }
        } else {
            CoordRecord::Abort { gtxn }
        };
        self.log_record(rec)?;
        Ok(self.decision_for(gtxn).unwrap_or(commit))
    }

    /// Runs a cross-shard atomic commit of `rows` into `table`.
    ///
    /// Phase 1 replicates a `Prepare` through every participant
    /// partition's Raft log and collects votes; the decision is then made
    /// durable in the coordinator log *before* phase 2 delivers it. A
    /// `TxnInDoubt` error models a coordinator crash mid-protocol: the
    /// transaction is neither committed nor aborted until a successor
    /// calls [`resolve_in_doubt`](Self::resolve_in_doubt).
    pub fn commit_rows(
        &self,
        table: &DistributedTable,
        rows: Vec<Row>,
    ) -> Result<TwoPcOutcome> {
        let mut by_part: BTreeMap<usize, Vec<Row>> = BTreeMap::new();
        for row in rows {
            by_part.entry(table.partition_of(&row)?).or_default().push(row);
        }
        if by_part.is_empty() {
            return Ok(TwoPcOutcome::Committed);
        }
        let gtxn = self.next_gtxn();
        let groups = table.groups();

        // Phase 1: prepare every participant; any failure → abort vote.
        // (A participant that never saw the prepare aborts by presumption,
        // so a propose error here is safe to treat as a no vote.)
        let mut all_ok = true;
        for (&p, prows) in &by_part {
            let prepared = groups[p]
                .propose_cmd(
                    &ShardCmd::Prepare {
                        gtxn,
                        rows: prows.clone(),
                    },
                    STEP_TIMEOUT,
                )
                .and_then(|()| groups[p].prepare_outcome(gtxn, STEP_TIMEOUT));
            if !matches!(prepared, Ok(true)) {
                all_ok = false;
                break;
            }
        }

        // Chaos: coordinator dies after prepares, before logging any
        // decision. Recovery must presume abort.
        if self.faults.should_fire(points::TWOPC_COORD_CRASH_AFTER_PREPARE) {
            return Err(DbError::TxnInDoubt { gtxn });
        }

        // Commit point: the decision record is replicated. If this fails
        // the txn stays in doubt (presumed abort on recovery). The
        // *effective* decision may differ from our vote if a successor
        // coordinator raced us and its record landed first — we must
        // deliver and report what the log says, not what we wanted.
        let commit = match self.log_decision(gtxn, all_ok) {
            Ok(c) => c,
            Err(_) => return Err(DbError::TxnInDoubt { gtxn }),
        };

        // Chaos: coordinator dies right after the decision is durable but
        // before delivering it. Recovery must *re-deliver*, not abort.
        if self.faults.should_fire(points::TWOPC_COORD_CRASH_AFTER_DECISION) {
            return Err(DbError::TxnInDoubt { gtxn });
        }

        // Phase 2: deliver the decision to every participant until each
        // acknowledges (applies) it. Lost messages are retried — the
        // decision is idempotent on the participant side.
        self.deliver_decision(table, by_part.keys().copied(), gtxn, commit)?;

        // Forgettable: all participants acked, recovery can skip this txn.
        let _ = self.log_record(CoordRecord::End { gtxn });
        Ok(if commit {
            TwoPcOutcome::Committed
        } else {
            TwoPcOutcome::Aborted
        })
    }

    /// Delivers `Decide` to each listed partition until it has applied an
    /// outcome, retrying with backoff. The `twopc.decision_msg_drop` fault
    /// models the message being lost in flight.
    fn deliver_decision(
        &self,
        table: &DistributedTable,
        parts: impl Iterator<Item = usize>,
        gtxn: u64,
        commit: bool,
    ) -> Result<()> {
        let groups = table.groups();
        for p in parts {
            let deadline = Instant::now() + STEP_TIMEOUT;
            let mut backoff = Backoff::for_cluster();
            loop {
                match groups[p].decided(gtxn) {
                    Some(applied) if applied == commit => break,
                    Some(applied) => {
                        // The participant applied the *opposite* outcome:
                        // a conflicting decision escaped the first-writer
                        // fence. Never report success over a torn commit.
                        return Err(DbError::Cluster(format!(
                            "conflicting 2PC outcomes for gtxn {gtxn}: \
                             delivering commit={commit} but partition {p} \
                             applied commit={applied}"
                        )));
                    }
                    None => {}
                }
                let dropped = self.faults.should_fire(points::TWOPC_DECISION_MSG_DROP);
                if !dropped {
                    let _ = groups[p].propose_cmd(
                        &ShardCmd::Decide { gtxn, commit },
                        Duration::from_secs(2),
                    );
                    if groups[p].decided(gtxn).is_some() {
                        continue; // re-enter the verified check above
                    }
                }
                if !backoff.sleep_until_deadline(deadline) {
                    return Err(DbError::TxnInDoubt { gtxn });
                }
            }
        }
        Ok(())
    }

    /// Finishes every transaction a crashed predecessor left behind.
    ///
    /// Two sources of doubt, two rules:
    /// * A **logged decision without an `End`** is re-delivered to every
    ///   partition (idempotent; partitions that never prepared it just
    ///   record the outcome).
    /// * A **prepared-but-undecided** gtxn reported by some participant's
    ///   WAL is **presumed aborted**: the abort is logged first (so the
    ///   answer is stable if we crash again), then delivered.
    pub fn resolve_in_doubt(&self, table: &DistributedTable) -> Result<RecoveryReport> {
        let records = self.records();
        let mut decisions: BTreeMap<u64, bool> = BTreeMap::new();
        let mut ended: Vec<u64> = Vec::new();
        for r in &records {
            match *r {
                // First decision record wins, matching `decision_for`.
                CoordRecord::Commit { gtxn } => {
                    decisions.entry(gtxn).or_insert(true);
                }
                CoordRecord::Abort { gtxn } => {
                    decisions.entry(gtxn).or_insert(false);
                }
                CoordRecord::End { gtxn } => ended.push(gtxn),
                CoordRecord::Epoch { .. } => {}
            }
        }
        let mut report = RecoveryReport::default();
        let all_parts: Vec<usize> = (0..table.groups().len()).collect();

        // Rule 1: decided but not ended — someone may still be waiting.
        for (&gtxn, &commit) in &decisions {
            if ended.contains(&gtxn) {
                continue;
            }
            self.deliver_decision(table, all_parts.iter().copied(), gtxn, commit)?;
            let _ = self.log_record(CoordRecord::End { gtxn });
            report.resumed.push(gtxn);
        }

        // Rule 2: prepared somewhere, no decision record — presumed abort.
        let mut in_doubt: Vec<u64> = table
            .groups()
            .iter()
            .flat_map(|g| g.in_doubt_gtxns())
            .filter(|g| !decisions.contains_key(g))
            .collect();
        in_doubt.sort_unstable();
        in_doubt.dedup();
        for gtxn in in_doubt {
            // Log the abort *before* delivering: if we crash mid-delivery
            // the next recovery finds a decision, not fresh doubt. A
            // still-running predecessor may have logged a commit since we
            // read the records above — `log_decision` adopts whichever
            // record landed first, so we deliver *its* outcome rather
            // than appending a conflicting abort.
            let commit = self.log_decision(gtxn, false)?;
            self.deliver_decision(table, all_parts.iter().copied(), gtxn, commit)?;
            let _ = self.log_record(CoordRecord::End { gtxn });
            if commit {
                report.resumed.push(gtxn);
            } else {
                report.presumed_aborted.push(gtxn);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::fault::FaultPoint;
    use oltap_common::row;
    use oltap_common::schema::SchemaRef;
    use oltap_common::{DataType, Field, Schema};
    use crate::cluster::ClusterConfig;

    fn schema() -> SchemaRef {
        Arc::new(
            Schema::with_primary_key(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::new("v", DataType::Int64),
                ],
                &["id"],
            )
            .unwrap(),
        )
    }

    fn cluster() -> DistributedTable {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 4,
            raft: RaftConfig::default(),
        };
        DistributedTable::new(schema(), cfg).unwrap()
    }

    fn spread_rows(n: i64) -> Vec<Row> {
        (0..n).map(|i| row![i, i * 10]).collect()
    }

    /// Followers apply decisions asynchronously; wait for every replica's
    /// in-doubt set to drain.
    fn wait_no_doubt(t: &DistributedTable) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while t.groups().iter().any(|g| !g.in_doubt_gtxns().is_empty()) {
            assert!(Instant::now() < deadline, "in-doubt set never drained");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn coord_record_roundtrip() {
        for rec in [
            CoordRecord::Epoch { nonce: 3 },
            CoordRecord::Commit { gtxn: u64::MAX },
            CoordRecord::Abort { gtxn: 0 },
            CoordRecord::End { gtxn: 99 },
        ] {
            assert_eq!(CoordRecord::decode(&rec.encode()).unwrap(), rec);
        }
        assert!(CoordRecord::decode(&[1, 2, 3]).is_err());
        assert!(CoordRecord::decode(&[7, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn cross_shard_commit_lands_on_every_partition() {
        let t = cluster();
        let coord = TwoPcCoordinator::new(3, FaultInjector::disabled()).unwrap();
        let rows = spread_rows(8);
        assert_eq!(
            coord.commit_rows(&t, rows.clone()).unwrap(),
            TwoPcOutcome::Committed
        );
        let mut expect = rows;
        expect.sort();
        assert_eq!(t.collect_all().unwrap(), expect);
        // More than one partition actually participated.
        let touched = (0..8)
            .map(|i| t.partition_of(&row![i as i64, 0i64]).unwrap())
            .collect::<std::collections::BTreeSet<_>>();
        assert!(touched.len() > 1, "test rows all hashed to one partition");
    }

    #[test]
    fn duplicate_key_aborts_all_shards() {
        let t = cluster();
        let coord = TwoPcCoordinator::new(3, FaultInjector::disabled()).unwrap();
        // Pre-insert a row that will collide with the batch on one shard.
        t.insert(row![3i64, 999i64]).unwrap();
        let outcome = coord.commit_rows(&t, spread_rows(8)).unwrap();
        assert_eq!(outcome, TwoPcOutcome::Aborted);
        // Atomicity: *no* row of the batch survives anywhere, only the
        // pre-existing one.
        assert_eq!(t.collect_all().unwrap(), vec![row![3i64, 999i64]]);
    }

    #[test]
    fn successor_coordinator_presumes_abort_without_decision() {
        let faults = FaultInjector::new(0x27C0);
        faults.arm(points::TWOPC_COORD_CRASH_AFTER_PREPARE, FaultPoint::times(1));
        let t = cluster();
        let coord = TwoPcCoordinator::new(3, Arc::clone(&faults)).unwrap();
        let err = coord.commit_rows(&t, spread_rows(6)).unwrap_err();
        assert!(matches!(err, DbError::TxnInDoubt { .. }));
        // Participants hold prepared state...
        assert!(t.groups().iter().any(|g| !g.in_doubt_gtxns().is_empty()));
        // ...until a successor attaches and resolves by presumed abort.
        let log = coord.log();
        drop(coord);
        let coord2 = TwoPcCoordinator::attach(log, FaultInjector::disabled()).unwrap();
        let report = coord2.resolve_in_doubt(&t).unwrap();
        assert_eq!(report.presumed_aborted.len(), 1);
        assert!(report.resumed.is_empty());
        assert_eq!(t.collect_all().unwrap(), Vec::<Row>::new());
        wait_no_doubt(&t);
    }

    #[test]
    fn successor_coordinator_resumes_logged_commit() {
        let faults = FaultInjector::new(0xC0FFEE);
        faults.arm(
            points::TWOPC_COORD_CRASH_AFTER_DECISION,
            FaultPoint::times(1),
        );
        let t = cluster();
        let coord = TwoPcCoordinator::new(3, Arc::clone(&faults)).unwrap();
        let rows = spread_rows(6);
        let err = coord.commit_rows(&t, rows.clone()).unwrap_err();
        let gtxn = match err {
            DbError::TxnInDoubt { gtxn } => gtxn,
            e => panic!("expected TxnInDoubt, got {e:?}"),
        };
        assert_eq!(coord.decision_for(gtxn), Some(true), "decision was logged");
        // Nothing visible yet: prepared but undelivered.
        assert_eq!(t.collect_all().unwrap(), Vec::<Row>::new());
        let log = coord.log();
        drop(coord);
        let coord2 = TwoPcCoordinator::attach(log, FaultInjector::disabled()).unwrap();
        let report = coord2.resolve_in_doubt(&t).unwrap();
        assert_eq!(report.resumed, vec![gtxn]);
        let mut expect = rows;
        expect.sort();
        assert_eq!(t.collect_all().unwrap(), expect, "commit was completed");
    }

    #[test]
    fn decision_log_is_first_writer_wins() {
        let coord = TwoPcCoordinator::new(1, FaultInjector::disabled()).unwrap();
        let gtxn = coord.next_gtxn();
        // A predecessor's abort lands first...
        coord.log_record(CoordRecord::Abort { gtxn }).unwrap();
        // ...so a racing incarnation trying to commit must adopt it.
        assert!(!coord.log_decision(gtxn, true).unwrap());
        assert_eq!(coord.decision_for(gtxn), Some(false));
        // Even if a conflicting record sneaks into the log, every reader
        // still resolves to the first record in log order.
        coord.log_record(CoordRecord::Commit { gtxn }).unwrap();
        assert_eq!(coord.decision_for(gtxn), Some(false));
    }

    #[test]
    fn delivery_surfaces_conflicting_participant_outcome() {
        let t = cluster();
        let coord = TwoPcCoordinator::new(3, FaultInjector::disabled()).unwrap();
        // Partition 0 already applied a commit for gtxn 77; delivering an
        // abort for it must fail loudly, not report success.
        t.groups()[0]
            .propose_cmd(
                &ShardCmd::Decide {
                    gtxn: 77,
                    commit: true,
                },
                Duration::from_secs(10),
            )
            .unwrap();
        let err = coord
            .deliver_decision(&t, std::iter::once(0), 77, false)
            .unwrap_err();
        assert!(matches!(err, DbError::Cluster(_)), "got {err:?}");
    }

    #[test]
    fn racing_attaches_claim_distinct_epochs() {
        let c1 = TwoPcCoordinator::new(1, FaultInjector::disabled()).unwrap();
        let log = c1.log();
        let mut epochs: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let log = Arc::clone(&log);
                    s.spawn(move || {
                        TwoPcCoordinator::attach(log, FaultInjector::disabled())
                            .unwrap()
                            .epoch()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        epochs.push(c1.epoch());
        let uniq: std::collections::BTreeSet<u64> = epochs.iter().copied().collect();
        assert_eq!(uniq.len(), epochs.len(), "epoch collision: {epochs:?}");
    }

    #[test]
    fn epochs_fence_gtxn_namespaces_across_restarts() {
        let c1 = TwoPcCoordinator::new(1, FaultInjector::disabled()).unwrap();
        let g1 = c1.next_gtxn();
        let log = c1.log();
        drop(c1);
        let c2 = TwoPcCoordinator::attach(log, FaultInjector::disabled()).unwrap();
        assert!(c2.epoch() > 1, "successor claims a later epoch");
        let g2 = c2.next_gtxn();
        assert_ne!(g1, g2);
        assert!(g2 > g1, "later epoch dominates the id space");
    }
}
