//! The in-process cluster: partitioned, Raft-replicated tables with
//! scatter-gather query execution.
//!
//! This is the scale-out architecture of the tutorial's §3 systems: data
//! is horizontally partitioned ([`crate::partition`]); each partition is
//! replicated by a Raft group ([`crate::raft`], the Kudu design \[24\]);
//! queries scatter to every partition, compute partial aggregates next to
//! the data, and gather the partials (the Oracle DBIM scale-out / MPP
//! pattern \[27\]).
//!
//! **Substitution:** "nodes" are replica slots within this process and the
//! wire is in-memory channels. Quorum math, leader routing, failure
//! handling, and partial aggregation are all real; only deployment is
//! simulated (see DESIGN.md).

use crate::partition::Partitioner;
use crate::raft::{ApplyFn, Network, RaftConfig, RaftNode, Role};
use oltap_common::fault::{points, FaultInjector};
use oltap_common::ids::{NodeId, PartitionId, TxnId};
use oltap_common::retry::Backoff;
use oltap_common::schema::SchemaRef;
use oltap_common::{DbError, Result, Row};
use oltap_storage::{DeltaMainTable, ScanPredicate};
use oltap_txn::wal::{decode_row, encode_row};
use oltap_txn::TransactionManager;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Duration;

const NOBODY: TxnId = TxnId(u64::MAX - 4);

/// Swappable replica storage: the table + transaction manager the Raft
/// apply function writes into. Held behind a lock so a crash-restart can
/// *wipe* the replica (simulating loss of the machine's data disk) and
/// rebuild it purely from the Raft log — the re-applied entries land in
/// the fresh table.
pub struct ReplicaStore {
    schema: SchemaRef,
    inner: RwLock<(Arc<DeltaMainTable>, Arc<TransactionManager>)>,
}

impl ReplicaStore {
    fn new(schema: SchemaRef) -> Arc<ReplicaStore> {
        let table = Arc::new(DeltaMainTable::new(Arc::clone(&schema)));
        let mgr = Arc::new(TransactionManager::new());
        Arc::new(ReplicaStore {
            schema,
            inner: RwLock::new((table, mgr)),
        })
    }

    /// The current table (snapshot of the swappable slot).
    pub fn table(&self) -> Arc<DeltaMainTable> {
        Arc::clone(&self.inner.read().0)
    }

    /// The current transaction manager.
    pub fn mgr(&self) -> Arc<TransactionManager> {
        Arc::clone(&self.inner.read().1)
    }

    /// Drops all local state, replacing table and manager with empty ones.
    /// The next Raft re-apply pass repopulates from the log.
    pub fn wipe(&self) {
        let table = Arc::new(DeltaMainTable::new(Arc::clone(&self.schema)));
        let mgr = Arc::new(TransactionManager::new());
        *self.inner.write() = (table, mgr);
    }

    /// Applies one replicated command (called from the Raft apply fn).
    fn apply(&self, cmd: &[u8]) {
        if let Ok(row) = decode_row(cmd) {
            let (table, mgr) = {
                let g = self.inner.read();
                (Arc::clone(&g.0), Arc::clone(&g.1))
            };
            let tx = mgr.begin();
            // Replicated commands are already committed cluster-wide;
            // local conflicts cannot occur because all writes flow
            // through the same log. Duplicate keys appear only during
            // re-apply after restart and are safely skipped.
            if table.insert(&tx, row).is_ok() {
                let _ = tx.commit();
            }
        }
    }
}

/// One replica of one partition: swappable local storage fed by the
/// partition's Raft log.
pub struct Replica {
    /// The replica's storage slot (wipe-able for rebuild tests).
    pub store: Arc<ReplicaStore>,
    /// The Raft node driving this replica.
    pub raft: Arc<RaftNode>,
}

impl Replica {
    /// The current local table.
    pub fn table(&self) -> Arc<DeltaMainTable> {
        self.store.table()
    }

    /// The current transaction manager.
    pub fn mgr(&self) -> Arc<TransactionManager> {
        self.store.mgr()
    }
}

/// One partition: a Raft group of replicas.
pub struct PartitionGroup {
    /// The partition id.
    pub id: PartitionId,
    /// The cluster-node indexes hosting the replicas.
    pub members: Vec<usize>,
    /// The replicas, positionally matching `members`.
    pub replicas: Vec<Replica>,
    /// The group's network (failure injection).
    pub network: Arc<Network>,
}

impl PartitionGroup {
    fn current_leader(&self) -> Option<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.raft.is_running())
            .filter_map(|(i, r)| {
                r.raft
                    .report()
                    .filter(|rep| rep.role == Role::Leader)
                    .map(|rep| (i, rep.term))
            })
            .max_by_key(|&(_, term)| term)
            .map(|(i, _)| i)
    }

    /// Index (into `replicas`) of the current leader, waiting up to
    /// `timeout` for an election to settle. Polls with exponential
    /// backoff + jitter rather than a fixed-interval spin, so a stalled
    /// election doesn't keep a client thread hot.
    pub fn leader_index(&self, timeout: Duration) -> Result<usize> {
        let deadline = std::time::Instant::now() + timeout;
        let mut backoff = Backoff::for_cluster();
        loop {
            if let Some(i) = self.current_leader() {
                return Ok(i);
            }
            if !backoff.sleep_until_deadline(deadline) {
                return Err(DbError::Cluster(format!(
                    "no leader for partition {}",
                    self.id
                )));
            }
        }
    }

    /// Best-effort read target: the leader if one exists, otherwise — the
    /// degraded-read path — the running replica with the highest commit
    /// index. Returns `(replica_index, degraded)`. A degraded read is
    /// *not* linearizable (it may miss entries committed elsewhere) but
    /// keeps analytics available while the partition has no quorum.
    pub fn read_index(&self, leader_timeout: Duration) -> Result<(usize, bool)> {
        if let Ok(i) = self.leader_index(leader_timeout) {
            return Ok((i, false));
        }
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.raft.is_running())
            .filter_map(|(i, r)| r.raft.report().map(|rep| (i, rep.commit_index)))
            .max_by_key(|&(_, ci)| ci)
            .map(|(i, _)| (i, true))
            .ok_or_else(|| {
                DbError::Cluster(format!("no running replica for partition {}", self.id))
            })
    }

    /// Proposes a row insert through the leader, retrying across
    /// elections with exponential backoff.
    pub fn replicate_insert(&self, row: &Row, timeout: Duration) -> Result<()> {
        let cmd = encode_row(row);
        let deadline = std::time::Instant::now() + timeout;
        let mut backoff = Backoff::for_cluster();
        loop {
            let leader = self.leader_index(deadline.saturating_duration_since(
                std::time::Instant::now(),
            ))?;
            match self.replicas[leader].raft.propose(cmd.clone()) {
                Ok(_) => return Ok(()),
                Err(_) if backoff.sleep_until_deadline(deadline) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Cluster shape.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Replicas per partition (Raft group size; odd values recommended).
    pub replication: usize,
    /// Number of partitions.
    pub partitions: usize,
    /// Raft timing.
    pub raft: RaftConfig,
}

impl ClusterConfig {
    /// A small default: 3 nodes, RF=3, 6 partitions.
    pub fn small() -> Self {
        ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 6,
            raft: RaftConfig::default(),
        }
    }
}

/// A partitioned, replicated, queryable table.
pub struct DistributedTable {
    schema: SchemaRef,
    partitioner: Partitioner,
    groups: Vec<PartitionGroup>,
    config: ClusterConfig,
    faults: Arc<FaultInjector>,
}

impl DistributedTable {
    /// Builds the cluster: one Raft group per partition, replicas placed
    /// round-robin over nodes.
    pub fn new(schema: SchemaRef, config: ClusterConfig) -> Result<Self> {
        Self::new_with_faults(schema, config, FaultInjector::disabled())
    }

    /// Builds the cluster with a fault injector shared by every replica's
    /// transport (`raft.*` points) and the scatter-gather read path
    /// (`scan.partition_fail`). Cross-node probe interleaving makes the
    /// `raft.*` decision *order* timing-dependent at this scope — safety
    /// invariants must hold on every schedule; for strictly replayable
    /// message-level schedules use [`crate::raft::RaftGroup::spawn_with_faults`]
    /// with per-node injectors.
    pub fn new_with_faults(
        schema: SchemaRef,
        config: ClusterConfig,
        faults: Arc<FaultInjector>,
    ) -> Result<Self> {
        if config.replication > config.nodes {
            return Err(DbError::InvalidArgument(
                "replication factor exceeds node count".into(),
            ));
        }
        let partitioner = Partitioner::hash(config.partitions)?;
        let mut groups = Vec::with_capacity(config.partitions);
        for p in 0..config.partitions {
            let members: Vec<usize> = (0..config.replication)
                .map(|r| (p + r) % config.nodes)
                .collect();
            let network = Arc::new(Network::new());
            let ids: Vec<NodeId> = members.iter().map(|&m| NodeId(m as u64)).collect();
            let mut replicas = Vec::with_capacity(members.len());
            for &id in &ids {
                let store = ReplicaStore::new(Arc::clone(&schema));
                let s2 = Arc::clone(&store);
                let apply: ApplyFn = Arc::new(move |_idx, cmd| s2.apply(cmd));
                replicas.push(Replica {
                    store,
                    raft: RaftNode::spawn_with_faults(
                        id,
                        ids.clone(),
                        Arc::clone(&network),
                        config.raft,
                        apply,
                        Arc::clone(&faults),
                    ),
                });
            }
            groups.push(PartitionGroup {
                id: PartitionId(p as u64),
                members,
                replicas,
                network,
            });
        }
        Ok(DistributedTable {
            schema,
            partitioner,
            groups,
            config,
            faults,
        })
    }

    /// The fault injector wired into this cluster.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The partition groups.
    pub fn groups(&self) -> &[PartitionGroup] {
        &self.groups
    }

    /// Routes and replicates an insert (durable once a quorum of the
    /// partition's replicas has the log entry).
    pub fn insert(&self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        let key = if self.schema.has_primary_key() {
            self.schema.key_of(&row)
        } else {
            row.clone()
        };
        let p = self.partitioner.partition_of(&key);
        self.groups[p.raw() as usize].replicate_insert(&row, Duration::from_secs(10))
    }

    /// One partition's partial aggregate, with per-partition retry: a
    /// failed scan (injected via `scan.partition_fail` or a transient
    /// leader gap) is retried with exponential backoff before the whole
    /// query is failed. Falls back to a degraded (non-linearizable) read
    /// from the best surviving replica if the partition has no leader.
    fn partition_aggregate(
        &self,
        g: &PartitionGroup,
        pred: &ScanPredicate,
        agg_column: usize,
    ) -> Result<(u64, i64)> {
        let mut backoff = Backoff::for_cluster();
        let mut last_err = None;
        for attempt in 0..4 {
            if attempt > 0 {
                backoff.sleep();
            }
            if self.faults.should_fire(points::SCAN_PARTITION_FAIL) {
                last_err = Some(DbError::FaultInjected(format!(
                    "scan.partition_fail on partition {}",
                    g.id
                )));
                continue;
            }
            let (idx, _degraded) = match g.read_index(Duration::from_secs(5)) {
                Ok(x) => x,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            let r = &g.replicas[idx];
            let (table, mgr) = (r.table(), r.mgr());
            match table.scan(&[agg_column], pred, mgr.now(), NOBODY, 4096) {
                Ok(batches) => {
                    let mut count = 0u64;
                    let mut sum = 0i64;
                    for b in &batches {
                        count += b.len() as u64;
                        let col = b.column(0);
                        for i in 0..b.len() {
                            if col.is_valid(i) {
                                if let oltap_common::Value::Int(x) = col.value_at(i) {
                                    sum = sum.wrapping_add(x);
                                }
                            }
                        }
                    }
                    return Ok((count, sum));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            DbError::Cluster(format!("partition {} unavailable", g.id))
        }))
    }

    /// Scatter-gather filtered aggregate:
    /// `SELECT count(*), sum(col) WHERE pred`, computed as partials on
    /// each partition's leader replica and combined.
    pub fn scan_aggregate(
        &self,
        pred: &ScanPredicate,
        agg_column: usize,
    ) -> Result<(u64, i64)> {
        let partials: Result<Vec<(u64, i64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .groups
                .iter()
                .map(|g| scope.spawn(move || self.partition_aggregate(g, pred, agg_column)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter task panicked"))
                .collect()
        });
        let partials = partials?;
        Ok(partials
            .into_iter()
            .fold((0, 0), |(c, s), (pc, ps)| (c + pc, s.wrapping_add(ps))))
    }

    /// Collects every visible row (test oracle; sorts by primary key).
    /// Uses the degraded-read path, so it stays available without quorum.
    pub fn collect_all(&self) -> Result<Vec<Row>> {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        let mut rows = Vec::new();
        for g in &self.groups {
            let (idx, _degraded) = g.read_index(Duration::from_secs(5))?;
            let r = &g.replicas[idx];
            let (table, mgr) = (r.table(), r.mgr());
            for b in table.scan(&all, &ScanPredicate::all(), mgr.now(), NOBODY, 4096)? {
                rows.extend(b.to_rows());
            }
        }
        rows.sort();
        Ok(rows)
    }

    /// Crashes every replica hosted on cluster node `node`.
    pub fn crash_node(&self, node: usize) {
        for g in &self.groups {
            for (i, &m) in g.members.iter().enumerate() {
                if m == node {
                    g.replicas[i].raft.crash();
                }
            }
        }
    }

    /// Restarts every replica hosted on cluster node `node`.
    pub fn restart_node(&self, node: usize) {
        for g in &self.groups {
            for (i, &m) in g.members.iter().enumerate() {
                if m == node {
                    g.replicas[i].raft.restart();
                }
            }
        }
    }

    /// Restarts every replica on `node` after *wiping* its local storage
    /// (the machine came back with its Raft log but an empty data disk).
    /// The restarted Raft workers re-apply the whole log into the fresh
    /// tables, so the node converges back to the replicated state.
    pub fn restart_node_rebuilt(&self, node: usize) {
        for g in &self.groups {
            for (i, &m) in g.members.iter().enumerate() {
                if m == node {
                    g.replicas[i].store.wipe();
                    g.replicas[i].raft.restart();
                }
            }
        }
    }

    /// Waits until every partition's replicas have applied the same number
    /// of entries (quiesce helper for tests).
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let converged = self.groups.iter().all(|g| {
                let counts: Vec<usize> = g
                    .replicas
                    .iter()
                    .filter(|r| r.raft.is_running())
                    .map(|r| r.table().row_count_estimate())
                    .collect();
                counts.windows(2).all(|w| w[0] == w[1])
            });
            if converged {
                return true;
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::row;
    use oltap_common::{DataType, Field, Schema, Value};
    use oltap_storage::CmpOp;

    fn schema() -> SchemaRef {
        Arc::new(
            Schema::with_primary_key(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::new("v", DataType::Int64),
                ],
                &["id"],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_aggregate() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..60 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        let (count, sum) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 60);
        assert_eq!(sum, 60);
    }

    #[test]
    fn matches_single_node_oracle() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        let local = DeltaMainTable::new(schema());
        let mgr: Arc<TransactionManager> = Arc::new(TransactionManager::new());
        for i in 0..40 {
            let r = row![i as i64, (i % 7) as i64];
            t.insert(r.clone()).unwrap();
            let tx = mgr.begin();
            local.insert(&tx, r).unwrap();
            tx.commit().unwrap();
        }
        let pred = ScanPredicate::single(1, CmpOp::Ge, Value::Int(3));
        let (dc, ds) = t.scan_aggregate(&pred, 1).unwrap();
        let batches = local
            .scan(&[1], &pred, mgr.now(), TxnId(u64::MAX - 5), 4096)
            .unwrap();
        let lc: usize = batches.iter().map(|b| b.len()).sum();
        let ls: i64 = batches
            .iter()
            .flat_map(|b| b.to_rows())
            .map(|r| r[0].as_int().unwrap())
            .sum();
        assert_eq!(dc as usize, lc);
        assert_eq!(ds, ls);
    }

    #[test]
    fn rows_partition_consistently() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..30 {
            t.insert(row![i as i64, i as i64]).unwrap();
        }
        let rows = t.collect_all().unwrap();
        assert_eq!(rows.len(), 30);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[29][0], Value::Int(29));
    }

    #[test]
    fn replicas_converge() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..20 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        assert!(t.wait_converged(Duration::from_secs(10)));
        // Every replica of every partition holds identical data.
        for g in t.groups() {
            let all: Vec<usize> = vec![0, 1];
            let mut views: Vec<Vec<Row>> = Vec::new();
            for r in &g.replicas {
                let mut rows: Vec<Row> = r
                    .table()
                    .scan(&all, &ScanPredicate::all(), r.mgr().now(), NOBODY, 4096)
                    .unwrap()
                    .iter()
                    .flat_map(|b| b.to_rows())
                    .collect();
                rows.sort();
                views.push(rows);
            }
            for w in views.windows(2) {
                assert_eq!(w[0], w[1], "replica divergence in {}", g.id);
            }
        }
    }

    #[test]
    fn survives_single_node_crash() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..10 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        t.crash_node(1);
        // Writes and reads continue on the surviving majority.
        for i in 10..20 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        let (count, _) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 20);
        // The crashed node catches up after restart.
        t.restart_node(1);
        assert!(t.wait_converged(Duration::from_secs(15)));
    }

    #[test]
    fn degraded_read_without_quorum() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 1,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        for i in 0..12 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        assert!(t.wait_converged(Duration::from_secs(10)));
        // Kill two of three replicas: the survivor cannot win an election,
        // so the partition has no leader...
        let g = &t.groups()[0];
        let survivor = (g.leader_index(Duration::from_secs(5)).unwrap() + 1) % 3;
        for i in 0..3 {
            if i != survivor {
                g.replicas[i].raft.crash();
            }
        }
        assert!(g.leader_index(Duration::from_millis(600)).is_err());
        // ...but the degraded-read path still serves the replicated data.
        let (idx, degraded) = g.read_index(Duration::from_millis(300)).unwrap();
        assert_eq!(idx, survivor);
        assert!(degraded);
        let (count, _) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 12);
    }

    #[test]
    fn wiped_replica_rebuilds_from_raft_log() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 2,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        for i in 0..24 {
            t.insert(row![i as i64, i as i64]).unwrap();
        }
        assert!(t.wait_converged(Duration::from_secs(10)));
        let before = t.collect_all().unwrap();

        // Node 2 loses its data disk entirely, then comes back: local
        // tables are empty until the Raft log is re-applied.
        t.crash_node(2);
        for g in t.groups() {
            for (i, &m) in g.members.iter().enumerate() {
                if m == 2 {
                    g.replicas[i].store.wipe();
                    assert_eq!(g.replicas[i].table().row_count_estimate(), 0);
                }
            }
        }
        t.restart_node_rebuilt(2);
        assert!(
            t.wait_converged(Duration::from_secs(15)),
            "wiped node failed to rebuild from the log"
        );
        assert_eq!(t.collect_all().unwrap(), before);
    }

    #[test]
    fn scan_retries_through_injected_partition_failure() {
        use oltap_common::fault::FaultPoint;
        let faults = FaultInjector::new(0xD15C);
        // The first two partition scans fail; retries succeed.
        faults.arm(points::SCAN_PARTITION_FAIL, FaultPoint::times(2));
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 2,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new_with_faults(schema(), cfg, Arc::clone(&faults)).unwrap();
        for i in 0..10 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        let (count, sum) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 10);
        assert_eq!(sum, 10);
        assert_eq!(faults.fired_count(), 2, "both armed failures consumed");
    }

    #[test]
    fn rejects_rf_above_nodes() {
        let cfg = ClusterConfig {
            nodes: 2,
            replication: 3,
            partitions: 2,
            raft: RaftConfig::default(),
        };
        assert!(DistributedTable::new(schema(), cfg).is_err());
    }

    #[test]
    fn replication_factor_one_works() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 1,
            partitions: 3,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        for i in 0..15 {
            t.insert(row![i as i64, 2i64]).unwrap();
        }
        let (count, sum) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 15);
        assert_eq!(sum, 30);
    }
}
