//! The in-process cluster: partitioned, Raft-replicated tables with
//! scatter-gather query execution.
//!
//! This is the scale-out architecture of the tutorial's §3 systems: data
//! is horizontally partitioned ([`crate::partition`]); each partition is
//! replicated by a Raft group ([`crate::raft`], the Kudu design \[24\]);
//! queries scatter to every partition, compute partial aggregates next to
//! the data, and gather the partials (the Oracle DBIM scale-out / MPP
//! pattern \[27\]).
//!
//! **Substitution:** "nodes" are replica slots within this process and the
//! wire is in-memory channels. Quorum math, leader routing, failure
//! handling, and partial aggregation are all real; only deployment is
//! simulated (see DESIGN.md).

use crate::partition::Partitioner;
use crate::raft::{ApplyFn, Network, RaftConfig, RaftNode, Role};
use oltap_common::ids::{NodeId, PartitionId, TxnId};
use oltap_common::schema::SchemaRef;
use oltap_common::{DbError, Result, Row};
use oltap_storage::{DeltaMainTable, ScanPredicate};
use oltap_txn::wal::{decode_row, encode_row};
use oltap_txn::TransactionManager;
use std::sync::Arc;
use std::time::Duration;

const NOBODY: TxnId = TxnId(u64::MAX - 4);

/// One replica of one partition: a local table + transaction manager fed
/// by the partition's Raft log.
pub struct Replica {
    /// The local storage (delta + main).
    pub table: Arc<DeltaMainTable>,
    /// The replica-local transaction manager.
    pub mgr: Arc<TransactionManager>,
    /// The Raft node driving this replica.
    pub raft: Arc<RaftNode>,
}

/// One partition: a Raft group of replicas.
pub struct PartitionGroup {
    /// The partition id.
    pub id: PartitionId,
    /// The cluster-node indexes hosting the replicas.
    pub members: Vec<usize>,
    /// The replicas, positionally matching `members`.
    pub replicas: Vec<Replica>,
    /// The group's network (failure injection).
    pub network: Arc<Network>,
}

impl PartitionGroup {
    /// Index (into `replicas`) of the current leader, waiting up to
    /// `timeout` for an election to settle.
    pub fn leader_index(&self, timeout: Duration) -> Result<usize> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let leader = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.raft.is_running())
                .filter_map(|(i, r)| {
                    r.raft
                        .report()
                        .filter(|rep| rep.role == Role::Leader)
                        .map(|rep| (i, rep.term))
                })
                .max_by_key(|&(_, term)| term)
                .map(|(i, _)| i);
            if let Some(i) = leader {
                return Ok(i);
            }
            if std::time::Instant::now() > deadline {
                return Err(DbError::Cluster(format!(
                    "no leader for partition {}",
                    self.id
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Proposes a row insert through the leader, retrying across
    /// elections.
    pub fn replicate_insert(&self, row: &Row, timeout: Duration) -> Result<()> {
        let cmd = encode_row(row);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let leader = self.leader_index(deadline.saturating_duration_since(
                std::time::Instant::now(),
            ))?;
            match self.replicas[leader].raft.propose(cmd.clone()) {
                Ok(_) => return Ok(()),
                Err(_) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Cluster shape.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Replicas per partition (Raft group size; odd values recommended).
    pub replication: usize,
    /// Number of partitions.
    pub partitions: usize,
    /// Raft timing.
    pub raft: RaftConfig,
}

impl ClusterConfig {
    /// A small default: 3 nodes, RF=3, 6 partitions.
    pub fn small() -> Self {
        ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 6,
            raft: RaftConfig::default(),
        }
    }
}

/// A partitioned, replicated, queryable table.
pub struct DistributedTable {
    schema: SchemaRef,
    partitioner: Partitioner,
    groups: Vec<PartitionGroup>,
    config: ClusterConfig,
}

impl DistributedTable {
    /// Builds the cluster: one Raft group per partition, replicas placed
    /// round-robin over nodes.
    pub fn new(schema: SchemaRef, config: ClusterConfig) -> Result<Self> {
        if config.replication > config.nodes {
            return Err(DbError::InvalidArgument(
                "replication factor exceeds node count".into(),
            ));
        }
        let partitioner = Partitioner::hash(config.partitions)?;
        let mut groups = Vec::with_capacity(config.partitions);
        for p in 0..config.partitions {
            let members: Vec<usize> = (0..config.replication)
                .map(|r| (p + r) % config.nodes)
                .collect();
            let network = Arc::new(Network::new());
            let ids: Vec<NodeId> = members.iter().map(|&m| NodeId(m as u64)).collect();
            let mut replicas = Vec::with_capacity(members.len());
            for &id in &ids {
                let table = Arc::new(DeltaMainTable::new(Arc::clone(&schema)));
                let mgr = Arc::new(TransactionManager::new());
                let t2 = Arc::clone(&table);
                let m2 = Arc::clone(&mgr);
                let apply: ApplyFn = Arc::new(move |_idx, cmd| {
                    if let Ok(row) = decode_row(cmd) {
                        let tx = m2.begin();
                        // Replicated commands are already committed
                        // cluster-wide; local conflicts cannot occur
                        // because all writes flow through the same log.
                        if t2.insert(&tx, row).is_ok() {
                            let _ = tx.commit();
                        }
                    }
                });
                replicas.push(Replica {
                    table,
                    mgr,
                    raft: RaftNode::spawn(
                        id,
                        ids.clone(),
                        Arc::clone(&network),
                        config.raft,
                        apply,
                    ),
                });
            }
            groups.push(PartitionGroup {
                id: PartitionId(p as u64),
                members,
                replicas,
                network,
            });
        }
        Ok(DistributedTable {
            schema,
            partitioner,
            groups,
            config,
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The partition groups.
    pub fn groups(&self) -> &[PartitionGroup] {
        &self.groups
    }

    /// Routes and replicates an insert (durable once a quorum of the
    /// partition's replicas has the log entry).
    pub fn insert(&self, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        let key = if self.schema.has_primary_key() {
            self.schema.key_of(&row)
        } else {
            row.clone()
        };
        let p = self.partitioner.partition_of(&key);
        self.groups[p.raw() as usize].replicate_insert(&row, Duration::from_secs(10))
    }

    /// Scatter-gather filtered aggregate:
    /// `SELECT count(*), sum(col) WHERE pred`, computed as partials on
    /// each partition's leader replica and combined.
    pub fn scan_aggregate(
        &self,
        pred: &ScanPredicate,
        agg_column: usize,
    ) -> Result<(u64, i64)> {
        let partials: Result<Vec<(u64, i64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .groups
                .iter()
                .map(|g| {
                    scope.spawn(move || -> Result<(u64, i64)> {
                        let leader = g.leader_index(Duration::from_secs(5))?;
                        let r = &g.replicas[leader];
                        let batches = r.table.scan(
                            &[agg_column],
                            pred,
                            r.mgr.now(),
                            NOBODY,
                            4096,
                        )?;
                        let mut count = 0u64;
                        let mut sum = 0i64;
                        for b in &batches {
                            count += b.len() as u64;
                            let col = b.column(0);
                            for i in 0..b.len() {
                                if col.is_valid(i) {
                                    if let oltap_common::Value::Int(x) = col.value_at(i) {
                                        sum = sum.wrapping_add(x);
                                    }
                                }
                            }
                        }
                        Ok((count, sum))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter task panicked"))
                .collect()
        });
        let partials = partials?;
        Ok(partials
            .into_iter()
            .fold((0, 0), |(c, s), (pc, ps)| (c + pc, s.wrapping_add(ps))))
    }

    /// Collects every visible row (test oracle; sorts by primary key).
    pub fn collect_all(&self) -> Result<Vec<Row>> {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        let mut rows = Vec::new();
        for g in &self.groups {
            let leader = g.leader_index(Duration::from_secs(5))?;
            let r = &g.replicas[leader];
            for b in r.table.scan(&all, &ScanPredicate::all(), r.mgr.now(), NOBODY, 4096)? {
                rows.extend(b.to_rows());
            }
        }
        rows.sort();
        Ok(rows)
    }

    /// Crashes every replica hosted on cluster node `node`.
    pub fn crash_node(&self, node: usize) {
        for g in &self.groups {
            for (i, &m) in g.members.iter().enumerate() {
                if m == node {
                    g.replicas[i].raft.crash();
                }
            }
        }
    }

    /// Restarts every replica hosted on cluster node `node`.
    pub fn restart_node(&self, node: usize) {
        for g in &self.groups {
            for (i, &m) in g.members.iter().enumerate() {
                if m == node {
                    g.replicas[i].raft.restart();
                }
            }
        }
    }

    /// Waits until every partition's replicas have applied the same number
    /// of entries (quiesce helper for tests).
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let converged = self.groups.iter().all(|g| {
                let counts: Vec<usize> = g
                    .replicas
                    .iter()
                    .filter(|r| r.raft.is_running())
                    .map(|r| r.table.row_count_estimate())
                    .collect();
                counts.windows(2).all(|w| w[0] == w[1])
            });
            if converged {
                return true;
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::row;
    use oltap_common::{DataType, Field, Schema, Value};
    use oltap_storage::CmpOp;

    fn schema() -> SchemaRef {
        Arc::new(
            Schema::with_primary_key(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::new("v", DataType::Int64),
                ],
                &["id"],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_aggregate() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..60 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        let (count, sum) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 60);
        assert_eq!(sum, 60);
    }

    #[test]
    fn matches_single_node_oracle() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        let local = DeltaMainTable::new(schema());
        let mgr = Arc::new(TransactionManager::new());
        for i in 0..40 {
            let r = row![i as i64, (i % 7) as i64];
            t.insert(r.clone()).unwrap();
            let tx = mgr.begin();
            local.insert(&tx, r).unwrap();
            tx.commit().unwrap();
        }
        let pred = ScanPredicate::single(1, CmpOp::Ge, Value::Int(3));
        let (dc, ds) = t.scan_aggregate(&pred, 1).unwrap();
        let batches = local
            .scan(&[1], &pred, mgr.now(), TxnId(u64::MAX - 5), 4096)
            .unwrap();
        let lc: usize = batches.iter().map(|b| b.len()).sum();
        let ls: i64 = batches
            .iter()
            .flat_map(|b| b.to_rows())
            .map(|r| r[0].as_int().unwrap())
            .sum();
        assert_eq!(dc as usize, lc);
        assert_eq!(ds, ls);
    }

    #[test]
    fn rows_partition_consistently() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..30 {
            t.insert(row![i as i64, i as i64]).unwrap();
        }
        let rows = t.collect_all().unwrap();
        assert_eq!(rows.len(), 30);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[29][0], Value::Int(29));
    }

    #[test]
    fn replicas_converge() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..20 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        assert!(t.wait_converged(Duration::from_secs(10)));
        // Every replica of every partition holds identical data.
        for g in t.groups() {
            let all: Vec<usize> = vec![0, 1];
            let mut views: Vec<Vec<Row>> = Vec::new();
            for r in &g.replicas {
                let mut rows: Vec<Row> = r
                    .table
                    .scan(&all, &ScanPredicate::all(), r.mgr.now(), NOBODY, 4096)
                    .unwrap()
                    .iter()
                    .flat_map(|b| b.to_rows())
                    .collect();
                rows.sort();
                views.push(rows);
            }
            for w in views.windows(2) {
                assert_eq!(w[0], w[1], "replica divergence in {}", g.id);
            }
        }
    }

    #[test]
    fn survives_single_node_crash() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..10 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        t.crash_node(1);
        // Writes and reads continue on the surviving majority.
        for i in 10..20 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        let (count, _) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 20);
        // The crashed node catches up after restart.
        t.restart_node(1);
        assert!(t.wait_converged(Duration::from_secs(15)));
    }

    #[test]
    fn rejects_rf_above_nodes() {
        let cfg = ClusterConfig {
            nodes: 2,
            replication: 3,
            partitions: 2,
            raft: RaftConfig::default(),
        };
        assert!(DistributedTable::new(schema(), cfg).is_err());
    }

    #[test]
    fn replication_factor_one_works() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 1,
            partitions: 3,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        for i in 0..15 {
            t.insert(row![i as i64, 2i64]).unwrap();
        }
        let (count, sum) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 15);
        assert_eq!(sum, 30);
    }
}
