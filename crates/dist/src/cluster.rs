//! The in-process cluster: partitioned, Raft-replicated tables with
//! scatter-gather query execution.
//!
//! This is the scale-out architecture of the tutorial's §3 systems: data
//! is horizontally partitioned ([`crate::partition`]); each partition is
//! replicated by a Raft group ([`crate::raft`], the Kudu design \[24\]);
//! queries scatter to every partition, compute partial aggregates next to
//! the data, and gather the partials (the Oracle DBIM scale-out / MPP
//! pattern \[27\]).
//!
//! **Substitution:** "nodes" are replica slots within this process and the
//! wire is in-memory channels. Quorum math, leader routing, failure
//! handling, and partial aggregation are all real; only deployment is
//! simulated (see DESIGN.md).

use crate::partition::Partitioner;
use crate::raft::{Network, RaftConfig, RaftNode, Role, StateMachine};
use oltap_common::fault::{points, FaultInjector};
use oltap_common::ids::{NodeId, PartitionId, TxnId};
use oltap_common::retry::Backoff;
use oltap_common::schema::SchemaRef;
use oltap_common::{DbError, Result, Row};
use oltap_storage::{DeltaMainTable, ScanPredicate};
use oltap_txn::wal::{decode_row, encode_row, in_doubt_gtxns, CommitRecord, Wal, WalOp};
use oltap_txn::{Transaction, TransactionManager};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const NOBODY: TxnId = TxnId(u64::MAX - 4);

/// A command replicated through a partition's Raft log.
///
/// `Insert` is the auto-committed single-shard fast path. `Prepare` and
/// `Decide` are the two-phase-commit participant transitions driven by
/// [`crate::twopc::TwoPcCoordinator`]: `Prepare` stages rows under a local
/// transaction whose MVCC versions stay pending (invisible) until the
/// matching `Decide` commits or aborts them. Because both transitions flow
/// through the same replicated log as inserts, every replica of a
/// partition reaches the same prepare vote and the same final state.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardCmd {
    /// Auto-committed single-row insert.
    Insert(Row),
    /// 2PC phase 1: stage `rows` under global transaction `gtxn` and vote.
    Prepare {
        /// Global (cross-shard) transaction id.
        gtxn: u64,
        /// Rows routed to this partition.
        rows: Vec<Row>,
    },
    /// 2PC phase 2: resolve `gtxn` (commit or roll back staged versions).
    Decide {
        /// Global (cross-shard) transaction id.
        gtxn: u64,
        /// True = commit, false = abort.
        commit: bool,
    },
}

impl ShardCmd {
    /// Serializes the command for the Raft log (tag byte + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            ShardCmd::Insert(row) => {
                buf.push(0);
                buf.extend_from_slice(&encode_row(row));
            }
            ShardCmd::Prepare { gtxn, rows } => {
                buf.push(1);
                buf.extend_from_slice(&gtxn.to_le_bytes());
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for r in rows {
                    let b = encode_row(r);
                    buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
                    buf.extend_from_slice(&b);
                }
            }
            ShardCmd::Decide { gtxn, commit } => {
                buf.push(2);
                buf.extend_from_slice(&gtxn.to_le_bytes());
                buf.push(*commit as u8);
            }
        }
        buf
    }

    /// Decodes a command produced by [`ShardCmd::encode`].
    pub fn decode(bytes: &[u8]) -> Result<ShardCmd> {
        let corrupt = || DbError::Corruption("truncated shard command".into());
        let (&tag, rest) = bytes.split_first().ok_or_else(corrupt)?;
        match tag {
            0 => Ok(ShardCmd::Insert(decode_row(rest)?)),
            1 => {
                if rest.len() < 12 {
                    return Err(corrupt());
                }
                let gtxn = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                let n = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
                let mut off = 12usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    if rest.len() < off + 4 {
                        return Err(corrupt());
                    }
                    let len =
                        u32::from_le_bytes(rest[off..off + 4].try_into().unwrap()) as usize;
                    off += 4;
                    if rest.len() < off + len {
                        return Err(corrupt());
                    }
                    rows.push(decode_row(&rest[off..off + len])?);
                    off += len;
                }
                Ok(ShardCmd::Prepare { gtxn, rows })
            }
            2 => {
                if rest.len() < 9 {
                    return Err(corrupt());
                }
                let gtxn = u64::from_le_bytes(rest[0..8].try_into().unwrap());
                Ok(ShardCmd::Decide {
                    gtxn,
                    commit: rest[8] != 0,
                })
            }
            t => Err(DbError::Corruption(format!("bad shard command tag {t}"))),
        }
    }
}

/// A prepared-but-undecided global transaction held by one replica.
struct PendingPrepare {
    /// The local MVCC transaction pinning the staged versions. `None`
    /// when staging failed (vote = abort) — there is nothing to commit.
    txn: Option<Transaction>,
    /// This replica's prepare vote.
    ok: bool,
    /// The staged rows, retained so a Raft snapshot can re-stage them on
    /// a restoring replica.
    rows: Vec<Row>,
}

/// Per-replica 2PC participant state: prepared transactions awaiting a
/// decision, decided outcomes (for idempotent re-delivery), and the
/// participant WAL recording `Prepare`/`TxnDecision` records so a
/// restarted replica can enumerate its in-doubt transactions.
struct TwoPcLocal {
    pending: BTreeMap<u64, PendingPrepare>,
    outcomes: BTreeMap<u64, bool>,
    wal: Wal,
}

/// Decided outcomes retained per replica for idempotent re-delivery.
/// Older ones may be forgotten: re-delivery of a forgotten decision
/// re-applies as a no-op (the pending entry is long gone, so no version
/// state changes — only the outcome map entry is recreated).
const OUTCOME_RETENTION: usize = 64;

impl TwoPcLocal {
    fn new() -> Self {
        TwoPcLocal {
            pending: BTreeMap::new(),
            outcomes: BTreeMap::new(),
            wal: Wal::new_in_memory(),
        }
    }

    /// Checkpoint: once decided outcomes pile up past twice the retention
    /// window, drop the oldest (gtxns are time-ordered: epoch in the high
    /// bits, sequence in the low) and rewrite the WAL to hold only the
    /// still-pending prepares plus the retained decisions. Without this,
    /// participant memory and in-doubt recovery scans grow with total
    /// transaction history instead of with the in-flight set.
    fn maybe_checkpoint(&mut self) {
        if self.outcomes.len() < OUTCOME_RETENTION * 2 {
            return;
        }
        while self.outcomes.len() > OUTCOME_RETENTION {
            self.outcomes.pop_first();
        }
        let wal = Wal::new_in_memory();
        for (&gtxn, p) in &self.pending {
            let _ = wal.append(&CommitRecord {
                txn: TxnId(gtxn),
                commit_ts: 0,
                ops: vec![WalOp::Prepare {
                    gtxn,
                    table: String::new(),
                    rows: p.rows.clone(),
                }],
            });
        }
        for (&gtxn, &commit) in &self.outcomes {
            let _ = wal.append(&CommitRecord {
                txn: TxnId(gtxn),
                commit_ts: 0,
                ops: vec![WalOp::TxnDecision { gtxn, commit }],
            });
        }
        self.wal = wal;
    }
}

/// Swappable replica storage: the table + transaction manager the Raft
/// apply function writes into. Held behind a lock so a crash-restart can
/// *wipe* the replica (simulating loss of the machine's data disk) and
/// rebuild it purely from the Raft log — the re-applied entries land in
/// the fresh table. Also hosts the replica's 2PC participant state
/// ([`TwoPcLocal`]), which is wiped and rebuilt the same way.
pub struct ReplicaStore {
    schema: SchemaRef,
    inner: RwLock<(Arc<DeltaMainTable>, Arc<TransactionManager>)>,
    twopc: Mutex<TwoPcLocal>,
    faults: Arc<FaultInjector>,
}

impl ReplicaStore {
    fn new(schema: SchemaRef, faults: Arc<FaultInjector>) -> Arc<ReplicaStore> {
        let table = Arc::new(DeltaMainTable::new(Arc::clone(&schema)));
        let mgr = Arc::new(TransactionManager::new());
        Arc::new(ReplicaStore {
            schema,
            inner: RwLock::new((table, mgr)),
            twopc: Mutex::new(TwoPcLocal::new()),
            faults,
        })
    }

    /// The current table (snapshot of the swappable slot).
    pub fn table(&self) -> Arc<DeltaMainTable> {
        Arc::clone(&self.inner.read().0)
    }

    /// The current transaction manager.
    pub fn mgr(&self) -> Arc<TransactionManager> {
        Arc::clone(&self.inner.read().1)
    }

    /// Drops all local state, replacing table, manager, and 2PC state
    /// with empty ones. The next Raft re-apply pass repopulates from the
    /// log (or a snapshot install repopulates via [`Self::restore_bytes`]).
    pub fn wipe(&self) {
        let table = Arc::new(DeltaMainTable::new(Arc::clone(&self.schema)));
        let mgr = Arc::new(TransactionManager::new());
        let mut tp = self.twopc.lock();
        *self.inner.write() = (table, mgr);
        *tp = TwoPcLocal::new();
    }

    /// This replica's prepare vote for `gtxn`, if it has seen the
    /// `Prepare` (possibly already resolved).
    pub fn prepare_vote(&self, gtxn: u64) -> Option<bool> {
        let tp = self.twopc.lock();
        // After a decision the original vote is moot: a committed outcome
        // implies the vote was yes; reporting no for an aborted one steers
        // a retrying coordinator toward the already-taken abort.
        tp.pending
            .get(&gtxn)
            .map(|p| p.ok)
            .or_else(|| tp.outcomes.get(&gtxn).copied())
    }

    /// The decided outcome for `gtxn`, if this replica has applied the
    /// decision.
    pub fn decided(&self, gtxn: u64) -> Option<bool> {
        self.twopc.lock().outcomes.get(&gtxn).copied()
    }

    /// Global transaction ids this replica prepared but never saw a
    /// decision for. Maintained incrementally as the keys of the pending
    /// map (O(in-flight), not O(history)); the participant WAL mirrors
    /// the same set — [`Self::wal_in_doubt`] recomputes it by replay, the
    /// path a restarted node with only its WAL would take.
    pub fn in_doubt(&self) -> Vec<u64> {
        self.twopc.lock().pending.keys().copied().collect()
    }

    /// The in-doubt set as derived from the participant WAL alone
    /// (full replay — test oracle for the incremental set).
    pub fn wal_in_doubt(&self) -> Vec<u64> {
        let tp = self.twopc.lock();
        let (records, _) = tp.wal.replay_records();
        in_doubt_gtxns(&records)
    }

    /// Applies one replicated command (called from the Raft apply fn).
    /// Returns `true` when an armed fault requests this replica crash
    /// *after* the prepare is durable — the participant-crash chaos point.
    fn apply(&self, cmd: &[u8]) -> bool {
        let cmd = match ShardCmd::decode(cmd) {
            Ok(c) => c,
            Err(_) => return false,
        };
        let (table, mgr) = {
            let g = self.inner.read();
            (Arc::clone(&g.0), Arc::clone(&g.1))
        };
        match cmd {
            ShardCmd::Insert(row) => {
                let tx = mgr.begin();
                // Replicated commands are already committed cluster-wide;
                // local conflicts cannot occur because all writes flow
                // through the same log. Duplicate keys appear only during
                // re-apply after restart and are safely skipped.
                if table.insert(&tx, row).is_ok() {
                    let _ = tx.commit();
                }
                false
            }
            ShardCmd::Prepare { gtxn, rows } => {
                let mut tp = self.twopc.lock();
                // Re-apply after restart: skip if already staged/decided.
                if tp.pending.contains_key(&gtxn) || tp.outcomes.contains_key(&gtxn) {
                    return false;
                }
                // Stage under a local transaction, leave it open: the MVCC
                // versions stay pending (invisible to snapshots) until the
                // decision arrives. Apply is single-threaded per replica
                // and commands are log-ordered, so success/failure here is
                // deterministic across all replicas of the partition.
                let tx = mgr.begin();
                let mut ok = true;
                for row in &rows {
                    if table.insert(&tx, row.clone()).is_err() {
                        ok = false;
                        break;
                    }
                }
                let txn = if ok && tx.prepare().is_ok() {
                    Some(tx)
                } else {
                    ok = false;
                    None // dropping `tx` aborts the partial staging
                };
                let _ = tp.wal.append(&CommitRecord {
                    txn: TxnId(gtxn),
                    commit_ts: 0,
                    ops: vec![WalOp::Prepare {
                        gtxn,
                        table: String::new(),
                        rows: rows.clone(),
                    }],
                });
                tp.pending.insert(gtxn, PendingPrepare { txn, ok, rows });
                drop(tp);
                self.faults
                    .should_fire(points::TWOPC_PARTICIPANT_CRASH_PREPARED)
            }
            ShardCmd::Decide { gtxn, commit } => {
                let mut tp = self.twopc.lock();
                if tp.outcomes.contains_key(&gtxn) {
                    return false; // duplicate decision delivery
                }
                if let Some(p) = tp.pending.remove(&gtxn) {
                    if let Some(tx) = p.txn {
                        if commit && p.ok {
                            let _ = tx.commit();
                        } else {
                            let _ = tx.abort();
                        }
                    }
                }
                let _ = tp.wal.append(&CommitRecord {
                    txn: TxnId(gtxn),
                    commit_ts: 0,
                    ops: vec![WalOp::TxnDecision { gtxn, commit }],
                });
                tp.outcomes.insert(gtxn, commit);
                tp.maybe_checkpoint();
                false
            }
        }
    }

    /// Serializes the replica's full state for a Raft snapshot: committed
    /// rows, still-pending prepares (with their staged rows, so a restored
    /// replica can re-stage them), and decided outcomes. Called from the
    /// Raft worker thread, which is also the only caller of `apply`, so
    /// the state observed is exactly the state at `last_applied`.
    fn snapshot_bytes(&self) -> Vec<u8> {
        let (table, mgr) = {
            let g = self.inner.read();
            (Arc::clone(&g.0), Arc::clone(&g.1))
        };
        let all: Vec<usize> = (0..self.schema.len()).collect();
        let mut rows: Vec<Row> = Vec::new();
        if let Ok(batches) = table.scan(&all, &ScanPredicate::all(), mgr.now(), NOBODY, 4096)
        {
            for b in &batches {
                rows.extend(b.to_rows());
            }
        }
        let tp = self.twopc.lock();
        let mut buf = Vec::with_capacity(64 + rows.len() * 16);
        buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for r in &rows {
            let b = encode_row(r);
            buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
            buf.extend_from_slice(&b);
        }
        buf.extend_from_slice(&(tp.pending.len() as u32).to_le_bytes());
        for (gtxn, p) in &tp.pending {
            buf.extend_from_slice(&gtxn.to_le_bytes());
            buf.push(p.ok as u8);
            buf.extend_from_slice(&(p.rows.len() as u32).to_le_bytes());
            for r in &p.rows {
                let b = encode_row(r);
                buf.extend_from_slice(&(b.len() as u32).to_le_bytes());
                buf.extend_from_slice(&b);
            }
        }
        buf.extend_from_slice(&(tp.outcomes.len() as u32).to_le_bytes());
        for (gtxn, commit) in &tp.outcomes {
            buf.extend_from_slice(&gtxn.to_le_bytes());
            buf.push(*commit as u8);
        }
        buf
    }

    /// Replaces the replica's state with a snapshot produced by
    /// [`Self::snapshot_bytes`] (InstallSnapshot on a lagging follower).
    fn restore_bytes(&self, bytes: &[u8]) {
        fn read_u32(b: &[u8], off: &mut usize) -> Option<u32> {
            let v = u32::from_le_bytes(b.get(*off..*off + 4)?.try_into().ok()?);
            *off += 4;
            Some(v)
        }
        fn read_u64(b: &[u8], off: &mut usize) -> Option<u64> {
            let v = u64::from_le_bytes(b.get(*off..*off + 8)?.try_into().ok()?);
            *off += 8;
            Some(v)
        }
        fn read_rows(b: &[u8], off: &mut usize) -> Option<Vec<Row>> {
            let n = read_u32(b, off)? as usize;
            let mut rows = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let len = read_u32(b, off)? as usize;
                let slice = b.get(*off..*off + len)?;
                *off += len;
                rows.push(decode_row(slice).ok()?);
            }
            Some(rows)
        }
        self.wipe();
        let (table, mgr) = {
            let g = self.inner.read();
            (Arc::clone(&g.0), Arc::clone(&g.1))
        };
        let mut off = 0usize;
        let Some(committed) = read_rows(bytes, &mut off) else {
            return;
        };
        let tx = mgr.begin();
        for row in committed {
            let _ = table.insert(&tx, row);
        }
        let _ = tx.commit();
        let mut tp = self.twopc.lock();
        let Some(np) = read_u32(bytes, &mut off) else {
            return;
        };
        for _ in 0..np {
            let (Some(gtxn), Some(&okb)) = (read_u64(bytes, &mut off), bytes.get(off))
            else {
                return;
            };
            off += 1;
            let Some(rows) = read_rows(bytes, &mut off) else {
                return;
            };
            // Re-stage exactly as apply(Prepare) would, including the WAL
            // record, so in-doubt recovery works from a restored replica.
            let tx = mgr.begin();
            let mut ok = okb != 0;
            if ok {
                for row in &rows {
                    if table.insert(&tx, row.clone()).is_err() {
                        ok = false;
                        break;
                    }
                }
            }
            let txn = if ok && tx.prepare().is_ok() {
                Some(tx)
            } else {
                ok = false;
                None
            };
            let _ = tp.wal.append(&CommitRecord {
                txn: TxnId(gtxn),
                commit_ts: 0,
                ops: vec![WalOp::Prepare {
                    gtxn,
                    table: String::new(),
                    rows: rows.clone(),
                }],
            });
            tp.pending.insert(gtxn, PendingPrepare { txn, ok, rows });
        }
        let Some(no) = read_u32(bytes, &mut off) else {
            return;
        };
        for _ in 0..no {
            let (Some(gtxn), Some(&commit)) = (read_u64(bytes, &mut off), bytes.get(off))
            else {
                return;
            };
            off += 1;
            let _ = tp.wal.append(&CommitRecord {
                txn: TxnId(gtxn),
                commit_ts: 0,
                ops: vec![WalOp::TxnDecision {
                    gtxn,
                    commit: commit != 0,
                }],
            });
            tp.outcomes.insert(gtxn, commit != 0);
        }
    }
}

/// One replica of one partition: swappable local storage fed by the
/// partition's Raft log.
pub struct Replica {
    /// The replica's storage slot (wipe-able for rebuild tests).
    pub store: Arc<ReplicaStore>,
    /// The Raft node driving this replica.
    pub raft: Arc<RaftNode>,
}

impl Replica {
    /// The current local table.
    pub fn table(&self) -> Arc<DeltaMainTable> {
        self.store.table()
    }

    /// The current transaction manager.
    pub fn mgr(&self) -> Arc<TransactionManager> {
        self.store.mgr()
    }
}

/// One partition: a Raft group of replicas.
pub struct PartitionGroup {
    /// The partition id.
    pub id: PartitionId,
    /// The cluster-node indexes hosting the replicas.
    pub members: Vec<usize>,
    /// The replicas, positionally matching `members`.
    pub replicas: Vec<Replica>,
    /// The group's network (failure injection).
    pub network: Arc<Network>,
}

impl PartitionGroup {
    fn current_leader(&self) -> Option<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.raft.is_running())
            .filter_map(|(i, r)| {
                r.raft
                    .report()
                    .filter(|rep| rep.role == Role::Leader)
                    .map(|rep| (i, rep.term))
            })
            .max_by_key(|&(_, term)| term)
            .map(|(i, _)| i)
    }

    /// Index (into `replicas`) of the current leader, waiting up to
    /// `timeout` for an election to settle. Polls with exponential
    /// backoff + jitter rather than a fixed-interval spin, so a stalled
    /// election doesn't keep a client thread hot.
    pub fn leader_index(&self, timeout: Duration) -> Result<usize> {
        let deadline = std::time::Instant::now() + timeout;
        let mut backoff = Backoff::for_cluster();
        loop {
            if let Some(i) = self.current_leader() {
                return Ok(i);
            }
            if !backoff.sleep_until_deadline(deadline) {
                return Err(DbError::ShardUnavailable {
                    partition: self.id.raw(),
                    reason: "no leader elected within timeout".into(),
                });
            }
        }
    }

    /// Best-effort read target: a *lease-holding* leader if one appears
    /// within the timeout, otherwise — the degraded-read path — the
    /// running replica with the highest commit index. Returns
    /// `(replica_index, degraded)`. A lease-holding leader serves
    /// linearizable local reads (it cannot have been superseded, so it
    /// has every committed entry — including both halves of any finished
    /// cross-shard commit). A degraded read is *not* linearizable but
    /// keeps analytics available while the partition has no quorum.
    pub fn read_index(&self, leader_timeout: Duration) -> Result<(usize, bool)> {
        let deadline = std::time::Instant::now() + leader_timeout;
        let mut backoff = Backoff::for_cluster();
        loop {
            let leased = self
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| r.raft.is_running())
                .filter_map(|(i, r)| r.raft.report().map(|rep| (i, rep)))
                .filter(|(_, rep)| rep.role == Role::Leader && rep.lease_valid)
                .max_by_key(|(_, rep)| rep.term)
                .map(|(i, _)| i);
            if let Some(i) = leased {
                return Ok((i, false));
            }
            if !backoff.sleep_until_deadline(deadline) {
                break;
            }
        }
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| r.raft.is_running())
            .filter_map(|(i, r)| r.raft.report().map(|rep| (i, rep.commit_index)))
            .max_by_key(|&(_, ci)| ci)
            .map(|(i, _)| (i, true))
            .ok_or_else(|| DbError::ShardUnavailable {
                partition: self.id.raw(),
                reason: "no running replica".into(),
            })
    }

    /// Proposes a command through the leader, retrying across elections
    /// with exponential backoff + jitter until `timeout`. Returns once
    /// the entry is committed and applied on the leader.
    pub fn propose_cmd(&self, cmd: &ShardCmd, timeout: Duration) -> Result<()> {
        let bytes = cmd.encode();
        let deadline = std::time::Instant::now() + timeout;
        let mut backoff = Backoff::for_cluster();
        loop {
            let leader = self.leader_index(
                deadline.saturating_duration_since(std::time::Instant::now()),
            )?;
            match self.replicas[leader].raft.propose(bytes.clone()) {
                Ok(_) => return Ok(()),
                Err(_) if backoff.sleep_until_deadline(deadline) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Proposes a row insert through the leader, retrying across
    /// elections with exponential backoff.
    pub fn replicate_insert(&self, row: &Row, timeout: Duration) -> Result<()> {
        self.propose_cmd(&ShardCmd::Insert(row.clone()), timeout)
    }

    /// This partition's prepare vote for `gtxn`: polls the running
    /// replicas until one has applied the `Prepare` (the coordinator calls
    /// this right after proposing it, so normally the leader answers
    /// immediately). Times out with [`DbError::TxnInDoubt`].
    pub fn prepare_outcome(&self, gtxn: u64, timeout: Duration) -> Result<bool> {
        let deadline = std::time::Instant::now() + timeout;
        let mut backoff = Backoff::for_cluster();
        loop {
            let vote = self
                .replicas
                .iter()
                .filter(|r| r.raft.is_running())
                .find_map(|r| r.store.prepare_vote(gtxn));
            if let Some(ok) = vote {
                return Ok(ok);
            }
            if !backoff.sleep_until_deadline(deadline) {
                return Err(DbError::TxnInDoubt { gtxn });
            }
        }
    }

    /// Whether any running replica has applied a decision for `gtxn`.
    pub fn decided(&self, gtxn: u64) -> Option<bool> {
        self.replicas
            .iter()
            .filter(|r| r.raft.is_running())
            .find_map(|r| r.store.decided(gtxn))
    }

    /// Global transactions some running replica prepared but never saw
    /// decided — the partition's in-doubt set after a crash.
    pub fn in_doubt_gtxns(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .replicas
            .iter()
            .filter(|r| r.raft.is_running())
            .flat_map(|r| r.store.in_doubt())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Cluster shape.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Replicas per partition (Raft group size; odd values recommended).
    pub replication: usize,
    /// Number of partitions.
    pub partitions: usize,
    /// Raft timing.
    pub raft: RaftConfig,
}

impl ClusterConfig {
    /// A small default: 3 nodes, RF=3, 6 partitions.
    pub fn small() -> Self {
        ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 6,
            raft: RaftConfig::default(),
        }
    }
}

/// A partitioned, replicated, queryable table.
pub struct DistributedTable {
    schema: SchemaRef,
    partitioner: Partitioner,
    groups: Vec<PartitionGroup>,
    config: ClusterConfig,
    faults: Arc<FaultInjector>,
}

impl DistributedTable {
    /// Builds the cluster: one Raft group per partition, replicas placed
    /// round-robin over nodes.
    pub fn new(schema: SchemaRef, config: ClusterConfig) -> Result<Self> {
        Self::new_with_faults(schema, config, FaultInjector::disabled())
    }

    /// Builds the cluster with a fault injector shared by every replica's
    /// transport (`raft.*` points) and the scatter-gather read path
    /// (`scan.partition_fail`). Cross-node probe interleaving makes the
    /// `raft.*` decision *order* timing-dependent at this scope — safety
    /// invariants must hold on every schedule; for strictly replayable
    /// message-level schedules use [`crate::raft::RaftGroup::spawn_with_faults`]
    /// with per-node injectors.
    pub fn new_with_faults(
        schema: SchemaRef,
        config: ClusterConfig,
        faults: Arc<FaultInjector>,
    ) -> Result<Self> {
        if config.replication > config.nodes {
            return Err(DbError::InvalidArgument(
                "replication factor exceeds node count".into(),
            ));
        }
        let partitioner = Partitioner::hash(config.partitions)?;
        let mut groups = Vec::with_capacity(config.partitions);
        for p in 0..config.partitions {
            let members: Vec<usize> = (0..config.replication)
                .map(|r| (p + r) % config.nodes)
                .collect();
            let network = Arc::new(Network::new());
            let ids: Vec<NodeId> = members.iter().map(|&m| NodeId(m as u64)).collect();
            let mut replicas = Vec::with_capacity(members.len());
            for &id in &ids {
                let store = ReplicaStore::new(Arc::clone(&schema), Arc::clone(&faults));
                // The apply closure needs the node's kill switch to crash
                // the replica at a precise apply point, but the switch only
                // exists once the node is spawned — bridge with a OnceLock.
                let ks_holder: Arc<OnceLock<Arc<std::sync::atomic::AtomicBool>>> =
                    Arc::new(OnceLock::new());
                let (s_apply, s_snap, s_rest) =
                    (Arc::clone(&store), Arc::clone(&store), Arc::clone(&store));
                let ks = Arc::clone(&ks_holder);
                let machine = StateMachine {
                    apply: Arc::new(move |_idx, cmd| {
                        if s_apply.apply(cmd) {
                            if let Some(sw) = ks.get() {
                                sw.store(true, Ordering::SeqCst);
                            }
                        }
                    }),
                    snapshot: Arc::new(move || s_snap.snapshot_bytes()),
                    restore: Arc::new(move |bytes| s_rest.restore_bytes(bytes)),
                };
                let raft = RaftNode::spawn_with_machine(
                    id,
                    ids.clone(),
                    Arc::clone(&network),
                    config.raft,
                    machine,
                    Arc::clone(&faults),
                );
                let _ = ks_holder.set(raft.kill_switch());
                replicas.push(Replica { store, raft });
            }
            groups.push(PartitionGroup {
                id: PartitionId(p as u64),
                members,
                replicas,
                network,
            });
        }
        Ok(DistributedTable {
            schema,
            partitioner,
            groups,
            config,
            faults,
        })
    }

    /// The fault injector wired into this cluster.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The cluster configuration.
    pub fn config(&self) -> ClusterConfig {
        self.config
    }

    /// The partition groups.
    pub fn groups(&self) -> &[PartitionGroup] {
        &self.groups
    }

    /// The partition a row routes to (hash of its primary key).
    pub fn partition_of(&self, row: &Row) -> Result<usize> {
        self.schema.check_row(row)?;
        let key = if self.schema.has_primary_key() {
            self.schema.key_of(row)
        } else {
            row.clone()
        };
        Ok(self.partitioner.partition_of(&key).raw() as usize)
    }

    /// Routes and replicates an insert (durable once a quorum of the
    /// partition's replicas has the log entry).
    pub fn insert(&self, row: Row) -> Result<()> {
        let p = self.partition_of(&row)?;
        self.groups[p].replicate_insert(&row, Duration::from_secs(10))
    }

    /// One partition's partial aggregate, with per-partition retry: a
    /// failed scan (injected via `scan.partition_fail` or a transient
    /// leader gap) is retried with exponential backoff before the whole
    /// query is failed. Falls back to a degraded (non-linearizable) read
    /// from the best surviving replica if the partition has no leader.
    fn partition_aggregate(
        &self,
        g: &PartitionGroup,
        pred: &ScanPredicate,
        agg_column: usize,
    ) -> Result<(u64, i64)> {
        let mut backoff = Backoff::for_cluster();
        let mut last_err = None;
        for attempt in 0..4 {
            if attempt > 0 {
                backoff.sleep();
            }
            if self.faults.should_fire(points::SCAN_PARTITION_FAIL) {
                last_err = Some(DbError::FaultInjected(format!(
                    "scan.partition_fail on partition {}",
                    g.id
                )));
                continue;
            }
            let (idx, _degraded) = match g.read_index(Duration::from_secs(5)) {
                Ok(x) => x,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            let r = &g.replicas[idx];
            let (table, mgr) = (r.table(), r.mgr());
            match table.scan(&[agg_column], pred, mgr.now(), NOBODY, 4096) {
                Ok(batches) => {
                    let mut count = 0u64;
                    let mut sum = 0i64;
                    for b in &batches {
                        count += b.len() as u64;
                        let col = b.column(0);
                        for i in 0..b.len() {
                            if col.is_valid(i) {
                                if let oltap_common::Value::Int(x) = col.value_at(i) {
                                    sum = sum.wrapping_add(x);
                                }
                            }
                        }
                    }
                    return Ok((count, sum));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            DbError::Cluster(format!("partition {} unavailable", g.id))
        }))
    }

    /// Scatter-gather filtered aggregate:
    /// `SELECT count(*), sum(col) WHERE pred`, computed as partials on
    /// each partition's leader replica and combined.
    pub fn scan_aggregate(
        &self,
        pred: &ScanPredicate,
        agg_column: usize,
    ) -> Result<(u64, i64)> {
        let partials: Result<Vec<(u64, i64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .groups
                .iter()
                .map(|g| scope.spawn(move || self.partition_aggregate(g, pred, agg_column)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter task panicked"))
                .collect()
        });
        let partials = partials?;
        Ok(partials
            .into_iter()
            .fold((0, 0), |(c, s), (pc, ps)| (c + pc, s.wrapping_add(ps))))
    }

    /// Collects every visible row (test oracle; sorts by primary key).
    /// Uses the degraded-read path, so it stays available without quorum.
    pub fn collect_all(&self) -> Result<Vec<Row>> {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        let mut rows = Vec::new();
        for g in &self.groups {
            let (idx, _degraded) = g.read_index(Duration::from_secs(5))?;
            let r = &g.replicas[idx];
            let (table, mgr) = (r.table(), r.mgr());
            for b in table.scan(&all, &ScanPredicate::all(), mgr.now(), NOBODY, 4096)? {
                rows.extend(b.to_rows());
            }
        }
        rows.sort();
        Ok(rows)
    }

    /// Crashes every replica hosted on cluster node `node`.
    pub fn crash_node(&self, node: usize) {
        for g in &self.groups {
            for (i, &m) in g.members.iter().enumerate() {
                if m == node {
                    g.replicas[i].raft.crash();
                }
            }
        }
    }

    /// Restarts every replica hosted on cluster node `node`.
    pub fn restart_node(&self, node: usize) {
        for g in &self.groups {
            for (i, &m) in g.members.iter().enumerate() {
                if m == node {
                    g.replicas[i].raft.restart();
                }
            }
        }
    }

    /// Restarts every replica on `node` after *wiping* its local storage
    /// (the machine came back with its Raft log but an empty data disk).
    /// The restarted Raft workers re-apply the whole log into the fresh
    /// tables, so the node converges back to the replicated state.
    pub fn restart_node_rebuilt(&self, node: usize) {
        for g in &self.groups {
            for (i, &m) in g.members.iter().enumerate() {
                if m == node {
                    g.replicas[i].store.wipe();
                    g.replicas[i].raft.restart();
                }
            }
        }
    }

    /// Waits until every partition's replicas have applied the same number
    /// of entries (quiesce helper for tests).
    pub fn wait_converged(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let converged = self.groups.iter().all(|g| {
                let counts: Vec<usize> = g
                    .replicas
                    .iter()
                    .filter(|r| r.raft.is_running())
                    .map(|r| r.table().row_count_estimate())
                    .collect();
                counts.windows(2).all(|w| w[0] == w[1])
            });
            if converged {
                return true;
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::row;
    use oltap_common::{DataType, Field, Schema, Value};
    use oltap_storage::CmpOp;

    fn schema() -> SchemaRef {
        Arc::new(
            Schema::with_primary_key(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::new("v", DataType::Int64),
                ],
                &["id"],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_aggregate() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..60 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        let (count, sum) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 60);
        assert_eq!(sum, 60);
    }

    #[test]
    fn matches_single_node_oracle() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        let local = DeltaMainTable::new(schema());
        let mgr: Arc<TransactionManager> = Arc::new(TransactionManager::new());
        for i in 0..40 {
            let r = row![i as i64, (i % 7) as i64];
            t.insert(r.clone()).unwrap();
            let tx = mgr.begin();
            local.insert(&tx, r).unwrap();
            tx.commit().unwrap();
        }
        let pred = ScanPredicate::single(1, CmpOp::Ge, Value::Int(3));
        let (dc, ds) = t.scan_aggregate(&pred, 1).unwrap();
        let batches = local
            .scan(&[1], &pred, mgr.now(), TxnId(u64::MAX - 5), 4096)
            .unwrap();
        let lc: usize = batches.iter().map(|b| b.len()).sum();
        let ls: i64 = batches
            .iter()
            .flat_map(|b| b.to_rows())
            .map(|r| r[0].as_int().unwrap())
            .sum();
        assert_eq!(dc as usize, lc);
        assert_eq!(ds, ls);
    }

    #[test]
    fn rows_partition_consistently() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..30 {
            t.insert(row![i as i64, i as i64]).unwrap();
        }
        let rows = t.collect_all().unwrap();
        assert_eq!(rows.len(), 30);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[29][0], Value::Int(29));
    }

    #[test]
    fn replicas_converge() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..20 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        assert!(t.wait_converged(Duration::from_secs(10)));
        // Every replica of every partition holds identical data.
        for g in t.groups() {
            let all: Vec<usize> = vec![0, 1];
            let mut views: Vec<Vec<Row>> = Vec::new();
            for r in &g.replicas {
                let mut rows: Vec<Row> = r
                    .table()
                    .scan(&all, &ScanPredicate::all(), r.mgr().now(), NOBODY, 4096)
                    .unwrap()
                    .iter()
                    .flat_map(|b| b.to_rows())
                    .collect();
                rows.sort();
                views.push(rows);
            }
            for w in views.windows(2) {
                assert_eq!(w[0], w[1], "replica divergence in {}", g.id);
            }
        }
    }

    #[test]
    fn survives_single_node_crash() {
        let t = DistributedTable::new(schema(), ClusterConfig::small()).unwrap();
        for i in 0..10 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        t.crash_node(1);
        // Writes and reads continue on the surviving majority.
        for i in 10..20 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        let (count, _) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 20);
        // The crashed node catches up after restart.
        t.restart_node(1);
        assert!(t.wait_converged(Duration::from_secs(15)));
    }

    #[test]
    fn degraded_read_without_quorum() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 1,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        for i in 0..12 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        assert!(t.wait_converged(Duration::from_secs(10)));
        // Kill two of three replicas: the survivor cannot win an election,
        // so the partition has no leader...
        let g = &t.groups()[0];
        let survivor = (g.leader_index(Duration::from_secs(5)).unwrap() + 1) % 3;
        for i in 0..3 {
            if i != survivor {
                g.replicas[i].raft.crash();
            }
        }
        assert!(g.leader_index(Duration::from_millis(600)).is_err());
        // ...but the degraded-read path still serves the replicated data.
        let (idx, degraded) = g.read_index(Duration::from_millis(300)).unwrap();
        assert_eq!(idx, survivor);
        assert!(degraded);
        let (count, _) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 12);
    }

    #[test]
    fn wiped_replica_rebuilds_from_raft_log() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 2,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        for i in 0..24 {
            t.insert(row![i as i64, i as i64]).unwrap();
        }
        assert!(t.wait_converged(Duration::from_secs(10)));
        let before = t.collect_all().unwrap();

        // Node 2 loses its data disk entirely, then comes back: local
        // tables are empty until the Raft log is re-applied.
        t.crash_node(2);
        for g in t.groups() {
            for (i, &m) in g.members.iter().enumerate() {
                if m == 2 {
                    g.replicas[i].store.wipe();
                    assert_eq!(g.replicas[i].table().row_count_estimate(), 0);
                }
            }
        }
        t.restart_node_rebuilt(2);
        assert!(
            t.wait_converged(Duration::from_secs(15)),
            "wiped node failed to rebuild from the log"
        );
        assert_eq!(t.collect_all().unwrap(), before);
    }

    #[test]
    fn scan_retries_through_injected_partition_failure() {
        use oltap_common::fault::FaultPoint;
        let faults = FaultInjector::new(0xD15C);
        // The first two partition scans fail; retries succeed.
        faults.arm(points::SCAN_PARTITION_FAIL, FaultPoint::times(2));
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 2,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new_with_faults(schema(), cfg, Arc::clone(&faults)).unwrap();
        for i in 0..10 {
            t.insert(row![i as i64, 1i64]).unwrap();
        }
        let (count, sum) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 10);
        assert_eq!(sum, 10);
        assert_eq!(faults.fired_count(), 2, "both armed failures consumed");
    }

    #[test]
    fn shard_cmd_roundtrip() {
        let cmds = vec![
            ShardCmd::Insert(row![1i64, 2i64]),
            ShardCmd::Prepare {
                gtxn: 0xDEAD_BEEF,
                rows: vec![row![3i64, 4i64], row![5i64, 6i64]],
            },
            ShardCmd::Prepare {
                gtxn: 7,
                rows: vec![],
            },
            ShardCmd::Decide {
                gtxn: 42,
                commit: true,
            },
            ShardCmd::Decide {
                gtxn: 43,
                commit: false,
            },
        ];
        for cmd in cmds {
            assert_eq!(ShardCmd::decode(&cmd.encode()).unwrap(), cmd);
        }
        assert!(ShardCmd::decode(&[]).is_err());
        assert!(ShardCmd::decode(&[9, 0, 0]).is_err());
        assert!(ShardCmd::decode(&[1, 1, 2]).is_err());
    }

    #[test]
    fn prepared_rows_invisible_until_decided() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 1,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        let g = &t.groups()[0];
        g.propose_cmd(
            &ShardCmd::Prepare {
                gtxn: 101,
                rows: vec![row![1i64, 10i64], row![2i64, 20i64]],
            },
            Duration::from_secs(10),
        )
        .unwrap();
        assert!(
            g.prepare_outcome(101, Duration::from_secs(5)).unwrap(),
            "clean staging must vote commit"
        );
        // Staged versions are pending: invisible to reads.
        assert_eq!(t.collect_all().unwrap().len(), 0);
        assert_eq!(g.in_doubt_gtxns(), vec![101]);
        // Decision commits them.
        g.propose_cmd(
            &ShardCmd::Decide {
                gtxn: 101,
                commit: true,
            },
            Duration::from_secs(10),
        )
        .unwrap();
        assert_eq!(t.collect_all().unwrap().len(), 2);
        // Followers apply the decision asynchronously; poll until the
        // whole group has cleared its in-doubt set.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !g.in_doubt_gtxns().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "decision never cleared the in-doubt set"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(g.decided(101), Some(true));
    }

    #[test]
    fn aborted_prepare_rolls_back_staged_rows() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 1,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        let g = &t.groups()[0];
        g.propose_cmd(
            &ShardCmd::Prepare {
                gtxn: 55,
                rows: vec![row![9i64, 90i64]],
            },
            Duration::from_secs(10),
        )
        .unwrap();
        g.propose_cmd(
            &ShardCmd::Decide {
                gtxn: 55,
                commit: false,
            },
            Duration::from_secs(10),
        )
        .unwrap();
        assert_eq!(t.collect_all().unwrap().len(), 0, "abort leaves no rows");
        assert_eq!(g.decided(55), Some(false));
        // A later insert of the same key succeeds: the staged version was
        // rolled back, not leaked.
        t.insert(row![9i64, 91i64]).unwrap();
        assert_eq!(t.collect_all().unwrap().len(), 1);
    }

    #[test]
    fn participant_checkpoint_bounds_state_growth() {
        let cfg = ClusterConfig {
            nodes: 1,
            replication: 1,
            partitions: 1,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        let g = &t.groups()[0];
        let n = (OUTCOME_RETENTION * 2 + 8) as u64;
        for gtxn in 1..=n {
            g.propose_cmd(
                &ShardCmd::Prepare {
                    gtxn,
                    rows: vec![row![gtxn as i64, 0i64]],
                },
                Duration::from_secs(10),
            )
            .unwrap();
            g.propose_cmd(
                &ShardCmd::Decide { gtxn, commit: false },
                Duration::from_secs(10),
            )
            .unwrap();
        }
        let store = &g.replicas[0].store;
        {
            let tp = store.twopc.lock();
            assert!(
                tp.outcomes.len() < OUTCOME_RETENTION * 2,
                "outcomes grew unbounded: {}",
                tp.outcomes.len()
            );
            assert!(
                (tp.wal.record_count() as usize) < OUTCOME_RETENTION * 2 + 1,
                "participant WAL grew unbounded: {}",
                tp.wal.record_count()
            );
        }
        // Recent outcomes are retained for idempotent re-delivery; the
        // oldest were forgotten at checkpoint.
        assert_eq!(store.decided(n), Some(false));
        assert_eq!(store.decided(1), None);
        // The incremental in-doubt set agrees with the WAL-replay oracle,
        // before and after an undecided prepare.
        assert_eq!(store.in_doubt(), store.wal_in_doubt());
        assert!(store.in_doubt().is_empty());
        g.propose_cmd(
            &ShardCmd::Prepare {
                gtxn: n + 1,
                rows: vec![row![(n + 1) as i64, 0i64]],
            },
            Duration::from_secs(10),
        )
        .unwrap();
        assert_eq!(store.in_doubt(), vec![n + 1]);
        assert_eq!(store.wal_in_doubt(), vec![n + 1]);
    }

    #[test]
    fn leaderless_partition_reports_shard_unavailable() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 3,
            partitions: 1,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        let g = &t.groups()[0];
        // Kill everything: both the leader wait and the degraded fallback
        // must fail with the typed error naming the partition.
        for r in &g.replicas {
            r.raft.crash();
        }
        match g.leader_index(Duration::from_millis(200)) {
            Err(DbError::ShardUnavailable { partition, .. }) => assert_eq!(partition, 0),
            other => panic!("expected ShardUnavailable, got {other:?}"),
        }
        match g.read_index(Duration::from_millis(200)) {
            Err(DbError::ShardUnavailable { partition, .. }) => assert_eq!(partition, 0),
            other => panic!("expected ShardUnavailable, got {other:?}"),
        }
    }

    #[test]
    fn rejects_rf_above_nodes() {
        let cfg = ClusterConfig {
            nodes: 2,
            replication: 3,
            partitions: 2,
            raft: RaftConfig::default(),
        };
        assert!(DistributedTable::new(schema(), cfg).is_err());
    }

    #[test]
    fn replication_factor_one_works() {
        let cfg = ClusterConfig {
            nodes: 3,
            replication: 1,
            partitions: 3,
            raft: RaftConfig::default(),
        };
        let t = DistributedTable::new(schema(), cfg).unwrap();
        for i in 0..15 {
            t.insert(row![i as i64, 2i64]).unwrap();
        }
        let (count, sum) = t.scan_aggregate(&ScanPredicate::all(), 1).unwrap();
        assert_eq!(count, 15);
        assert_eq!(sum, 30);
    }
}
