//! A simplified Raft consensus implementation for partition replication.
//!
//! Kudu — the storage engine the tutorial pairs with Impala for OLTAP over
//! data lakes (§3, \[24\]) — "distributes data using horizontal partitioning
//! and replicates each partition using Raft consensus". This module
//! implements the Raft core that design needs, from scratch:
//!
//! * randomized election timeouts, terms, and majority voting
//!   (election safety: at most one leader per term);
//! * log replication with the `prevLogIndex`/`prevLogTerm` consistency
//!   check (the Log Matching property);
//! * commitment by majority `matchIndex`, restricted to entries of the
//!   leader's current term (figure 8 rule);
//! * crash/restart of nodes with retained persistent state, and link
//!   failure injection for partition tests;
//! * log compaction by threshold: once the retained log exceeds
//!   [`RaftConfig::snapshot_threshold`] entries, the node snapshots its
//!   state machine and truncates the applied prefix. A restarted node
//!   recovers from snapshot + log tail instead of full replay, and a
//!   leader whose log no longer reaches a slow follower ships the
//!   snapshot over the wire (`InstallSnapshot`);
//! * leader leases: a leader that heard from a majority within one
//!   election-timeout minimum knows no disjoint majority can have elected
//!   a successor, so its `commit_index` is safe to serve for local reads
//!   ([`NodeReport::lease_valid`]).
//!
//! **Substitution:** nodes are threads and the transport is in-process
//! channels with injectable link failures — the protocol logic is real,
//! only the wire is simulated (see DESIGN.md).
//!
//! Scope cuts relative to full Raft: no membership changes, no pre-vote.
//! These are orthogonal to what the experiments exercise.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use oltap_common::fault::{points, FaultInjector};
use oltap_common::hash::FxHashMap;
use oltap_common::ids::NodeId;
use oltap_common::{DbError, Result};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A replicated command (opaque bytes; the cluster layer serializes rows).
pub type Command = Vec<u8>;

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the entry was created.
    pub term: u64,
    /// The command payload.
    pub command: Command,
}

/// Raft role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Election in progress.
    Candidate,
    /// The (unique, per term) leader.
    Leader,
}

/// Messages exchanged between peers.
#[derive(Debug, Clone)]
enum Rpc {
    RequestVote {
        term: u64,
        candidate: NodeId,
        last_log_index: u64,
        last_log_term: u64,
    },
    VoteResponse {
        term: u64,
        granted: bool,
    },
    AppendEntries {
        term: u64,
        leader: NodeId,
        prev_log_index: u64,
        prev_log_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
    },
    AppendResponse {
        term: u64,
        from: NodeId,
        success: bool,
        match_index: u64,
    },
    /// Leader → follower: the follower's `next_index` fell behind the
    /// leader's compacted log, so the leader ships its whole snapshot.
    InstallSnapshot {
        term: u64,
        leader: NodeId,
        /// Index of the last entry covered by the snapshot.
        last_index: u64,
        /// Term of that entry.
        last_term: u64,
        /// Opaque state-machine snapshot ([`StateMachine::snapshot`]).
        data: Vec<u8>,
    },
    /// Follower → leader: outcome of an install. A failed install
    /// (`raft.snapshot_install_fail`) is retried at the next heartbeat,
    /// not immediately — the follower meanwhile keeps answering
    /// AppendEntries, so entries still present in the leader's log reach
    /// it through ordinary replication (the log-replay fallback).
    InstallResponse {
        term: u64,
        from: NodeId,
        success: bool,
        /// The snapshot index this responds to (0 on a term mismatch).
        last_index: u64,
    },
}

/// Everything a node's event loop can receive, in one channel: peer RPCs
/// and local control messages. Merging them lets the loop block on exactly
/// one receiver with `recv_timeout` — the election/heartbeat timer is the
/// timeout — instead of a multi-channel select.
enum Event {
    /// An RPC from a peer, tagged with the sender.
    Rpc(NodeId, Rpc),
    /// Client proposal (answered once committed, or failed on deposal).
    Propose {
        command: Command,
        reply: Sender<Result<u64>>,
    },
    /// State snapshot request.
    Inspect(Sender<NodeReport>),
    /// Shut the loop down.
    Stop,
}

/// A point-in-time view of a node, for tests and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeReport {
    /// Node id.
    pub id: NodeId,
    /// Current term.
    pub term: u64,
    /// Current role.
    pub role: Role,
    /// Highest committed index.
    pub commit_index: u64,
    /// Retained log *tail* — entries after `snap_index` (the full log
    /// when no snapshot has been taken).
    pub log: Vec<LogEntry>,
    /// Index of the last entry folded into the snapshot (0 = none).
    pub snap_index: u64,
    /// Term of that entry.
    pub snap_term: u64,
    /// Where this boot started applying from: the snapshot index at
    /// startup. A node that recovered from a snapshot has
    /// `replay_base > 0` — it replayed only the tail, not the full log.
    pub replay_base: u64,
    /// Entries applied since this boot (replay-length instrumentation:
    /// recovery cost ≈ `applied_since_boot`, not `commit_index`).
    pub applied_since_boot: u64,
    /// Snapshots this boot has taken (threshold compactions).
    pub snapshots_taken: u64,
    /// Leader lease: true iff this node is leader *and* heard from a
    /// majority within one `election_min` window, so no disjoint majority
    /// can have elected a successor — local reads at `commit_index` are
    /// linearizable without a quorum round-trip.
    pub lease_valid: bool,
}

/// Durable state that survives a simulated crash.
#[derive(Debug, Default)]
struct PersistentState {
    current_term: u64,
    voted_for: Option<NodeId>,
    /// Entries *after* `snap_index`: `log[k]` has global index
    /// `snap_index + k + 1` (so with no snapshot, `log[0]` is index 1).
    log: Vec<LogEntry>,
    /// Last log index folded into the snapshot (0 = no snapshot).
    snap_index: u64,
    /// Term of the entry at `snap_index`.
    snap_term: u64,
    /// The state-machine snapshot covering indices `1..=snap_index`.
    snap_data: Vec<u8>,
}

impl PersistentState {
    /// Global index of the last log entry (compacted or retained).
    fn last_index(&self) -> u64 {
        self.snap_index + self.log.len() as u64
    }

    /// Term of the last log entry.
    fn last_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(self.snap_term)
    }

    /// Term of the entry at global `index`; `None` if compacted away
    /// (below the snapshot) or beyond the end of the log.
    fn term_at(&self, index: u64) -> Option<u64> {
        if index == self.snap_index {
            Some(self.snap_term) // index 0 ⇒ term 0 when no snapshot
        } else if index < self.snap_index {
            None
        } else {
            self.log.get((index - self.snap_index - 1) as usize).map(|e| e.term)
        }
    }

    /// The entry at global `index`, if retained.
    fn entry_at(&self, index: u64) -> Option<&LogEntry> {
        if index <= self.snap_index {
            None
        } else {
            self.log.get((index - self.snap_index - 1) as usize)
        }
    }
}

/// The in-process "wire" between nodes. The network owns the *topology*
/// faults — partitions cut links deterministically — while probabilistic
/// message-level faults (drop/delay/duplicate) live in the
/// [`LossyTransport`] wrapped around it.
pub struct Network {
    senders: RwLock<FxHashMap<NodeId, Sender<Event>>>,
    /// Links currently down, as (from, to) pairs (directional).
    down: RwLock<oltap_common::hash::FxHashSet<(NodeId, NodeId)>>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network {
            senders: RwLock::new(FxHashMap::default()),
            down: RwLock::new(Default::default()),
        }
    }

    fn register(&self, id: NodeId, tx: Sender<Event>) {
        self.senders.write().insert(id, tx);
    }

    fn send(&self, from: NodeId, to: NodeId, msg: Rpc) {
        if self.down.read().contains(&(from, to)) {
            return; // dropped on the floor, like a real partition
        }
        if let Some(tx) = self.senders.read().get(&to) {
            let _ = tx.send(Event::Rpc(from, msg));
        }
    }

    /// Cuts both directions between `a` and `b`.
    pub fn cut(&self, a: NodeId, b: NodeId) {
        let mut down = self.down.write();
        down.insert((a, b));
        down.insert((b, a));
    }

    /// Restores both directions between `a` and `b`.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut down = self.down.write();
        down.remove(&(a, b));
        down.remove(&(b, a));
    }

    /// Isolates `n` from every peer.
    pub fn isolate(&self, n: NodeId, peers: &[NodeId]) {
        for &p in peers {
            if p != n {
                self.cut(n, p);
            }
        }
    }

    /// Reconnects `n` to every peer.
    pub fn reconnect(&self, n: NodeId, peers: &[NodeId]) {
        for &p in peers {
            if p != n {
                self.heal(n, p);
            }
        }
    }
}

/// A message queued for delayed delivery by the [`LossyTransport`] pump.
struct DelayedMsg {
    due: Instant,
    from: NodeId,
    to: NodeId,
    msg: Rpc,
}

/// Commands to the delay-pump thread.
enum PumpMsg {
    Deliver(DelayedMsg),
    Stop,
}

/// A fault-injecting wrapper around the [`Network`]: consults a
/// [`FaultInjector`] on every outgoing message and may **drop**
/// (`raft.drop_msg`), **duplicate** (`raft.dup_msg`), or **delay**
/// (`raft.delay_msg`) it. Delayed messages are re-delivered by a single
/// lazily-spawned pump thread, which also yields *reordering*: a delayed
/// message overtakes nothing, but everything sent after it overtakes *it*.
///
/// Each node owns its transport (wrapping the shared network), so
/// per-node injectors can express asymmetric faults ("node 2's messages
/// are lossy, the rest are fine") and keep decision streams deterministic
/// per sender.
pub struct LossyTransport {
    network: Arc<Network>,
    faults: Arc<FaultInjector>,
    /// Upper bound on one injected delay.
    max_delay: Duration,
    pump: Mutex<Option<(Sender<PumpMsg>, JoinHandle<()>)>>,
}

impl LossyTransport {
    /// A transport with no faults armed — the production default; probes
    /// cost one atomic load.
    pub fn passthrough(network: Arc<Network>) -> Arc<LossyTransport> {
        Self::new(network, FaultInjector::disabled())
    }

    /// A transport consulting `faults` on every send.
    pub fn new(network: Arc<Network>, faults: Arc<FaultInjector>) -> Arc<LossyTransport> {
        Arc::new(LossyTransport {
            network,
            faults,
            max_delay: Duration::from_millis(40),
            pump: Mutex::new(None),
        })
    }

    /// The injector this transport consults.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    fn send(&self, from: NodeId, to: NodeId, msg: Rpc) {
        if self.faults.should_fire(points::RAFT_DROP_MSG) {
            return; // lost on the wire
        }
        let dup = self.faults.should_fire(points::RAFT_DUP_MSG);
        if let Some(v) = self.faults.fire_value(points::RAFT_DELAY_MSG) {
            let delay = Duration::from_millis(v % self.max_delay.as_millis() as u64 + 1);
            self.enqueue_delayed(DelayedMsg {
                due: Instant::now() + delay,
                from,
                to,
                msg: msg.clone(),
            });
            if dup {
                self.network.send(from, to, msg);
            }
            return;
        }
        self.network.send(from, to, msg.clone());
        if dup {
            self.network.send(from, to, msg);
        }
    }

    fn enqueue_delayed(&self, dm: DelayedMsg) {
        let mut pump = self.pump.lock();
        if pump.is_none() {
            let (tx, rx) = unbounded::<PumpMsg>();
            let network = Arc::clone(&self.network);
            let handle = std::thread::Builder::new()
                .name("raft-delay-pump".into())
                .spawn(move || Self::run_pump(network, rx))
                .expect("spawn delay pump");
            *pump = Some((tx, handle));
        }
        let _ = pump.as_ref().expect("pump just installed").0.send(PumpMsg::Deliver(dm));
    }

    fn run_pump(network: Arc<Network>, rx: Receiver<PumpMsg>) {
        // A Vec with linear min-scan: injected delays are rare and short,
        // so the queue stays tiny.
        let mut queue: Vec<DelayedMsg> = Vec::new();
        loop {
            let now = Instant::now();
            // Deliver everything due.
            let mut i = 0;
            while i < queue.len() {
                if queue[i].due <= now {
                    let dm = queue.swap_remove(i);
                    network.send(dm.from, dm.to, dm.msg);
                } else {
                    i += 1;
                }
            }
            let wait = queue
                .iter()
                .map(|d| d.due.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_secs(3600));
            match rx.recv_timeout(wait) {
                Ok(PumpMsg::Deliver(dm)) => queue.push(dm),
                Ok(PumpMsg::Stop) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {} // loop delivers due msgs
            }
        }
    }
}

impl Drop for LossyTransport {
    fn drop(&mut self) {
        if let Some((tx, handle)) = self.pump.lock().take() {
            let _ = tx.send(PumpMsg::Stop);
            let _ = handle.join();
        }
    }
}

/// Timing configuration (scaled down for fast in-process tests).
#[derive(Debug, Clone, Copy)]
pub struct RaftConfig {
    /// Election timeout lower bound.
    pub election_min: Duration,
    /// Election timeout upper bound.
    pub election_max: Duration,
    /// Leader heartbeat interval.
    pub heartbeat: Duration,
    /// Compact the log once it retains this many entries: snapshot the
    /// state machine and truncate the applied prefix. `None` (the
    /// default) never compacts — the pre-compaction behavior.
    pub snapshot_threshold: Option<usize>,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_min: Duration::from_millis(75),
            election_max: Duration::from_millis(150),
            heartbeat: Duration::from_millis(25),
            snapshot_threshold: None,
        }
    }
}

/// Callback invoked with each committed command, in log order.
pub type ApplyFn = Arc<dyn Fn(u64, &Command) + Send + Sync>;

/// The replicated state machine a node drives: `apply` consumes committed
/// commands in log order; `snapshot`/`restore` serialize the full state for
/// log compaction and `InstallSnapshot`. The worker thread is the only
/// caller of all three, so `snapshot()` observes the state exactly at
/// `last_applied` — no coordination needed.
#[derive(Clone)]
pub struct StateMachine {
    /// Committed-command callback (index, payload), in log order.
    pub apply: ApplyFn,
    /// Serializes the current state (everything applied so far).
    pub snapshot: SnapshotFn,
    /// Replaces the state wholesale with a serialized snapshot.
    pub restore: RestoreFn,
}

/// Serializer for a [`StateMachine`]'s full state.
pub type SnapshotFn = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// Wholesale state replacement from a serialized snapshot.
pub type RestoreFn = Arc<dyn Fn(&[u8]) + Send + Sync>;

impl StateMachine {
    /// A machine with no snapshot support (empty snapshots, no-op
    /// restore) — only sound with `snapshot_threshold: None`.
    pub fn apply_only(apply: ApplyFn) -> StateMachine {
        StateMachine {
            apply,
            snapshot: Arc::new(Vec::new),
            restore: Arc::new(|_| {}),
        }
    }
}

/// A handle to a running Raft node.
pub struct RaftNode {
    id: NodeId,
    control: Mutex<Sender<Event>>,
    running: Arc<AtomicBool>,
    thread: Mutex<Option<JoinHandle<()>>>,
    // Retained for crash/restart.
    persistent: Arc<Mutex<PersistentState>>,
    network: Arc<Network>,
    transport: Arc<LossyTransport>,
    faults: Arc<FaultInjector>,
    peers: Vec<NodeId>,
    config: RaftConfig,
    machine: StateMachine,
    /// Cooperative crash trigger: set (e.g. from inside the apply
    /// callback) to make the event loop die before its next event,
    /// exactly like `raft.crash_node`. Lets a state machine crash "its
    /// own" node at a precise apply point (2PC participant chaos).
    kill_switch: Arc<AtomicBool>,
    event_rx_holder: Mutex<Option<Receiver<Event>>>,
}

impl RaftNode {
    /// Spawns a node with fresh persistent state and no faults armed.
    pub fn spawn(
        id: NodeId,
        peers: Vec<NodeId>,
        network: Arc<Network>,
        config: RaftConfig,
        apply: ApplyFn,
    ) -> Arc<RaftNode> {
        Self::spawn_with_faults(id, peers, network, config, apply, FaultInjector::disabled())
    }

    /// Spawns a node whose outgoing transport and event loop consult
    /// `faults` (`raft.drop_msg`, `raft.delay_msg`, `raft.dup_msg`,
    /// `raft.crash_node`). No snapshot support; pair with
    /// `snapshot_threshold: None`.
    pub fn spawn_with_faults(
        id: NodeId,
        peers: Vec<NodeId>,
        network: Arc<Network>,
        config: RaftConfig,
        apply: ApplyFn,
        faults: Arc<FaultInjector>,
    ) -> Arc<RaftNode> {
        Self::spawn_with_machine(
            id,
            peers,
            network,
            config,
            StateMachine::apply_only(apply),
            faults,
        )
    }

    /// Spawns a node over a full [`StateMachine`] (snapshot-capable).
    pub fn spawn_with_machine(
        id: NodeId,
        peers: Vec<NodeId>,
        network: Arc<Network>,
        config: RaftConfig,
        machine: StateMachine,
        faults: Arc<FaultInjector>,
    ) -> Arc<RaftNode> {
        let persistent = Arc::new(Mutex::new(PersistentState::default()));
        let (event_tx, event_rx) = unbounded();
        network.register(id, event_tx.clone());
        let transport = LossyTransport::new(Arc::clone(&network), Arc::clone(&faults));
        let node = Arc::new(RaftNode {
            id,
            control: Mutex::new(event_tx),
            running: Arc::new(AtomicBool::new(true)),
            thread: Mutex::new(None),
            persistent,
            network,
            transport,
            faults,
            peers,
            config,
            machine,
            kill_switch: Arc::new(AtomicBool::new(false)),
            event_rx_holder: Mutex::new(Some(event_rx)),
        });
        node.start_thread();
        node
    }

    fn start_thread(self: &Arc<Self>) {
        let event_rx = self.event_rx_holder.lock().take().expect("event rx");
        let worker = Worker {
            id: self.id,
            peers: self.peers.clone(),
            transport: Arc::clone(&self.transport),
            faults: Arc::clone(&self.faults),
            config: self.config,
            persistent: Arc::clone(&self.persistent),
            machine: self.machine.clone(),
            running: Arc::clone(&self.running),
            kill_switch: Arc::clone(&self.kill_switch),
        };
        let handle = std::thread::Builder::new()
            .name(format!("raft-{}", self.id))
            .spawn(move || worker.run(event_rx))
            .expect("spawn raft node");
        *self.thread.lock() = Some(handle);
    }

    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Proposes a command; succeeds (with its log index) only on the
    /// current leader.
    pub fn propose(&self, command: Command) -> Result<u64> {
        let (tx, rx) = unbounded();
        self.control
            .lock()
            .send(Event::Propose { command, reply: tx })
            .map_err(|_| DbError::Cluster("node stopped".into()))?;
        rx.recv_timeout(Duration::from_secs(5))
            .map_err(|_| DbError::Cluster("propose timed out".into()))?
    }

    /// Snapshot of the node's state.
    pub fn report(&self) -> Option<NodeReport> {
        let (tx, rx) = unbounded();
        self.control.lock().send(Event::Inspect(tx)).ok()?;
        rx.recv_timeout(Duration::from_secs(2)).ok()
    }

    /// The fault injector wired into this node's transport and loop.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// The cooperative crash trigger: set it to `true` to kill the event
    /// loop before its next event (persistent state retained, like
    /// `raft.crash_node`). Handed to apply callbacks that need to crash
    /// their own node at a precise point.
    pub fn kill_switch(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.kill_switch)
    }

    /// Simulated crash: the event loop stops; persistent state is kept.
    pub fn crash(&self) {
        self.running.store(false, Ordering::SeqCst);
        let _ = self.control.lock().send(Event::Stop);
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }

    /// Restart after a crash, resuming from persistent state.
    pub fn restart(self: &Arc<Self>) {
        if self.running.swap(true, Ordering::SeqCst) {
            return; // already running
        }
        let (event_tx, event_rx) = unbounded();
        self.network.register(self.id, event_tx.clone());
        // Safety of replacing control: old sender becomes stale; propose()
        // uses the new one.
        // (Interior mutability via unsafe is avoided by storing in Mutexes.)
        *self.event_rx_holder.lock() = Some(event_rx);
        *self.control.lock() = event_tx;
        self.start_thread();
    }

    /// Whether the node's event loop is running.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }
}

impl Drop for RaftNode {
    fn drop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        let _ = self.control.lock().send(Event::Stop);
        if let Some(h) = self.thread.lock().take() {
            let _ = h.join();
        }
    }
}

struct Worker {
    id: NodeId,
    peers: Vec<NodeId>,
    transport: Arc<LossyTransport>,
    faults: Arc<FaultInjector>,
    config: RaftConfig,
    persistent: Arc<Mutex<PersistentState>>,
    machine: StateMachine,
    running: Arc<AtomicBool>,
    kill_switch: Arc<AtomicBool>,
}

struct VolatileLeader {
    next_index: FxHashMap<NodeId, u64>,
    match_index: FxHashMap<NodeId, u64>,
    /// Lease ack time per peer. A response to our Append/Install proves
    /// the follower reset its election timer — but the no-election
    /// promise began when the follower *received* our request, so the
    /// lease must be measured from no later than when the request was
    /// sent. Timestamping at response receipt would stretch the lease by
    /// the response's transport delay and let a deposed leader serve a
    /// stale read as linearizable.
    acks: FxHashMap<NodeId, Instant>,
    /// Send time of the oldest outstanding (unanswered) Append/Install
    /// to each peer; adopted into `acks` when a response arrives.
    /// Keeping the *oldest* send is conservative: the response may be to
    /// any outstanding request, and an earlier timestamp only shortens
    /// the lease.
    pending_since: FxHashMap<NodeId, Instant>,
}

impl VolatileLeader {
    fn new() -> Self {
        VolatileLeader {
            next_index: FxHashMap::default(),
            match_index: FxHashMap::default(),
            acks: FxHashMap::default(),
            pending_since: FxHashMap::default(),
        }
    }

    /// Records a response from `from`: the follower's promise covers at
    /// least the window starting at our oldest outstanding send to it.
    fn ack_from_send_time(&mut self, from: NodeId) {
        if let Some(sent) = self.pending_since.remove(&from) {
            self.acks.insert(from, sent);
        }
    }
}

/// Per-boot volatile node state, threaded through the event loop.
struct Volatile {
    role: Role,
    votes: usize,
    commit_index: u64,
    last_applied: u64,
    leader_state: Option<VolatileLeader>,
    deadline: Instant,
    /// Snapshot index at boot — where replay started (instrumentation).
    replay_base: u64,
    /// Entries applied since boot (replay-length instrumentation).
    applied_since_boot: u64,
    /// Threshold compactions performed this boot.
    snapshots_taken: u64,
}

impl Worker {
    fn run(self, event_rx: Receiver<Event>) {
        let mut rng = StdRng::seed_from_u64(self.id.raw().wrapping_mul(0x9E3779B97F4A7C15) | 1);
        // Boot: if a snapshot was taken before the crash, restore the
        // state machine from it and start applying at the tail — this is
        // the snapshot-plus-tail recovery path (vs. full log replay).
        let boot_snap = {
            let p = self.persistent.lock();
            if p.snap_index > 0 {
                (self.machine.restore)(&p.snap_data);
            }
            p.snap_index
        };
        let mut v = Volatile {
            role: Role::Follower,
            votes: 0,
            commit_index: boot_snap,
            last_applied: boot_snap,
            leader_state: None,
            deadline: Instant::now() + self.random_timeout(&mut rng),
            replay_base: boot_snap,
            applied_since_boot: 0,
            snapshots_taken: 0,
        };
        let mut pending_replies: Vec<(u64, Sender<Result<u64>>)> = Vec::new();

        loop {
            if !self.running.load(Ordering::SeqCst) {
                return;
            }
            // Injected crash: the node dies between events, exactly like a
            // kill -9 — nothing is flushed, persistent state is whatever
            // was already "on disk". The kill switch is the same death,
            // triggered by the state machine (apply-point crashes).
            if self.faults.should_fire(points::RAFT_CRASH_NODE)
                || self.kill_switch.swap(false, Ordering::SeqCst)
            {
                self.running.store(false, Ordering::SeqCst);
                return;
            }
            // Block on the single event channel; the election/heartbeat
            // timer doubles as the receive timeout.
            let now = Instant::now();
            let timeout = v.deadline.saturating_duration_since(now);
            match event_rx.recv_timeout(timeout) {
                Ok(Event::Rpc(from, rpc)) => {
                    self.handle_rpc(from, rpc, &mut v, &mut rng);
                }
                Ok(Event::Propose { command, reply }) => {
                    if v.role == Role::Leader {
                        let index = {
                            let mut p = self.persistent.lock();
                            let term = p.current_term;
                            p.log.push(LogEntry { term, command });
                            p.last_index()
                        };
                        pending_replies.push((index, reply));
                        self.broadcast_append(&mut v.leader_state, v.commit_index);
                    } else {
                        let _ = reply.send(Err(DbError::Cluster("not the leader".into())));
                    }
                }
                Ok(Event::Inspect(tx)) => {
                    let lease_valid = v.role == Role::Leader
                        && v.leader_state
                            .as_ref()
                            .map(|ls| {
                                let now = Instant::now();
                                let fresh = ls
                                    .acks
                                    .values()
                                    .filter(|&&t| {
                                        now.saturating_duration_since(t) < self.config.election_min
                                    })
                                    .count();
                                fresh + 1 > self.peers.len() / 2
                            })
                            .unwrap_or(false);
                    let p = self.persistent.lock();
                    let _ = tx.send(NodeReport {
                        id: self.id,
                        term: p.current_term,
                        role: v.role,
                        commit_index: v.commit_index,
                        log: p.log.clone(),
                        snap_index: p.snap_index,
                        snap_term: p.snap_term,
                        replay_base: v.replay_base,
                        applied_since_boot: v.applied_since_boot,
                        snapshots_taken: v.snapshots_taken,
                        lease_valid,
                    });
                }
                Ok(Event::Stop) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {
                    // Timer fired.
                    match v.role {
                        Role::Leader => {
                            self.broadcast_append(&mut v.leader_state, v.commit_index);
                            v.deadline = Instant::now() + self.config.heartbeat;
                        }
                        _ => {
                            // Start (or restart) an election.
                            v.role = Role::Candidate;
                            let (term, lli, llt) = {
                                let mut p = self.persistent.lock();
                                p.current_term += 1;
                                p.voted_for = Some(self.id);
                                (p.current_term, p.last_index(), p.last_term())
                            };
                            v.votes = 1;
                            for &peer in &self.peers {
                                if peer != self.id {
                                    self.transport.send(self.id, peer, Rpc::RequestVote {
                                        term,
                                        candidate: self.id,
                                        last_log_index: lli,
                                        last_log_term: llt,
                                    });
                                }
                            }
                            v.deadline = Instant::now() + self.random_timeout(&mut rng);
                        }
                    }
                }
            }

            // Become leader on majority.
            if v.role == Role::Candidate && v.votes > self.peers.len() / 2 {
                v.role = Role::Leader;
                // Append a no-op entry in the new term so entries from
                // previous terms become committable immediately (the
                // figure-8 commit rule otherwise delays them until the
                // next client proposal).
                let last = {
                    let mut p = self.persistent.lock();
                    let term = p.current_term;
                    p.log.push(LogEntry {
                        term,
                        command: Vec::new(),
                    });
                    p.last_index() - 1
                };
                let mut ls = VolatileLeader::new();
                for &p in &self.peers {
                    if p != self.id {
                        ls.next_index.insert(p, last + 1);
                        ls.match_index.insert(p, 0);
                    }
                }
                v.leader_state = Some(ls);
                self.broadcast_append(&mut v.leader_state, v.commit_index);
                v.deadline = Instant::now() + self.config.heartbeat;
            }

            // Leader: advance the commit index by majority match.
            if v.role == Role::Leader {
                if let Some(ls) = &v.leader_state {
                    let p = self.persistent.lock();
                    let mut candidates: Vec<u64> = ls.match_index.values().copied().collect();
                    candidates.push(p.last_index()); // self
                    candidates.sort_unstable();
                    // Majority = the (n/2)-th from the top.
                    let majority_idx = candidates[candidates.len() / 2
                        - if candidates.len().is_multiple_of(2) { 1 } else { 0 }];
                    // Figure-8 rule: only commit entries of the current term.
                    if majority_idx > v.commit_index
                        && p.term_at(majority_idx) == Some(p.current_term)
                    {
                        v.commit_index = majority_idx;
                    }
                }
            }

            // Apply newly committed entries and answer proposers.
            if v.commit_index > v.last_applied {
                let p = self.persistent.lock();
                for idx in v.last_applied + 1..=v.commit_index {
                    if let Some(e) = p.entry_at(idx) {
                        (self.machine.apply)(idx, &e.command);
                        v.applied_since_boot += 1;
                    }
                }
                drop(p);
                v.last_applied = v.commit_index;
                pending_replies.retain(|(idx, tx)| {
                    if *idx <= v.commit_index {
                        let _ = tx.send(Ok(*idx));
                        false
                    } else {
                        true
                    }
                });
            }

            // Threshold compaction: the retained log has grown past the
            // configured bound and there is applied state to fold in.
            // The worker is the sole applier, so `machine.snapshot()` is
            // exactly the state at `last_applied`.
            if let Some(threshold) = self.config.snapshot_threshold {
                let mut p = self.persistent.lock();
                if p.log.len() >= threshold && v.last_applied > p.snap_index {
                    let data = (self.machine.snapshot)();
                    let keep = (v.last_applied - p.snap_index) as usize;
                    let new_term = p.term_at(v.last_applied).unwrap_or(p.snap_term);
                    p.log.drain(..keep);
                    p.snap_index = v.last_applied;
                    p.snap_term = new_term;
                    p.snap_data = data;
                    v.snapshots_taken += 1;
                }
            }

            // A deposed leader must fail its pending proposals.
            if v.role != Role::Leader && !pending_replies.is_empty() {
                for (_, tx) in pending_replies.drain(..) {
                    let _ = tx.send(Err(DbError::Cluster("leadership lost".into())));
                }
            }
        }
    }

    fn random_timeout(&self, rng: &mut StdRng) -> Duration {
        let min = self.config.election_min.as_millis() as u64;
        let max = self.config.election_max.as_millis() as u64;
        Duration::from_millis(rng.gen_range(min..=max))
    }

    fn handle_rpc(&self, _from: NodeId, rpc: Rpc, v: &mut Volatile, rng: &mut StdRng) {
        match rpc {
            Rpc::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                let mut p = self.persistent.lock();
                if term > p.current_term {
                    p.current_term = term;
                    p.voted_for = None;
                    v.role = Role::Follower;
                    v.leader_state = None;
                }
                let my_llt = p.last_term();
                let my_lli = p.last_index();
                let log_ok = last_log_term > my_llt
                    || (last_log_term == my_llt && last_log_index >= my_lli);
                let granted = term == p.current_term
                    && log_ok
                    && (p.voted_for.is_none() || p.voted_for == Some(candidate));
                if granted {
                    p.voted_for = Some(candidate);
                    v.deadline = Instant::now() + self.random_timeout(rng);
                }
                let reply_term = p.current_term;
                drop(p);
                self.transport.send(
                    self.id,
                    candidate,
                    Rpc::VoteResponse {
                        term: reply_term,
                        granted,
                    },
                );
            }
            Rpc::VoteResponse { term, granted } => {
                let mut p = self.persistent.lock();
                if term > p.current_term {
                    p.current_term = term;
                    p.voted_for = None;
                    drop(p);
                    v.role = Role::Follower;
                    v.leader_state = None;
                    return;
                }
                drop(p);
                if v.role == Role::Candidate && granted {
                    v.votes += 1;
                }
            }
            Rpc::AppendEntries {
                term,
                leader,
                mut prev_log_index,
                mut prev_log_term,
                mut entries,
                leader_commit,
            } => {
                let mut p = self.persistent.lock();
                if term > p.current_term {
                    p.current_term = term;
                    p.voted_for = None;
                }
                let success;
                let mut match_index = 0;
                if term < p.current_term {
                    success = false;
                } else {
                    // Valid leader for this term.
                    v.role = Role::Follower;
                    v.leader_state = None;
                    v.deadline = Instant::now() + self.random_timeout(rng);
                    // Entries at or below our snapshot index are already
                    // committed *and applied* here; skip the covered
                    // prefix and anchor the consistency check at the
                    // snapshot boundary.
                    if prev_log_index < p.snap_index {
                        let covered = (p.snap_index - prev_log_index) as usize;
                        entries.drain(..covered.min(entries.len()));
                        prev_log_index = p.snap_index;
                        prev_log_term = p.snap_term;
                    }
                    // Consistency check (global indices; index 0 and the
                    // snapshot boundary both resolve through `term_at`).
                    let prev_ok = p.term_at(prev_log_index) == Some(prev_log_term);
                    if prev_ok {
                        // Append, truncating conflicts.
                        let mut idx = prev_log_index;
                        for e in entries {
                            let pos = (idx - p.snap_index) as usize;
                            if p.log.len() > pos {
                                if p.log[pos].term != e.term {
                                    p.log.truncate(pos);
                                    p.log.push(e);
                                }
                            } else {
                                p.log.push(e);
                            }
                            idx += 1;
                        }
                        success = true;
                        match_index = idx;
                        if leader_commit > v.commit_index {
                            v.commit_index = leader_commit.min(p.last_index());
                        }
                    } else {
                        success = false;
                    }
                }
                let reply_term = p.current_term;
                drop(p);
                self.transport.send(
                    self.id,
                    leader,
                    Rpc::AppendResponse {
                        term: reply_term,
                        from: self.id,
                        success,
                        match_index,
                    },
                );
            }
            Rpc::AppendResponse {
                term,
                from,
                success,
                match_index,
            } => {
                {
                    let mut p = self.persistent.lock();
                    if term > p.current_term {
                        p.current_term = term;
                        p.voted_for = None;
                        v.role = Role::Follower;
                        v.leader_state = None;
                        return;
                    }
                    if term < p.current_term {
                        // Stale response to a request from an older term:
                        // it proves nothing about the follower's timer in
                        // this term.
                        return;
                    }
                }
                if v.role != Role::Leader {
                    return;
                }
                if let Some(ls) = v.leader_state.as_mut() {
                    // Lease ack, measured from when the request was sent.
                    ls.ack_from_send_time(from);
                    if success {
                        ls.match_index.insert(from, match_index);
                        ls.next_index.insert(from, match_index + 1);
                    } else {
                        // Back off and retry immediately.
                        let ni = ls.next_index.entry(from).or_insert(1);
                        *ni = ni.saturating_sub(1).max(1);
                        self.send_append_to(from, ls, v.commit_index);
                    }
                }
            }
            Rpc::InstallSnapshot {
                term,
                leader,
                last_index,
                last_term,
                data,
            } => {
                let mut p = self.persistent.lock();
                if term > p.current_term {
                    p.current_term = term;
                    p.voted_for = None;
                }
                let reply_term = p.current_term;
                let mut success = false;
                let mut acked_index = 0;
                if term >= p.current_term {
                    v.role = Role::Follower;
                    v.leader_state = None;
                    v.deadline = Instant::now() + self.random_timeout(rng);
                    acked_index = last_index;
                    if self.faults.should_fire(points::RAFT_SNAPSHOT_INSTALL_FAIL) {
                        // Injected install failure. The leader retries at
                        // its next heartbeat; meanwhile ordinary
                        // AppendEntries keeps flowing (log-replay
                        // fallback for entries the leader still has).
                    } else if last_index <= v.last_applied {
                        // Stale or duplicate install: we already hold
                        // this state; just acknowledge it.
                        success = true;
                    } else {
                        // Adopt the snapshot wholesale.
                        (self.machine.restore)(&data);
                        if p.term_at(last_index) == Some(last_term) {
                            // Our log extends past the snapshot with a
                            // matching entry: retain the tail.
                            let keep = (last_index - p.snap_index) as usize;
                            p.log.drain(..keep);
                        } else {
                            p.log.clear();
                        }
                        p.snap_index = last_index;
                        p.snap_term = last_term;
                        p.snap_data = data;
                        v.commit_index = v.commit_index.max(last_index);
                        v.last_applied = last_index;
                        success = true;
                    }
                }
                drop(p);
                self.transport.send(
                    self.id,
                    leader,
                    Rpc::InstallResponse {
                        term: reply_term,
                        from: self.id,
                        success,
                        last_index: acked_index,
                    },
                );
            }
            Rpc::InstallResponse {
                term,
                from,
                success,
                last_index,
            } => {
                {
                    let mut p = self.persistent.lock();
                    if term > p.current_term {
                        p.current_term = term;
                        p.voted_for = None;
                        v.role = Role::Follower;
                        v.leader_state = None;
                        return;
                    }
                    if term < p.current_term {
                        return; // stale response from an older term
                    }
                }
                if v.role != Role::Leader {
                    return;
                }
                if let Some(ls) = v.leader_state.as_mut() {
                    // Lease ack, measured from when the install was sent.
                    ls.ack_from_send_time(from);
                    if success {
                        let m = ls.match_index.entry(from).or_insert(0);
                        *m = (*m).max(last_index);
                        let m = *m;
                        let ni = ls.next_index.entry(from).or_insert(1);
                        *ni = (*ni).max(m + 1);
                    }
                    // On failure: wait for the next heartbeat to retry
                    // (no immediate resend — avoids an install hot-loop
                    // when the fault is armed `always`).
                }
            }
        }
    }

    fn broadcast_append(&self, leader_state: &mut Option<VolatileLeader>, commit_index: u64) {
        if let Some(ls) = leader_state.as_mut() {
            let peers: Vec<NodeId> =
                self.peers.iter().copied().filter(|&p| p != self.id).collect();
            for peer in peers {
                self.send_append_to(peer, ls, commit_index);
            }
        }
    }

    fn send_append_to(&self, peer: NodeId, ls: &mut VolatileLeader, commit_index: u64) {
        // Lease bookkeeping: keep the oldest outstanding send time; a
        // later response acks a promise starting no earlier than this.
        ls.pending_since.entry(peer).or_insert_with(Instant::now);
        let p = self.persistent.lock();
        let next = *ls.next_index.get(&peer).unwrap_or(&1);
        if next <= p.snap_index {
            // The entries this follower needs were compacted away: ship
            // the snapshot instead of a log suffix.
            let msg = Rpc::InstallSnapshot {
                term: p.current_term,
                leader: self.id,
                last_index: p.snap_index,
                last_term: p.snap_term,
                data: p.snap_data.clone(),
            };
            drop(p);
            self.transport.send(self.id, peer, msg);
            return;
        }
        let prev_log_index = next - 1;
        let prev_log_term = p.term_at(prev_log_index).unwrap_or(0);
        let entries: Vec<LogEntry> = p
            .log
            .get((prev_log_index - p.snap_index) as usize..)
            .unwrap_or(&[])
            .to_vec();
        let term = p.current_term;
        drop(p);
        self.transport.send(
            self.id,
            peer,
            Rpc::AppendEntries {
                term,
                leader: self.id,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit: commit_index,
            },
        );
    }
}

/// Per-node record of applied `(index, command)` pairs.
pub type AppliedLog = Arc<Mutex<Vec<(u64, Command)>>>;

/// A snapshot-capable [`StateMachine`] over an [`AppliedLog`] sink: the
/// "state" is the list of non-empty applied commands. Snapshot/restore are
/// a simple length-prefixed encoding, so compaction and `InstallSnapshot`
/// are exercised end to end in tests without a real storage engine.
pub fn sink_machine(sink: AppliedLog) -> StateMachine {
    let apply_sink = Arc::clone(&sink);
    let snap_sink = Arc::clone(&sink);
    StateMachine {
        apply: Arc::new(move |idx, cmd: &Command| {
            // Leader no-op entries carry no command; skip them.
            if !cmd.is_empty() {
                apply_sink.lock().push((idx, cmd.clone()));
            }
        }),
        snapshot: Arc::new(move || {
            let a = snap_sink.lock();
            let mut buf = Vec::with_capacity(16 + a.len() * 16);
            buf.extend_from_slice(&(a.len() as u32).to_le_bytes());
            for (idx, cmd) in a.iter() {
                buf.extend_from_slice(&idx.to_le_bytes());
                buf.extend_from_slice(&(cmd.len() as u32).to_le_bytes());
                buf.extend_from_slice(cmd);
            }
            buf
        }),
        restore: Arc::new(move |data: &[u8]| {
            let mut out = Vec::new();
            if data.len() >= 4 {
                let n = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
                let mut off = 4usize;
                for _ in 0..n {
                    if data.len() < off + 12 {
                        break;
                    }
                    let idx = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
                    let len =
                        u32::from_le_bytes(data[off + 8..off + 12].try_into().unwrap()) as usize;
                    off += 12;
                    if data.len() < off + len {
                        break;
                    }
                    out.push((idx, data[off..off + len].to_vec()));
                    off += len;
                }
            }
            *sink.lock() = out;
        }),
    }
}

/// Convenience: a full Raft group with shared apply sinks, used by the
/// cluster layer and tests.
pub struct RaftGroup {
    /// The nodes (index = position in `ids`).
    pub nodes: Vec<Arc<RaftNode>>,
    /// Node ids.
    pub ids: Vec<NodeId>,
    /// The shared network (for failure injection).
    pub network: Arc<Network>,
    /// Per-node applied command logs.
    pub applied: Vec<AppliedLog>,
    /// Per-node fault injectors (disabled unless spawned via
    /// [`RaftGroup::spawn_with_faults`]).
    pub faults: Vec<Arc<FaultInjector>>,
}

impl RaftGroup {
    /// Spawns an `n`-node group with default timing and no faults armed.
    pub fn spawn(n: usize, config: RaftConfig) -> RaftGroup {
        Self::spawn_with_faults(n, config, |_| FaultInjector::disabled())
    }

    /// Spawns an `n`-node group where node `i` uses the injector returned
    /// by `make_faults(i)`. Per-node injectors keep each node's fault
    /// decision stream deterministic regardless of cross-node thread
    /// interleaving.
    pub fn spawn_with_faults(
        n: usize,
        config: RaftConfig,
        make_faults: impl Fn(usize) -> Arc<FaultInjector>,
    ) -> RaftGroup {
        let network = Arc::new(Network::new());
        let ids: Vec<NodeId> = (0..n as u64).map(NodeId).collect();
        let mut nodes = Vec::new();
        let mut applied = Vec::new();
        let mut faults = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let sink: AppliedLog = Arc::new(Mutex::new(Vec::new()));
            let injector = make_faults(i);
            nodes.push(RaftNode::spawn_with_machine(
                id,
                ids.clone(),
                Arc::clone(&network),
                config,
                sink_machine(Arc::clone(&sink)),
                Arc::clone(&injector),
            ));
            applied.push(sink);
            faults.push(injector);
        }
        RaftGroup {
            nodes,
            ids,
            network,
            applied,
            faults,
        }
    }

    /// Waits until exactly one running node is leader, returning its
    /// index. Panics after `timeout`.
    pub fn wait_for_leader(&self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        loop {
            let leaders: Vec<usize> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.is_running())
                .filter_map(|(i, n)| {
                    n.report()
                        .filter(|r| r.role == Role::Leader)
                        .map(|r| (i, r.term))
                })
                // Only the highest-term leader counts (stale leaders may
                // linger briefly on partitioned nodes).
                .max_by_key(|&(_, term)| term)
                .map(|(i, _)| vec![i])
                .unwrap_or_default();
            if let Some(&i) = leaders.first() {
                return i;
            }
            if Instant::now() > deadline {
                panic!("no leader elected within {timeout:?}");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Proposes through the current leader, retrying across elections.
    pub fn propose(&self, command: Command, timeout: Duration) -> Result<u64> {
        let deadline = Instant::now() + timeout;
        loop {
            let leader = self.wait_for_leader(deadline.saturating_duration_since(Instant::now()));
            match self.nodes[leader].propose(command.clone()) {
                Ok(idx) => return Ok(idx),
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RaftConfig {
        RaftConfig::default()
    }

    #[test]
    fn elects_exactly_one_leader() {
        let g = RaftGroup::spawn(3, cfg());
        let leader = g.wait_for_leader(Duration::from_secs(5));
        // Give the cluster a moment to settle, then check uniqueness per
        // term.
        std::thread::sleep(Duration::from_millis(200));
        let reports: Vec<NodeReport> = g.nodes.iter().filter_map(|n| n.report()).collect();
        let max_term = reports.iter().map(|r| r.term).max().unwrap();
        let leaders_at_max: Vec<&NodeReport> = reports
            .iter()
            .filter(|r| r.term == max_term && r.role == Role::Leader)
            .collect();
        assert_eq!(leaders_at_max.len(), 1, "reports: {reports:?}");
        let _ = leader;
    }

    #[test]
    fn replicates_and_commits() {
        let g = RaftGroup::spawn(3, cfg());
        for i in 0..5u8 {
            g.propose(vec![i], Duration::from_secs(5)).unwrap();
        }
        // All nodes eventually apply all 5 commands in order.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let ok = g.applied.iter().all(|a| {
                let a = a.lock();
                a.len() == 5
                    && a.iter().map(|(_, c)| c[0]).collect::<Vec<u8>>() == vec![0, 1, 2, 3, 4]
            });
            if ok {
                break;
            }
            assert!(Instant::now() < deadline, "replication stalled: {:?}",
                g.applied.iter().map(|a| a.lock().len()).collect::<Vec<_>>());
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn follower_crash_does_not_block_commit() {
        let g = RaftGroup::spawn(3, cfg());
        let leader = g.wait_for_leader(Duration::from_secs(5));
        let follower = (leader + 1) % 3;
        g.nodes[follower].crash();
        g.propose(vec![42], Duration::from_secs(5)).unwrap();
        // Majority (2/3) suffices.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let done = g
                .applied
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != follower)
                .all(|(_, a)| a.lock().iter().any(|(_, c)| c == &vec![42]));
            if done {
                break;
            }
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn leader_crash_triggers_reelection_and_catchup() {
        let g = RaftGroup::spawn(3, cfg());
        g.propose(vec![1], Duration::from_secs(5)).unwrap();
        let old_leader = g.wait_for_leader(Duration::from_secs(5));
        g.nodes[old_leader].crash();
        // A new leader emerges among the remaining two.
        let deadline = Instant::now() + Duration::from_secs(10);
        let new_leader = loop {
            let candidates: Vec<usize> = g
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, n)| *i != old_leader && n.is_running())
                .filter_map(|(i, n)| {
                    n.report().filter(|r| r.role == Role::Leader).map(|_| i)
                })
                .collect();
            if let Some(&l) = candidates.first() {
                break l;
            }
            assert!(Instant::now() < deadline, "no re-election");
            std::thread::sleep(Duration::from_millis(20));
        };
        g.nodes[new_leader].propose(vec![2]).unwrap();
        // Crashed node restarts and catches up. Apply state is volatile
        // (as in Raft), so the sink sees a replay; the log and commit
        // index are the ground truth to check.
        g.nodes[old_leader].restart();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(r) = g.nodes[old_leader].report() {
                // Ignore leader no-op entries.
                let cmds: Vec<u8> = r
                    .log
                    .iter()
                    .filter(|e| !e.command.is_empty())
                    .map(|e| e.command[0])
                    .collect();
                let last_data = r
                    .log
                    .iter()
                    .rposition(|e| !e.command.is_empty())
                    .map(|i| i as u64 + 1)
                    .unwrap_or(0);
                if cmds == vec![1, 2] && r.commit_index >= last_data {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "restart catch-up stalled");
            std::thread::sleep(Duration::from_millis(30));
        }
        // The replayed applications are a prefix-repeat, never a reorder.
        let a = g.applied[old_leader].lock();
        let cmds: Vec<u8> = a.iter().map(|(_, c)| c[0]).collect();
        assert!(cmds.ends_with(&[1, 2]), "unexpected apply order {cmds:?}");
    }

    #[test]
    fn isolated_leader_cannot_commit() {
        let g = RaftGroup::spawn(3, cfg());
        let leader = g.wait_for_leader(Duration::from_secs(5));
        g.network.isolate(g.ids[leader], &g.ids);
        // The isolated leader cannot reach a majority: its propose must
        // not be applied on a majority of nodes. (Run it detached — it
        // blocks until the deposed leader fails it.)
        let iso = Arc::clone(&g.nodes[leader]);
        let bg = std::thread::spawn(move || {
            let _ = iso.propose(vec![99]);
        });
        // Meanwhile, the other two elect a fresh leader and commit.
        std::thread::sleep(Duration::from_millis(300));
        let others: Vec<usize> = (0..3).filter(|&i| i != leader).collect();
        let new_leader = loop {
            let found = others.iter().copied().find(|&i| {
                g.nodes[i]
                    .report()
                    .map(|r| r.role == Role::Leader)
                    .unwrap_or(false)
            });
            if let Some(l) = found {
                break l;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        g.nodes[new_leader].propose(vec![7]).unwrap();
        // Heal: the old leader must converge to the majority's log (the
        // uncommitted 99 is truncated).
        g.network.reconnect(g.ids[leader], &g.ids);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let applied = g.applied[leader].lock();
            let cmds: Vec<u8> = applied.iter().map(|(_, c)| c[0]).collect();
            if cmds.contains(&7) {
                assert!(!cmds.contains(&99), "uncommitted entry applied!");
                break;
            }
            drop(applied);
            assert!(Instant::now() < deadline, "healed node never converged");
            std::thread::sleep(Duration::from_millis(30));
        }
        let _ = bg.join();
    }

    #[test]
    fn log_matching_invariant() {
        // After a busy run, any two nodes' logs agree on every index where
        // both have entries with the same term.
        let g = RaftGroup::spawn(5, cfg());
        for i in 0..20u8 {
            g.propose(vec![i], Duration::from_secs(5)).unwrap();
        }
        std::thread::sleep(Duration::from_millis(300));
        let reports: Vec<NodeReport> = g.nodes.iter().filter_map(|n| n.report()).collect();
        for a in &reports {
            for b in &reports {
                let n = a.log.len().min(b.log.len());
                for i in 0..n {
                    if a.log[i].term == b.log[i].term {
                        assert_eq!(
                            a.log[i].command, b.log[i].command,
                            "log matching violated at {i} between {} and {}",
                            a.id, b.id
                        );
                    }
                }
            }
        }
        // All committed prefixes agree.
        let min_commit = reports.iter().map(|r| r.commit_index).min().unwrap();
        assert!(min_commit >= 1);
    }

    #[test]
    fn propose_to_follower_fails() {
        let g = RaftGroup::spawn(3, cfg());
        let leader = g.wait_for_leader(Duration::from_secs(5));
        let follower = (leader + 1) % 3;
        assert!(g.nodes[follower].propose(vec![1]).is_err());
    }

    fn snap_cfg(threshold: usize) -> RaftConfig {
        RaftConfig {
            snapshot_threshold: Some(threshold),
            ..RaftConfig::default()
        }
    }

    /// Waits until every running node's sink holds exactly the commands
    /// `0..n` in order.
    fn wait_all_applied(g: &RaftGroup, n: u8, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        loop {
            let ok = g
                .nodes
                .iter()
                .zip(&g.applied)
                .filter(|(node, _)| node.is_running())
                .all(|(_, a)| {
                    let cmds: Vec<u8> = a.lock().iter().map(|(_, c)| c[0]).collect();
                    cmds == (0..n).collect::<Vec<u8>>()
                });
            if ok {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "apply stalled: {:?}",
                g.applied.iter().map(|a| a.lock().len()).collect::<Vec<_>>()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn log_compaction_triggers_by_threshold() {
        let g = RaftGroup::spawn(3, snap_cfg(8));
        for i in 0..30u8 {
            g.propose(vec![i], Duration::from_secs(5)).unwrap();
        }
        wait_all_applied(&g, 30, Duration::from_secs(5));
        // Every node compacted: the retained tail is bounded, the
        // snapshot covers the rest, and the full applied state is intact.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let reports: Vec<NodeReport> = g.nodes.iter().filter_map(|n| n.report()).collect();
            if reports.iter().all(|r| r.snap_index > 0 && r.snapshots_taken >= 1) {
                for r in &reports {
                    assert!(
                        r.log.len() < 30,
                        "node {} never truncated: {} entries",
                        r.id,
                        r.log.len()
                    );
                    assert!(
                        r.snap_index + (r.log.len() as u64) >= 30,
                        "compaction lost entries: {r:?}"
                    );
                }
                return;
            }
            assert!(Instant::now() < deadline, "no compaction: {reports:?}");
            std::thread::sleep(Duration::from_millis(30));
        }
    }

    #[test]
    fn restart_recovers_from_snapshot_plus_tail_not_full_replay() {
        let g = RaftGroup::spawn(3, snap_cfg(5));
        for i in 0..20u8 {
            g.propose(vec![i], Duration::from_secs(5)).unwrap();
        }
        wait_all_applied(&g, 20, Duration::from_secs(5));
        let leader = g.wait_for_leader(Duration::from_secs(5));
        let follower = (leader + 1) % 3;
        // Wait until the follower has actually compacted.
        let deadline = Instant::now() + Duration::from_secs(5);
        let pre_snap = loop {
            let r = g.nodes[follower].report().expect("follower report");
            if r.snap_index > 0 {
                break r.snap_index;
            }
            assert!(Instant::now() < deadline, "follower never snapshotted");
            std::thread::sleep(Duration::from_millis(20));
        };
        g.nodes[follower].crash();
        g.nodes[follower].restart();
        // Converge, then check the replay-length instrumentation: the
        // boot replayed from the snapshot, not from index 1.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            // The restored sink must converge back to the full command
            // sequence (snapshot data + tail replay).
            let cmds: Vec<u8> =
                g.applied[follower].lock().iter().map(|(_, c)| c[0]).collect();
            if cmds == (0..20).collect::<Vec<u8>>() {
                let r = g.nodes[follower].report().expect("follower report");
                assert!(
                    r.replay_base >= pre_snap,
                    "restart replayed the full log (replay_base {} < snap {})",
                    r.replay_base,
                    pre_snap
                );
                assert!(
                    r.applied_since_boot <= r.commit_index - r.replay_base,
                    "applied {} entries from base {} (commit {})",
                    r.applied_since_boot,
                    r.replay_base,
                    r.commit_index
                );
                return;
            }
            assert!(Instant::now() < deadline, "restart never converged");
            std::thread::sleep(Duration::from_millis(30));
        }
    }

    #[test]
    fn lagging_follower_catches_up_via_install_snapshot() {
        let g = RaftGroup::spawn(3, snap_cfg(4));
        let leader = g.wait_for_leader(Duration::from_secs(5));
        let follower = (leader + 1) % 3;
        g.propose(vec![0], Duration::from_secs(5)).unwrap();
        g.nodes[follower].crash();
        // Commit enough for the survivors to compact past the crashed
        // follower's position: catch-up must go through InstallSnapshot.
        for i in 1..25u8 {
            g.propose(vec![i], Duration::from_secs(5)).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let l = g.wait_for_leader(Duration::from_secs(5));
            let r = g.nodes[l].report().expect("leader report");
            if r.snap_index > 1 {
                break;
            }
            assert!(Instant::now() < deadline, "leader never compacted");
            std::thread::sleep(Duration::from_millis(20));
        }
        g.nodes[follower].restart();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(r) = g.nodes[follower].report() {
                let cmds: Vec<u8> =
                    g.applied[follower].lock().iter().map(|(_, c)| c[0]).collect();
                if cmds == (0..25).collect::<Vec<u8>>() {
                    // It cannot have gotten here by pure log replay: the
                    // leader's early entries are gone, so the follower
                    // must hold an installed (or equivalent) snapshot.
                    assert!(r.snap_index > 1, "no snapshot installed: {r:?}");
                    return;
                }
            }
            assert!(Instant::now() < deadline, "install catch-up stalled");
            std::thread::sleep(Duration::from_millis(30));
        }
    }

    #[test]
    fn snapshot_install_failure_falls_back_and_converges() {
        use oltap_common::fault::FaultPoint;
        // Node 1's injector fails its first two snapshot installs.
        let g = RaftGroup::spawn_with_faults(3, snap_cfg(4), |i| {
            if i == 1 {
                let f = FaultInjector::new(0x5EED ^ 1);
                f.arm(points::RAFT_SNAPSHOT_INSTALL_FAIL, FaultPoint::times(2));
                f
            } else {
                FaultInjector::disabled()
            }
        });
        // Make node 1 the lagging follower: crash it, commit + compact.
        // (If node 1 happened to be leader, crashing it just forces a
        // re-election among 0 and 2 — either way it ends up behind.)
        g.propose(vec![0], Duration::from_secs(5)).unwrap();
        g.nodes[1].crash();
        for i in 1..20u8 {
            g.propose(vec![i], Duration::from_secs(5)).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let leader = g.wait_for_leader(Duration::from_secs(5));
            let r = g.nodes[leader].report().expect("leader report");
            if r.snap_index > 1 {
                break;
            }
            assert!(Instant::now() < deadline, "leader never compacted");
            std::thread::sleep(Duration::from_millis(20));
        }
        g.nodes[1].restart();
        // Despite the failed installs, heartbeat retries converge it.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let cmds: Vec<u8> = g.applied[1].lock().iter().map(|(_, c)| c[0]).collect();
            if cmds == (0..20).collect::<Vec<u8>>() {
                break;
            }
            assert!(Instant::now() < deadline, "never converged past install failures");
            std::thread::sleep(Duration::from_millis(30));
        }
        let fired = g.faults[1]
            .decisions_at(points::RAFT_SNAPSHOT_INSTALL_FAIL)
            .iter()
            .filter(|d| d.fired)
            .count();
        assert!(fired >= 1, "scenario vacuous: install-fail never fired");
    }

    #[test]
    fn leader_lease_tracks_quorum_contact() {
        let g = RaftGroup::spawn(3, cfg());
        let leader = g.wait_for_leader(Duration::from_secs(5));
        // Let a heartbeat round complete so acks are fresh.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let r = g.nodes[leader].report().expect("leader report");
            if r.lease_valid {
                break;
            }
            assert!(Instant::now() < deadline, "lease never became valid");
            std::thread::sleep(Duration::from_millis(20));
        }
        // Followers never hold a lease.
        let follower = (leader + 1) % 3;
        let fr = g.nodes[follower].report().expect("follower report");
        assert!(!fr.lease_valid);
        // Isolate the leader: with no acks arriving, the lease must
        // lapse within one election_min window — even while the node
        // still *believes* it is leader.
        g.network.isolate(g.ids[leader], &g.ids);
        std::thread::sleep(RaftConfig::default().election_min + Duration::from_millis(30));
        if let Some(r) = g.nodes[leader].report() {
            if r.role == Role::Leader {
                assert!(
                    !r.lease_valid,
                    "isolated leader still claims a valid lease"
                );
            }
        }
        g.network.reconnect(g.ids[leader], &g.ids);
    }
}
