//! # oltap-dist
//!
//! The scale-out substrate: horizontal partitioning, an in-process
//! replicated cluster, and distributed scatter-gather query execution —
//! the tutorial's "scaling out to distributed deployments" dimension
//! (§1, §3; Kudu \[24\], Oracle DBIM distributed architecture \[27\]).
//!
//! * [`partition`] — hash and range partitioners over primary keys.
//! * [`raft`] — a from-scratch simplified Raft (elections, log
//!   replication, majority commit, crash/restart, link failures).
//! * [`cluster`] — [`cluster::DistributedTable`]: partitions × replicas,
//!   each partition driven by a Raft group applying into a local
//!   delta+main table; queries scatter partial aggregates to partition
//!   leaders and gather.
//! * [`twopc`] — cross-shard atomic commit: two-phase commit with a
//!   Raft-replicated coordinator decision log, presumed-abort recovery,
//!   and chaos-testable crash points at every protocol transition.

pub mod cluster;
pub mod partition;
pub mod raft;
pub mod twopc;

pub use cluster::{ClusterConfig, DistributedTable, PartitionGroup, Replica, ShardCmd};
pub use partition::Partitioner;
pub use raft::{
    Network, NodeReport, RaftConfig, RaftGroup, RaftNode, Role, StateMachine,
};
pub use twopc::{CoordRecord, RecoveryReport, TwoPcCoordinator, TwoPcOutcome};
