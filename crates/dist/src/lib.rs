//! # oltap-dist
//!
//! The scale-out substrate: horizontal partitioning, an in-process
//! replicated cluster, and distributed scatter-gather query execution —
//! the tutorial's "scaling out to distributed deployments" dimension
//! (§1, §3; Kudu \[24\], Oracle DBIM distributed architecture \[27\]).
//!
//! * [`partition`] — hash and range partitioners over primary keys.
//! * [`raft`] — a from-scratch simplified Raft (elections, log
//!   replication, majority commit, crash/restart, link failures).
//! * [`cluster`] — [`cluster::DistributedTable`]: partitions × replicas,
//!   each partition driven by a Raft group applying into a local
//!   delta+main table; queries scatter partial aggregates to partition
//!   leaders and gather.

pub mod cluster;
pub mod partition;
pub mod raft;

pub use cluster::{ClusterConfig, DistributedTable, PartitionGroup, Replica};
pub use partition::Partitioner;
pub use raft::{Network, NodeReport, RaftConfig, RaftGroup, RaftNode, Role};
