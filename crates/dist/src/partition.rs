//! Horizontal partitioning: hash and range partitioners.
//!
//! Kudu "distributes data using horizontal partitioning" (§3, \[24\]);
//! Oracle DBIM distributes its columnar format across instances the same
//! way (§3, \[27\]). The partitioner maps a row's primary key to a
//! [`PartitionId`]; the cluster layer maps partitions to Raft groups.

use oltap_common::hash::hash_bytes;
use oltap_common::ids::PartitionId;
use oltap_common::{DbError, Result, Row, Value};

/// A partitioning scheme over primary keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Partitioner {
    /// Hash of the full key, modulo partition count.
    Hash {
        /// Number of partitions.
        partitions: usize,
    },
    /// Range partitioning on the first key column: partition `i` holds
    /// keys in `[bounds[i-1], bounds[i])` with open ends.
    Range {
        /// Ascending split points; `bounds.len() + 1` partitions.
        bounds: Vec<Value>,
    },
}

impl Partitioner {
    /// Hash partitioner.
    pub fn hash(partitions: usize) -> Result<Self> {
        if partitions == 0 {
            return Err(DbError::InvalidArgument("zero partitions".into()));
        }
        Ok(Partitioner::Hash { partitions })
    }

    /// Range partitioner; `bounds` must be strictly ascending.
    pub fn range(bounds: Vec<Value>) -> Result<Self> {
        if bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DbError::InvalidArgument(
                "range bounds must be strictly ascending".into(),
            ));
        }
        Ok(Partitioner::Range { bounds })
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        match self {
            Partitioner::Hash { partitions } => *partitions,
            Partitioner::Range { bounds } => bounds.len() + 1,
        }
    }

    /// Partition owning `key`.
    pub fn partition_of(&self, key: &Row) -> PartitionId {
        match self {
            Partitioner::Hash { partitions } => {
                let mut buf = Vec::with_capacity(16);
                for v in key.values() {
                    encode_value(&mut buf, v);
                }
                PartitionId(hash_bytes(&buf) % *partitions as u64)
            }
            Partitioner::Range { bounds } => {
                let k = &key[0];
                let idx = bounds.partition_point(|b| b <= k);
                PartitionId(idx as u64)
            }
        }
    }
}

fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(*b as u8);
        }
        Value::Int(x) | Value::Timestamp(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(3);
            buf.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(4);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::row;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let p = Partitioner::hash(8).unwrap();
        for i in 0..1000 {
            let key = row![i as i64];
            let a = p.partition_of(&key);
            let b = p.partition_of(&key);
            assert_eq!(a, b);
            assert!(a.raw() < 8);
        }
    }

    #[test]
    fn hash_distributes_reasonably() {
        let p = Partitioner::hash(4).unwrap();
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            counts[p.partition_of(&row![i as i64]).raw() as usize] += 1;
        }
        for c in counts {
            assert!((1800..3200).contains(&c), "skewed: {counts:?}");
        }
    }

    #[test]
    fn range_partitioning() {
        let p = Partitioner::range(vec![Value::Int(10), Value::Int(20)]).unwrap();
        assert_eq!(p.partition_count(), 3);
        assert_eq!(p.partition_of(&row![5i64]).raw(), 0);
        assert_eq!(p.partition_of(&row![10i64]).raw(), 1);
        assert_eq!(p.partition_of(&row![15i64]).raw(), 1);
        assert_eq!(p.partition_of(&row![20i64]).raw(), 2);
        assert_eq!(p.partition_of(&row![1000i64]).raw(), 2);
    }

    #[test]
    fn range_rejects_unsorted_bounds() {
        assert!(Partitioner::range(vec![Value::Int(20), Value::Int(10)]).is_err());
        assert!(Partitioner::range(vec![Value::Int(10), Value::Int(10)]).is_err());
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(Partitioner::hash(0).is_err());
    }

    #[test]
    fn composite_keys_hash_all_columns() {
        let p = Partitioner::hash(64).unwrap();
        let a = p.partition_of(&row![1i64, "x"]);
        let b = p.partition_of(&row![1i64, "y"]);
        // Overwhelmingly likely to differ with 64 partitions; the point is
        // the second column participates.
        let c = p.partition_of(&row![1i64, "x"]);
        assert_eq!(a, c);
        let _ = b;
    }

    #[test]
    fn string_range_bounds() {
        let p = Partitioner::range(vec![Value::Str("m".into())]).unwrap();
        assert_eq!(p.partition_of(&row!["apple"]).raw(), 0);
        assert_eq!(p.partition_of(&row!["zebra"]).raw(), 1);
    }
}
