//! The framed wire protocol shared by server and client.
//!
//! Every message travels as one frame: `[u32 len][u32 crc32(payload)]
//! [payload]`, little-endian, the same layout the WAL uses on disk — a
//! torn or bit-flipped frame is detected the same way a torn log record
//! is. The first payload byte is a message tag; requests and responses
//! use disjoint tag ranges so a desynchronized stream fails loudly
//! instead of misparsing.
//!
//! The protocol is versioned: a connection opens with
//! [`Request::Hello`] carrying [`PROTOCOL_VERSION`]; the server answers
//! [`Response::HelloAck`] or a typed error and closes. Everything after
//! the handshake is `Query` / response streams. Row payloads reuse the
//! WAL's row codec ([`oltap_txn::wal::encode_row`]) so values roundtrip
//! identically on disk and on the wire.

use bytes::{Buf, BufMut};
use oltap_common::{DataType, DbError, Field, Result, Row};
use oltap_txn::wal::{crc32, decode_row, encode_row};
use std::io::{Read, Write};

/// Wire protocol version. Bumped on any incompatible frame or codec
/// change; the handshake rejects mismatches with a typed error.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on a single frame (defense against a corrupt or hostile
/// length prefix allocating unbounded memory).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Protocol handshake; must be the first message on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Execute one SQL statement.
    Query {
        /// The statement text.
        sql: String,
    },
    /// Orderly connection close (the server drops the session, aborting
    /// any open transaction, exactly as it would on an abrupt drop).
    Close,
}

/// What a [`Response::Done`] message terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoneKind {
    /// End of a row stream (preceded by `Schema` + zero or more `Rows`).
    RowsEnd,
    /// A DML statement; the count is rows affected.
    Affected,
    /// DDL completed.
    Ddl,
    /// Transaction control completed (note carries "BEGIN"/"COMMIT"/...).
    Txn,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Result-set schema; precedes the `Rows` frames of a SELECT.
    Schema {
        /// Output fields.
        fields: Vec<Field>,
    },
    /// One chunk of result rows (a SELECT streams several).
    Rows {
        /// The rows in this chunk.
        rows: Vec<Row>,
    },
    /// Statement finished successfully.
    Done {
        /// What finished.
        kind: DoneKind,
        /// Rows affected (DML) or total rows streamed (SELECT).
        count: u64,
        /// Human-readable note ("COMMIT", ...); empty when meaningless.
        note: String,
    },
    /// Statement failed (or the connection is being refused). The
    /// connection stays usable after a statement error; transport-level
    /// errors close it.
    Error {
        /// The typed engine error.
        error: DbError,
        /// Minimum milliseconds to wait before retrying (0 = client's
        /// own backoff pace). Nonzero on admission-surface rejections.
        retry_after_ms: u64,
    },
}

// ---------------------------------------------------------------- framing

/// Writes one frame. The caller picks the sink (socket, Vec for tests).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()
}

/// Serializes a frame into a buffer (for queueing before the socket).
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one full frame, verifying length sanity and CRC. An EOF before
/// the first header byte returns `Ok(None)` (orderly peer close); an EOF
/// or timeout mid-frame is a torn frame ([`DbError::Corruption`] /
/// [`DbError::DeadlineExceeded`]).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut head = [0u8; 8];
    match read_exact_or_eof(r, &mut head)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => {
            return Err(DbError::Corruption("torn frame header".into()))
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(head[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(head[4..].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(DbError::Corruption(format!(
            "frame length {len} exceeds cap {MAX_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        ReadOutcome::Full => {}
        ReadOutcome::Eof | ReadOutcome::Partial => {
            return Err(DbError::Corruption("torn frame payload".into()))
        }
    }
    if crc32(&payload) != crc {
        return Err(DbError::Corruption("frame CRC mismatch".into()));
    }
    Ok(Some(payload))
}

enum ReadOutcome {
    Full,
    Eof,
    Partial,
}

/// `read_exact` that distinguishes clean EOF (no bytes) from a torn read
/// (some bytes then EOF), and maps a socket read timeout to
/// [`DbError::DeadlineExceeded`] so the caller can tell "peer is idle"
/// from "peer stalled mid-frame".
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(DbError::DeadlineExceeded(
                    "read deadline mid-frame".into(),
                ))
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

// ----------------------------------------------------------- tag helpers

const TAG_HELLO: u8 = 0x01;
const TAG_QUERY: u8 = 0x02;
const TAG_CLOSE: u8 = 0x03;
const TAG_HELLO_ACK: u8 = 0x81;
const TAG_SCHEMA: u8 = 0x82;
const TAG_ROWS: u8 = 0x83;
const TAG_DONE: u8 = 0x84;
const TAG_ERROR: u8 = 0x85;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(DbError::Corruption("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DbError::Corruption("truncated string bytes".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| DbError::Corruption("invalid utf8 on wire".into()))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(DbError::Corruption("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(DbError::Corruption("truncated u32".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(DbError::Corruption("truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
        DataType::Timestamp => 4,
    }
}

fn dtype_from(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        4 => DataType::Timestamp,
        t => return Err(DbError::Corruption(format!("bad dtype tag {t}"))),
    })
}

// -------------------------------------------------------- request codec

impl Request {
    /// Serializes this request to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Request::Hello { version } => {
                buf.put_u8(TAG_HELLO);
                buf.put_u32_le(*version);
            }
            Request::Query { sql } => {
                buf.put_u8(TAG_QUERY);
                put_str(&mut buf, sql);
            }
            Request::Close => buf.put_u8(TAG_CLOSE),
        }
        buf
    }

    /// Parses a frame payload as a request.
    pub fn decode(mut payload: &[u8]) -> Result<Request> {
        let buf = &mut payload;
        let req = match get_u8(buf)? {
            TAG_HELLO => Request::Hello {
                version: get_u32(buf)?,
            },
            TAG_QUERY => Request::Query { sql: get_str(buf)? },
            TAG_CLOSE => Request::Close,
            t => {
                return Err(DbError::Corruption(format!(
                    "unknown request tag {t:#x}"
                )))
            }
        };
        if !buf.is_empty() {
            return Err(DbError::Corruption("trailing bytes in request".into()));
        }
        Ok(req)
    }
}

// ------------------------------------------------------- response codec

impl Response {
    /// Serializes this response to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            Response::HelloAck { version } => {
                buf.put_u8(TAG_HELLO_ACK);
                buf.put_u32_le(*version);
            }
            Response::Schema { fields } => {
                buf.put_u8(TAG_SCHEMA);
                buf.put_u16_le(fields.len() as u16);
                for f in fields {
                    put_str(&mut buf, &f.name);
                    buf.put_u8(dtype_tag(f.data_type));
                    buf.put_u8(f.nullable as u8);
                }
            }
            Response::Rows { rows } => {
                buf.put_u8(TAG_ROWS);
                buf.put_u32_le(rows.len() as u32);
                for r in rows {
                    let bytes = encode_row(r);
                    buf.put_u32_le(bytes.len() as u32);
                    buf.put_slice(&bytes);
                }
            }
            Response::Done { kind, count, note } => {
                buf.put_u8(TAG_DONE);
                buf.put_u8(match kind {
                    DoneKind::RowsEnd => 0,
                    DoneKind::Affected => 1,
                    DoneKind::Ddl => 2,
                    DoneKind::Txn => 3,
                });
                buf.put_u64_le(*count);
                put_str(&mut buf, note);
            }
            Response::Error {
                error,
                retry_after_ms,
            } => {
                buf.put_u8(TAG_ERROR);
                encode_error(&mut buf, error);
                buf.put_u64_le(*retry_after_ms);
            }
        }
        buf
    }

    /// Parses a frame payload as a response.
    pub fn decode(mut payload: &[u8]) -> Result<Response> {
        let buf = &mut payload;
        let resp = match get_u8(buf)? {
            TAG_HELLO_ACK => Response::HelloAck {
                version: get_u32(buf)?,
            },
            TAG_SCHEMA => {
                if buf.remaining() < 2 {
                    return Err(DbError::Corruption("truncated schema".into()));
                }
                let n = buf.get_u16_le() as usize;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = get_str(buf)?;
                    let dt = dtype_from(get_u8(buf)?)?;
                    let nullable = get_u8(buf)? != 0;
                    fields.push(Field {
                        name,
                        data_type: dt,
                        nullable,
                    });
                }
                Response::Schema { fields }
            }
            TAG_ROWS => {
                let n = get_u32(buf)? as usize;
                let mut rows = Vec::with_capacity(n.min(64 * 1024));
                for _ in 0..n {
                    let len = get_u32(buf)? as usize;
                    if buf.remaining() < len {
                        return Err(DbError::Corruption("truncated row".into()));
                    }
                    rows.push(decode_row(&buf[..len])?);
                    buf.advance(len);
                }
                Response::Rows { rows }
            }
            TAG_DONE => {
                let kind = match get_u8(buf)? {
                    0 => DoneKind::RowsEnd,
                    1 => DoneKind::Affected,
                    2 => DoneKind::Ddl,
                    3 => DoneKind::Txn,
                    t => {
                        return Err(DbError::Corruption(format!(
                            "bad done kind {t}"
                        )))
                    }
                };
                Response::Done {
                    kind,
                    count: get_u64(buf)?,
                    note: get_str(buf)?,
                }
            }
            TAG_ERROR => {
                let error = decode_error(buf)?;
                Response::Error {
                    error,
                    retry_after_ms: get_u64(buf)?,
                }
            }
            t => {
                return Err(DbError::Corruption(format!(
                    "unknown response tag {t:#x}"
                )))
            }
        };
        if !buf.is_empty() {
            return Err(DbError::Corruption("trailing bytes in response".into()));
        }
        Ok(resp)
    }
}

// ---------------------------------------------------------- error codec

/// Encodes a [`DbError`] so the client reconstructs the exact variant —
/// typed errors are the contract: retry logic branches on the variant,
/// not on string matching.
fn encode_error(buf: &mut Vec<u8>, e: &DbError) {
    match e {
        DbError::TypeMismatch { expected, actual } => {
            buf.put_u8(0);
            put_str(buf, expected);
            put_str(buf, actual);
        }
        DbError::TableNotFound(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
        DbError::ColumnNotFound(s) => {
            buf.put_u8(2);
            put_str(buf, s);
        }
        DbError::AlreadyExists(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        DbError::DuplicateKey(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        DbError::KeyNotFound(s) => {
            buf.put_u8(5);
            put_str(buf, s);
        }
        DbError::WriteConflict(s) => {
            buf.put_u8(6);
            put_str(buf, s);
        }
        DbError::TxnClosed(s) => {
            buf.put_u8(7);
            put_str(buf, s);
        }
        DbError::Parse(s) => {
            buf.put_u8(8);
            put_str(buf, s);
        }
        DbError::Plan(s) => {
            buf.put_u8(9);
            put_str(buf, s);
        }
        DbError::Execution(s) => {
            buf.put_u8(10);
            put_str(buf, s);
        }
        DbError::Corruption(s) => {
            buf.put_u8(11);
            put_str(buf, s);
        }
        DbError::Cluster(s) => {
            buf.put_u8(12);
            put_str(buf, s);
        }
        DbError::ShardUnavailable { partition, reason } => {
            buf.put_u8(13);
            buf.put_u64_le(*partition);
            put_str(buf, reason);
        }
        DbError::TxnInDoubt { gtxn } => {
            buf.put_u8(14);
            buf.put_u64_le(*gtxn);
        }
        DbError::Unsupported(s) => {
            buf.put_u8(15);
            put_str(buf, s);
        }
        DbError::InvalidArgument(s) => {
            buf.put_u8(16);
            put_str(buf, s);
        }
        DbError::Io(s) => {
            buf.put_u8(17);
            put_str(buf, s);
        }
        DbError::Cancelled(s) => {
            buf.put_u8(18);
            put_str(buf, s);
        }
        DbError::DeadlineExceeded(s) => {
            buf.put_u8(19);
            put_str(buf, s);
        }
        DbError::ResourceExhausted {
            class,
            requested,
            available,
        } => {
            buf.put_u8(20);
            put_str(buf, class);
            buf.put_u64_le(*requested);
            buf.put_u64_le(*available);
        }
        DbError::FaultInjected(s) => {
            buf.put_u8(21);
            put_str(buf, s);
        }
        DbError::Unavailable {
            reason,
            retry_after_ms,
        } => {
            buf.put_u8(22);
            put_str(buf, reason);
            buf.put_u64_le(*retry_after_ms);
        }
    }
}

fn decode_error(buf: &mut &[u8]) -> Result<DbError> {
    Ok(match get_u8(buf)? {
        0 => DbError::TypeMismatch {
            expected: get_str(buf)?,
            actual: get_str(buf)?,
        },
        1 => DbError::TableNotFound(get_str(buf)?),
        2 => DbError::ColumnNotFound(get_str(buf)?),
        3 => DbError::AlreadyExists(get_str(buf)?),
        4 => DbError::DuplicateKey(get_str(buf)?),
        5 => DbError::KeyNotFound(get_str(buf)?),
        6 => DbError::WriteConflict(get_str(buf)?),
        7 => DbError::TxnClosed(get_str(buf)?),
        8 => DbError::Parse(get_str(buf)?),
        9 => DbError::Plan(get_str(buf)?),
        10 => DbError::Execution(get_str(buf)?),
        11 => DbError::Corruption(get_str(buf)?),
        12 => DbError::Cluster(get_str(buf)?),
        13 => DbError::ShardUnavailable {
            partition: get_u64(buf)?,
            reason: get_str(buf)?,
        },
        14 => DbError::TxnInDoubt { gtxn: get_u64(buf)? },
        15 => DbError::Unsupported(get_str(buf)?),
        16 => DbError::InvalidArgument(get_str(buf)?),
        17 => DbError::Io(get_str(buf)?),
        18 => DbError::Cancelled(get_str(buf)?),
        19 => DbError::DeadlineExceeded(get_str(buf)?),
        20 => DbError::ResourceExhausted {
            class: get_str(buf)?,
            requested: get_u64(buf)?,
            available: get_u64(buf)?,
        },
        21 => DbError::FaultInjected(get_str(buf)?),
        22 => DbError::Unavailable {
            reason: get_str(buf)?,
            retry_after_ms: get_u64(buf)?,
        },
        t => return Err(DbError::Corruption(format!("bad error code {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::Value;

    #[test]
    fn frame_roundtrip_and_crc_detection() {
        let payload = b"hello wire".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        assert_eq!(buf, frame_bytes(&payload));
        let got = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(got, payload);

        // Flip one payload bit: CRC must catch it.
        let mut torn = buf.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x40;
        let err = read_frame(&mut torn.as_slice()).unwrap_err();
        assert!(matches!(err, DbError::Corruption(_)), "{err}");

        // Truncate mid-payload: torn frame, not clean EOF.
        let err = read_frame(&mut &buf[..buf.len() - 3]).unwrap_err();
        assert!(matches!(err, DbError::Corruption(_)), "{err}");

        // Empty stream: clean EOF.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut head = Vec::new();
        head.extend_from_slice(&(u32::MAX).to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut head.as_slice()).unwrap_err();
        assert!(matches!(err, DbError::Corruption(m) if m.contains("cap")));
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Query {
                sql: "SELECT 1 FROM t WHERE x = 'naïve'".into(),
            },
            Request::Close,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
        assert!(Request::decode(&[0x7f]).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Str("a".into()), Value::Null]),
            Row::new(vec![
                Value::Int(-7),
                Value::Str("".into()),
                Value::Float(2.5),
            ]),
        ];
        for resp in [
            Response::HelloAck {
                version: PROTOCOL_VERSION,
            },
            Response::Schema {
                fields: vec![
                    Field::not_null("id", DataType::Int64),
                    Field::new("tag", DataType::Utf8),
                    Field::new("v", DataType::Float64),
                ],
            },
            Response::Rows { rows },
            Response::Done {
                kind: DoneKind::Affected,
                count: 42,
                note: String::new(),
            },
            Response::Done {
                kind: DoneKind::Txn,
                count: 0,
                note: "COMMIT".into(),
            },
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn every_error_variant_roundtrips() {
        let errors = vec![
            DbError::TypeMismatch {
                expected: "Int64".into(),
                actual: "Utf8".into(),
            },
            DbError::TableNotFound("t".into()),
            DbError::ColumnNotFound("c".into()),
            DbError::AlreadyExists("t".into()),
            DbError::DuplicateKey("k".into()),
            DbError::KeyNotFound("k".into()),
            DbError::WriteConflict("w".into()),
            DbError::TxnClosed("x".into()),
            DbError::Parse("p".into()),
            DbError::Plan("p".into()),
            DbError::Execution("e".into()),
            DbError::Corruption("c".into()),
            DbError::Cluster("c".into()),
            DbError::ShardUnavailable {
                partition: 3,
                reason: "no leader".into(),
            },
            DbError::TxnInDoubt { gtxn: 9 },
            DbError::Unsupported("u".into()),
            DbError::InvalidArgument("i".into()),
            DbError::Io("io".into()),
            DbError::Cancelled("c".into()),
            DbError::DeadlineExceeded("d".into()),
            DbError::ResourceExhausted {
                class: "olap".into(),
                requested: 10,
                available: 2,
            },
            DbError::FaultInjected("f".into()),
            DbError::Unavailable {
                reason: "draining".into(),
                retry_after_ms: 125,
            },
        ];
        for e in errors {
            let resp = Response::Error {
                error: e.clone(),
                retry_after_ms: 17,
            };
            match Response::decode(&resp.encode()).unwrap() {
                Response::Error {
                    error,
                    retry_after_ms,
                } => {
                    assert_eq!(error, e);
                    assert_eq!(retry_after_ms, 17);
                }
                other => panic!("decoded {other:?}"),
            }
        }
    }
}
