//! The TCP front end: accept loop, per-connection sessions, backpressure,
//! deadlines, and graceful drain.
//!
//! ## Threading model
//!
//! One accept thread polls a nonblocking listener (so a drain can stop it
//! promptly). Each connection gets a **reader** thread — owns the
//! [`oltap_core::Session`], parses request frames, executes statements —
//! and a **writer** thread draining a bounded [`ResponseQueue`]. The
//! split is what makes slow-client backpressure observable: the reader
//! (producer) blocks when the queue is full instead of buffering
//! unboundedly, and a client that stops reading eventually trips the
//! connection's cancel token, which cancels the in-flight query at its
//! next batch boundary through the engine's cooperative cancellation.
//!
//! ## Edge robustness
//!
//! * Every statement runs under a per-query token parented to the
//!   connection token ([`oltap_common::CancellationToken::child`]), so
//!   peer loss, write stalls, idle deadlines, and drain all cancel
//!   in-flight work the same way.
//! * Response bytes queued for a connection are claimed from the
//!   [`MemoryGovernor`] (OLAP class — large result sets are analytic);
//!   when the governor says no, the result is replaced by a typed
//!   [`DbError::ResourceExhausted`] instead of buffering past the limit.
//! * Overload (connection cap, draining) answers with
//!   [`DbError::Unavailable`] carrying a retry-after hint derived from
//!   the admission queue depth; the client's backoff honors it as a
//!   floor.
//! * The `net.*` fault points ([`points::NET_ACCEPT_FAIL`],
//!   [`points::NET_READ_TORN`], [`points::NET_WRITE_PARTIAL`],
//!   [`points::NET_CONN_DROP_MID_QUERY`]) inject edge failures
//!   deterministically for chaos tests.
//! * [`Server::drain`] stops accepting, cancels analytic work
//!   immediately, gives transactional work a grace period, then cancels
//!   and force-closes stragglers — always bounded.

use crate::wire::{
    frame_bytes, read_frame, DoneKind, Request, Response, MAX_FRAME, PROTOCOL_VERSION,
};
use oltap_common::fault::{points, FaultInjector};
use oltap_common::mem::{MemoryBudget, WorkloadClass};
use oltap_common::{CancellationToken, DbError, Result};
use oltap_core::{Database, QueryResult, SessionActivity};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tick used by all polling waits (accept loop, idle peek, queue waits):
/// short enough that drains and cancellation propagate promptly, long
/// enough not to burn CPU.
const POLL_TICK: Duration = Duration::from_millis(10);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (tests).
    pub addr: String,
    /// Connection cap; excess connections are refused with
    /// [`DbError::Unavailable`] and a retry-after hint.
    pub max_conns: usize,
    /// Deadline for reading one frame once its first byte arrived. A
    /// peer that stalls mid-frame is cut off (torn frame).
    pub read_timeout: Duration,
    /// Deadline for writing one frame. A peer that stops reading long
    /// enough to stall the writer past this gets disconnected and its
    /// in-flight query cancelled.
    pub write_timeout: Duration,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Per-statement timeout applied to every session (`None` = none).
    pub query_timeout: Option<Duration>,
    /// Response-queue capacity in frames (per connection).
    pub queue_frames: usize,
    /// Response-queue capacity in bytes (per connection); also the size
    /// of the per-connection governor claim for queued responses.
    pub queue_bytes: usize,
    /// Rows per `Rows` frame when streaming a result set.
    pub rows_per_frame: usize,
    /// Grace period [`Server::drain`] gives transactional (OLTP) work
    /// before cancelling it; analytic work is cancelled immediately.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_conns: 256,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(300),
            query_timeout: None,
            queue_frames: 32,
            queue_bytes: 4 * 1024 * 1024,
            rows_per_frame: 512,
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// Monotonic counters exposed for tests and operators.
#[derive(Debug, Default)]
struct Counters {
    accepted: AtomicU64,
    refused: AtomicU64,
    queries: AtomicU64,
    statement_errors: AtomicU64,
    torn_requests: AtomicU64,
    partial_writes: AtomicU64,
    dropped_mid_query: AtomicU64,
    shed_responses: AtomicU64,
    slow_client_disconnects: AtomicU64,
    active: AtomicUsize,
}

/// A point-in-time snapshot of [`Server`] counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (past the fault/cap/drain gate).
    pub accepted: u64,
    /// Connections refused (cap, drain, or `net.accept_fail`).
    pub refused: u64,
    /// Query requests received.
    pub queries: u64,
    /// Statements that returned a typed error (connection survived).
    pub statement_errors: u64,
    /// Requests rejected by the `net.read_torn` fault.
    pub torn_requests: u64,
    /// Responses torn by the `net.write_partial` fault.
    pub partial_writes: u64,
    /// Connections dropped by `net.conn_drop_mid_query`.
    pub dropped_mid_query: u64,
    /// Result streams replaced by `ResourceExhausted` (governor refusal).
    pub shed_responses: u64,
    /// Connections cut because the client stalled the writer.
    pub slow_client_disconnects: u64,
    /// Currently live connections.
    pub active: usize,
}

/// Outcome of a [`Server::drain`].
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Connections live when the drain started.
    pub conns_at_start: usize,
    /// Analytic queries cancelled immediately.
    pub cancelled_olap: usize,
    /// Connections still busy at the grace cutoff and cancelled then.
    pub cancelled_after_grace: usize,
    /// Connections whose sockets had to be force-closed.
    pub forced: usize,
    /// Wall-clock duration of the drain.
    pub duration: Duration,
}

// ---------------------------------------------------------------- queue

enum Pop {
    Frame(Vec<u8>, u64),
    Timeout,
    Closed,
}

struct QueueInner {
    frames: VecDeque<(Vec<u8>, u64)>,
    bytes: usize,
    closed: bool,
}

/// Bounded per-connection response queue. `push` blocks while the queue
/// is full (slow-client backpressure on the producer); `pop` is the
/// writer's side. Closing wakes both ends.
struct ResponseQueue {
    inner: Mutex<QueueInner>,
    changed: Condvar,
    cap_frames: usize,
    cap_bytes: usize,
}

impl ResponseQueue {
    fn new(cap_frames: usize, cap_bytes: usize) -> Arc<ResponseQueue> {
        Arc::new(ResponseQueue {
            inner: Mutex::new(QueueInner {
                frames: VecDeque::new(),
                bytes: 0,
                closed: false,
            }),
            changed: Condvar::new(),
            cap_frames: cap_frames.max(1),
            cap_bytes: cap_bytes.max(1),
        })
    }

    /// Enqueues one encoded frame (`reserved` governor bytes ride along
    /// and are released when the writer dequeues it). Blocks while full;
    /// gives up with [`DbError::DeadlineExceeded`] after `stall`, and
    /// with the token's error if the connection is cancelled mid-wait.
    fn push(
        &self,
        frame: Vec<u8>,
        reserved: u64,
        cancel: &CancellationToken,
        stall: Duration,
    ) -> Result<()> {
        let deadline = Instant::now() + stall;
        let mut g = self.inner.lock();
        loop {
            if g.closed {
                return Err(DbError::Io("connection closed".into()));
            }
            cancel.check()?;
            let fits = g.frames.len() < self.cap_frames
                && (g.bytes == 0 || g.bytes + frame.len() <= self.cap_bytes);
            if fits {
                g.bytes += frame.len();
                g.frames.push_back((frame, reserved));
                self.changed.notify_all();
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(DbError::DeadlineExceeded(
                    "slow client: response queue full past the write deadline".into(),
                ));
            }
            self.changed.wait_for(&mut g, POLL_TICK);
        }
    }

    fn pop(&self, wait: Duration) -> Pop {
        let mut g = self.inner.lock();
        if g.frames.is_empty() {
            if g.closed {
                return Pop::Closed;
            }
            self.changed.wait_for(&mut g, wait);
        }
        match g.frames.pop_front() {
            Some((f, reserved)) => {
                g.bytes -= f.len();
                self.changed.notify_all();
                Pop::Frame(f, reserved)
            }
            None if g.closed => Pop::Closed,
            None => Pop::Timeout,
        }
    }

    fn close(&self) {
        self.inner.lock().closed = true;
        self.changed.notify_all();
    }

    fn is_empty(&self) -> bool {
        self.inner.lock().frames.is_empty()
    }
}

// ------------------------------------------------------------- registry

/// What the server keeps about a live connection for drain decisions.
struct ConnEntry {
    cancel: CancellationToken,
    activity: SessionActivity,
    stream: TcpStream,
}

struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    faults: Arc<FaultInjector>,
    draining: AtomicBool,
    conns: Mutex<HashMap<u64, ConnEntry>>,
    reapable: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_conn: AtomicU64,
    counters: Counters,
}

impl Shared {
    /// Retry-after hint for admission-surface refusals: scales with the
    /// OLAP admission queue when one is configured, small floor
    /// otherwise.
    fn retry_hint_ms(&self) -> u64 {
        match self.db.admission() {
            Some(ctrl) => ctrl.retry_after_hint().as_millis() as u64,
            None => 25,
        }
    }
}

/// The network front end. Binds on [`Server::start`], serves until
/// [`Server::drain`] (Drop drains implicitly).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
    drained: AtomicBool,
}

impl Server {
    /// Binds `cfg.addr` and starts accepting connections against `db`.
    pub fn start(db: Arc<Database>, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            faults: Arc::clone(db.faults()),
            db,
            cfg,
            draining: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            reapable: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(1),
            counters: Counters::default(),
        });
        let s2 = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("oltap-accept".into())
            .spawn(move || accept_loop(listener, s2))
            .expect("spawn accept loop");
        Ok(Server {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
            drained: AtomicBool::new(false),
        })
    }

    /// The bound address (use with port 0 in tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            refused: c.refused.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            statement_errors: c.statement_errors.load(Ordering::Relaxed),
            torn_requests: c.torn_requests.load(Ordering::Relaxed),
            partial_writes: c.partial_writes.load(Ordering::Relaxed),
            dropped_mid_query: c.dropped_mid_query.load(Ordering::Relaxed),
            shed_responses: c.shed_responses.load(Ordering::Relaxed),
            slow_client_disconnects: c.slow_client_disconnects.load(Ordering::Relaxed),
            active: c.active.load(Ordering::Relaxed),
        }
    }

    /// Live connection count.
    pub fn active_connections(&self) -> usize {
        self.shared.counters.active.load(Ordering::Relaxed)
    }

    /// Graceful, bounded shutdown: stop accepting, cancel analytic work
    /// immediately, give transactional work the configured grace, then
    /// cancel and (as a last resort) force-close stragglers. Idempotent.
    pub fn drain(&self) -> DrainReport {
        let start = Instant::now();
        let mut report = DrainReport::default();
        if self.drained.swap(true, Ordering::SeqCst) {
            return report;
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
        {
            let conns = self.shared.conns.lock();
            report.conns_at_start = conns.len();
            for entry in conns.values() {
                if entry.activity.current() == Some(WorkloadClass::Olap) {
                    entry.cancel.cancel();
                    report.cancelled_olap += 1;
                }
            }
        }
        // Grace: transactional work finishes; idle readers notice the
        // drain flag on their next poll tick and leave.
        let grace_end = start + self.shared.cfg.drain_grace;
        while !self.shared.conns.lock().is_empty() && Instant::now() < grace_end {
            std::thread::sleep(POLL_TICK);
        }
        // Cutoff: cancel whatever is still running.
        {
            let conns = self.shared.conns.lock();
            report.cancelled_after_grace = conns.len();
            for entry in conns.values() {
                entry.cancel.cancel();
            }
        }
        let cancel_end = Instant::now() + Duration::from_secs(5);
        while !self.shared.conns.lock().is_empty() && Instant::now() < cancel_end {
            std::thread::sleep(POLL_TICK);
        }
        // Last resort: sever the sockets of anything still alive.
        {
            let conns = self.shared.conns.lock();
            report.forced = conns.len();
            for entry in conns.values() {
                let _ = entry.stream.shutdown(Shutdown::Both);
            }
        }
        let force_end = Instant::now() + Duration::from_secs(2);
        while !self.shared.conns.lock().is_empty() && Instant::now() < force_end {
            std::thread::sleep(POLL_TICK);
        }
        for h in self.shared.reapable.lock().drain(..) {
            let _ = h.join();
        }
        report.duration = start.elapsed();
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

// ---------------------------------------------------------- accept loop

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_accept(stream, &shared),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(POLL_TICK);
            }
            // Transient accept errors (EMFILE, ECONNABORTED): keep
            // serving; the listener itself is still healthy.
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

fn handle_accept(stream: TcpStream, shared: &Arc<Shared>) {
    let c = &shared.counters;
    // Injected accept failure: the connection vanishes before any
    // protocol exchange, exactly like a kernel-level accept error.
    if shared.faults.should_fire(points::NET_ACCEPT_FAIL) {
        c.refused.fetch_add(1, Ordering::Relaxed);
        drop(stream);
        return;
    }
    if shared.draining.load(Ordering::SeqCst) {
        c.refused.fetch_add(1, Ordering::Relaxed);
        refuse(stream, shared, "draining");
        return;
    }
    if c.active.load(Ordering::Relaxed) >= shared.cfg.max_conns {
        c.refused.fetch_add(1, Ordering::Relaxed);
        refuse(stream, shared, "connection limit");
        return;
    }
    c.accepted.fetch_add(1, Ordering::Relaxed);
    c.active.fetch_add(1, Ordering::Relaxed);
    let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    let s2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("oltap-conn-{id}"))
        .spawn(move || {
            serve_connection(id, stream, &s2);
            s2.conns.lock().remove(&id);
            s2.counters.active.fetch_sub(1, Ordering::Relaxed);
        })
        .expect("spawn connection thread");
    shared.reapable.lock().push(handle);
}

/// Best-effort typed refusal (the peer may already be gone).
fn refuse(mut stream: TcpStream, shared: &Shared, reason: &str) {
    let retry = shared.retry_hint_ms();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    // Absorb the Hello so the refusal frame is read in sequence.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = read_frame(&mut stream);
    let payload = Response::Error {
        error: DbError::Unavailable {
            reason: reason.into(),
            retry_after_ms: retry,
        },
        retry_after_ms: retry,
    }
    .encode();
    let _ = stream.write_all(&frame_bytes(&payload));
    let _ = stream.shutdown(Shutdown::Both);
}

// ----------------------------------------------------------- connection

fn serve_connection(id: u64, mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // Handshake first, synchronously: no session or threads exist yet.
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    match read_frame(&mut stream) {
        Ok(Some(payload)) => match Request::decode(&payload) {
            Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
                let ack = Response::HelloAck {
                    version: PROTOCOL_VERSION,
                }
                .encode();
                if stream.write_all(&frame_bytes(&ack)).is_err() {
                    return;
                }
            }
            Ok(Request::Hello { version }) => {
                let payload = Response::Error {
                    error: DbError::Unsupported(format!(
                        "protocol version {version} (server speaks {PROTOCOL_VERSION})"
                    )),
                    retry_after_ms: 0,
                }
                .encode();
                let _ = stream.write_all(&frame_bytes(&payload));
                return;
            }
            _ => {
                let payload = Response::Error {
                    error: DbError::InvalidArgument(
                        "first message must be Hello".into(),
                    ),
                    retry_after_ms: 0,
                }
                .encode();
                let _ = stream.write_all(&frame_bytes(&payload));
                return;
            }
        },
        _ => return, // dead or garbled before the handshake
    }

    let cancel = CancellationToken::new();
    let mut session = shared.db.session();
    session.set_session_cancel(Some(cancel.clone()));
    session.set_query_timeout(shared.cfg.query_timeout);
    let activity = session.activity();
    let queue = ResponseQueue::new(shared.cfg.queue_frames, shared.cfg.queue_bytes);
    // Governor claim for queued response bytes (OLAP class: large result
    // sets are analytic; control frames are exempt). `None` (ungoverned
    // database) means the queue caps alone bound the buffering.
    let budget: Option<MemoryBudget> = shared
        .db
        .memory_governor()
        .map(|g| g.budget(WorkloadClass::Olap, shared.cfg.queue_bytes as u64));

    let Ok(wstream) = stream.try_clone() else {
        return;
    };
    shared.conns.lock().insert(
        id,
        ConnEntry {
            cancel: cancel.clone(),
            activity,
            stream: match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            },
        },
    );

    let writer = {
        let queue = Arc::clone(&queue);
        let cancel = cancel.clone();
        let shared = Arc::clone(shared);
        let budget = budget.clone();
        std::thread::Builder::new()
            .name(format!("oltap-conn-{id}-w"))
            .spawn(move || writer_loop(wstream, queue, budget, cancel, shared))
            .expect("spawn connection writer")
    };

    reader_loop(&mut stream, &mut session, &queue, &budget, &cancel, shared);

    // Cleanup: the session drop aborts any open transaction (releasing
    // its locks and versions); closing the queue stops the writer.
    drop(session);
    queue.close();
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

fn reader_loop(
    stream: &mut TcpStream,
    session: &mut oltap_core::Session,
    queue: &Arc<ResponseQueue>,
    budget: &Option<MemoryBudget>,
    cancel: &CancellationToken,
    shared: &Arc<Shared>,
) {
    let cfg = &shared.cfg;
    let c = &shared.counters;
    let mut last_active = Instant::now();
    loop {
        if cancel.is_cancelled() {
            return;
        }
        if shared.draining.load(Ordering::SeqCst) {
            let retry = shared.retry_hint_ms();
            let _ = send_control(
                queue,
                cancel,
                cfg,
                Response::Error {
                    error: DbError::Unavailable {
                        reason: "draining".into(),
                        retry_after_ms: retry,
                    },
                    retry_after_ms: retry,
                },
            );
            // Give the writer a moment to flush the notice.
            let flush_end = Instant::now() + Duration::from_millis(250);
            while !queue.is_empty() && Instant::now() < flush_end {
                std::thread::sleep(Duration::from_millis(2));
            }
            return;
        }
        // Idle poll: peek one byte with a short timeout so the loop can
        // observe drain/cancel/idle deadlines between requests.
        let _ = stream.set_read_timeout(Some(POLL_TICK));
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // orderly EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_active.elapsed() >= cfg.idle_timeout {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // Bytes are on the wire: read the whole frame under the real
        // deadline (a peer stalling mid-frame is a torn frame).
        let _ = stream.set_read_timeout(Some(cfg.read_timeout));
        let request = match read_frame(stream) {
            Ok(Some(payload)) => match Request::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    let _ = send_control(
                        queue,
                        cancel,
                        cfg,
                        Response::Error {
                            error: e,
                            retry_after_ms: 0,
                        },
                    );
                    return; // desynchronized stream: close
                }
            },
            Ok(None) => return,
            Err(_) => return, // torn frame or transport error
        };
        last_active = Instant::now();
        match request {
            Request::Close => return,
            Request::Hello { .. } => {
                if send_control(
                    queue,
                    cancel,
                    cfg,
                    Response::Error {
                        error: DbError::InvalidArgument(
                            "duplicate Hello after handshake".into(),
                        ),
                        retry_after_ms: 0,
                    },
                )
                .is_err()
                {
                    return;
                }
            }
            Request::Query { sql } => {
                c.queries.fetch_add(1, Ordering::Relaxed);
                // Injected edge faults, in request order: a torn request
                // is reported then the connection closes; a dropped
                // connection vanishes mid-query with no response at all
                // (the client sees a dead socket; the session drop must
                // roll back any open transaction).
                if shared.faults.should_fire(points::NET_READ_TORN) {
                    c.torn_requests.fetch_add(1, Ordering::Relaxed);
                    let _ = send_control(
                        queue,
                        cancel,
                        cfg,
                        Response::Error {
                            error: DbError::Corruption(
                                "torn request frame".into(),
                            ),
                            retry_after_ms: 0,
                        },
                    );
                    let flush_end = Instant::now() + Duration::from_millis(250);
                    while !queue.is_empty() && Instant::now() < flush_end {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    return;
                }
                if shared
                    .faults
                    .should_fire(points::NET_CONN_DROP_MID_QUERY)
                {
                    c.dropped_mid_query.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                if stream_result(session.execute(&sql), queue, budget, cancel, shared)
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Sends one small control frame (ack/done/error): exempt from the
/// governor claim so refusals and completions are always deliverable.
fn send_control(
    queue: &Arc<ResponseQueue>,
    cancel: &CancellationToken,
    cfg: &ServerConfig,
    resp: Response,
) -> Result<()> {
    queue.push(frame_bytes(&resp.encode()), 0, cancel, cfg.write_timeout)
}

/// Streams one statement result into the response queue. Returns `Err`
/// only for connection-fatal conditions (queue closed/stalled, peer
/// cancelled); statement errors are sent to the client and are `Ok`.
fn stream_result(
    result: Result<QueryResult>,
    queue: &Arc<ResponseQueue>,
    budget: &Option<MemoryBudget>,
    cancel: &CancellationToken,
    shared: &Arc<Shared>,
) -> Result<()> {
    let cfg = &shared.cfg;
    let c = &shared.counters;
    match result {
        Ok(QueryResult::Rows { schema, rows }) => {
            let total = rows.len() as u64;
            let frames = encode_row_frames(&schema, rows, cfg.rows_per_frame);
            for payload in frames {
                let frame = frame_bytes(&payload);
                // Claim queued response bytes from the governor; a
                // refusal sheds the rest of this result with a typed
                // error instead of buffering past the limit.
                let reserved = frame.len() as u64;
                if let Some(b) = budget {
                    if let Err(e) = b.try_reserve(reserved) {
                        c.shed_responses.fetch_add(1, Ordering::Relaxed);
                        c.statement_errors.fetch_add(1, Ordering::Relaxed);
                        let retry = shared.retry_hint_ms();
                        return send_control(
                            queue,
                            cancel,
                            cfg,
                            Response::Error {
                                error: e,
                                retry_after_ms: retry,
                            },
                        );
                    }
                }
                if let Err(e) = queue.push(frame, reserved, cancel, cfg.write_timeout) {
                    // Undo the claim for the frame that never queued.
                    if let Some(b) = budget {
                        b.release(reserved);
                    }
                    return Err(e);
                }
            }
            send_control(
                queue,
                cancel,
                cfg,
                Response::Done {
                    kind: DoneKind::RowsEnd,
                    count: total,
                    note: String::new(),
                },
            )
        }
        Ok(QueryResult::Affected(n)) => send_control(
            queue,
            cancel,
            cfg,
            Response::Done {
                kind: DoneKind::Affected,
                count: n as u64,
                note: String::new(),
            },
        ),
        Ok(QueryResult::Ddl) => send_control(
            queue,
            cancel,
            cfg,
            Response::Done {
                kind: DoneKind::Ddl,
                count: 0,
                note: String::new(),
            },
        ),
        Ok(QueryResult::Txn(kind)) => send_control(
            queue,
            cancel,
            cfg,
            Response::Done {
                kind: DoneKind::Txn,
                count: 0,
                note: kind.to_string(),
            },
        ),
        Err(e) => {
            c.statement_errors.fetch_add(1, Ordering::Relaxed);
            // A tripped *connection* (not per-query deadline) is fatal.
            if cancel.is_cancelled() {
                return Err(e);
            }
            let retry = match &e {
                DbError::Unavailable { retry_after_ms, .. } => *retry_after_ms,
                DbError::ResourceExhausted { .. } | DbError::DeadlineExceeded(_) => {
                    shared.retry_hint_ms()
                }
                _ => 0,
            };
            send_control(
                queue,
                cancel,
                cfg,
                Response::Error {
                    error: e,
                    retry_after_ms: retry,
                },
            )
        }
    }
}

/// Splits a result set into `Schema` + chunked `Rows` payloads, keeping
/// every frame under [`MAX_FRAME`].
fn encode_row_frames(
    schema: &oltap_common::schema::SchemaRef,
    rows: Vec<oltap_common::Row>,
    rows_per_frame: usize,
) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(2 + rows.len() / rows_per_frame.max(1));
    out.push(
        Response::Schema {
            fields: schema.fields().to_vec(),
        }
        .encode(),
    );
    let mut rows = rows;
    let chunk = rows_per_frame.max(1);
    while !rows.is_empty() {
        let rest = rows.split_off(rows.len().min(chunk));
        let payload = Response::Rows { rows }.encode();
        debug_assert!(payload.len() <= MAX_FRAME);
        out.push(payload);
        rows = rest;
    }
    out
}

// --------------------------------------------------------------- writer

fn writer_loop(
    mut stream: TcpStream,
    queue: Arc<ResponseQueue>,
    budget: Option<MemoryBudget>,
    cancel: CancellationToken,
    shared: Arc<Shared>,
) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    loop {
        match queue.pop(POLL_TICK) {
            Pop::Frame(frame, reserved) => {
                // Injected partial write: half the frame goes out, then
                // the socket dies — the client must detect the torn
                // frame via CRC/length and the in-flight query must be
                // cancelled server-side.
                if shared.faults.should_fire(points::NET_WRITE_PARTIAL) {
                    shared
                        .counters
                        .partial_writes
                        .fetch_add(1, Ordering::Relaxed);
                    let half = (frame.len() / 2).max(1);
                    let _ = stream.write_all(&frame[..half]);
                    let _ = stream.flush();
                    let _ = stream.shutdown(Shutdown::Both);
                    if let Some(b) = &budget {
                        b.release(reserved);
                    }
                    cancel.cancel();
                    queue.close();
                    break;
                }
                let res = stream.write_all(&frame).and_then(|_| stream.flush());
                if let Some(b) = &budget {
                    b.release(reserved);
                }
                if res.is_err() {
                    // Slow or dead client: cut the connection and cancel
                    // whatever the reader is executing for it.
                    shared
                        .counters
                        .slow_client_disconnects
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                    cancel.cancel();
                    queue.close();
                    break;
                }
            }
            Pop::Closed => break,
            Pop::Timeout => {
                if cancel.is_cancelled() && queue.is_empty() {
                    break;
                }
            }
        }
    }
    // Drain any frames left after close, releasing their claims.
    while let Pop::Frame(_, reserved) = queue.pop(Duration::ZERO) {
        if let Some(b) = &budget {
            b.release(reserved);
        }
    }
}
