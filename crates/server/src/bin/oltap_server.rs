//! Standalone oltapdb server.
//!
//! ```text
//! oltap_server [--addr HOST:PORT] [--wal PATH] [--max-conns N]
//! ```
//!
//! Serves the wire protocol until SIGINT-less environments kill it; on
//! orderly process exit the server drains (finish OLTP, cancel OLAP,
//! bounded). With `--wal` the database is durable and recovers on
//! restart; without it the store is in-memory.

use oltap_core::Database;
use oltap_server::{Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:5433".into(),
        ..ServerConfig::default()
    };
    let mut wal: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = args.next().expect("--addr needs HOST:PORT"),
            "--wal" => wal = Some(args.next().expect("--wal needs PATH").into()),
            "--max-conns" => {
                cfg.max_conns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-conns needs a number")
            }
            "--query-timeout-ms" => {
                cfg.query_timeout = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(Duration::from_millis)
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: oltap_server [--addr HOST:PORT] [--wal PATH] \
                     [--max-conns N] [--query-timeout-ms MS]"
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let db = match &wal {
        Some(path) => Database::open(path),
        None => Ok(Database::new()),
    };
    let db = match db {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("failed to open database: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::start(Arc::clone(&db), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "oltap_server listening on {} ({} wal)",
        server.local_addr(),
        if wal.is_some() { "durable" } else { "no" }
    );
    // Serve forever; park cheaply. Process kill is covered by WAL
    // recovery, orderly exit by the Drop-drain.
    loop {
        std::thread::park();
    }
}
