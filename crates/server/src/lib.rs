//! # oltap-server
//!
//! The network front end for oltapdb: a length-prefixed, CRC-checked
//! framed wire protocol ([`wire`]) served over TCP by a multi-threaded
//! server ([`server`]) that extends the engine's robustness guarantees
//! to the edge:
//!
//! * per-connection sessions wired into admission control and the
//!   memory governor, so OLTP priority and memory discipline survive at
//!   the network boundary;
//! * bounded response queues with slow-client backpressure — a client
//!   that stops reading blocks the producer and eventually has its
//!   query cancelled, never an unbounded buffer;
//! * read/write deadlines and idle timeouts that cancel in-flight work
//!   through the engine's cooperative cancellation tokens;
//! * overload shedding with typed [`oltap_common::DbError::Unavailable`]
//!   responses carrying retry-after hints;
//! * `net.*` fault injection points for chaos tests (torn frames,
//!   partial writes, dropped connections, accept failures);
//! * graceful bounded drain: analytic work cancelled immediately,
//!   transactional work given a grace period, stragglers force-closed.

pub mod server;
pub mod wire;

pub use server::{DrainReport, Server, ServerConfig, ServerStats};
pub use wire::{DoneKind, Request, Response, MAX_FRAME, PROTOCOL_VERSION};
