//! Dual-format tables: a row store and a columnar image of the same data,
//! simultaneously active and transactionally consistent.
//!
//! This models Oracle Database In-Memory's architecture (paper §3,
//! \[22, 27\]): the row store remains the system of record and serves OLTP;
//! a compressed columnar image (built by *population*) serves analytics;
//! DML invalidates columnar rows through a journal, and scans reconcile
//! image + journal so that analytic queries are **always** consistent with
//! the row store at their snapshot — the "strict transactional consistency
//! between both formats, in real time" the paper highlights.
//!
//! Mechanics:
//!
//! * All DML executes against the [`RowStore`] under MVCC, and additionally
//!   enlists a journal entry that records the touched primary key at commit
//!   time.
//! * [`DualFormatTable::populate`] (re)builds the columnar segments from
//!   the row-store state at the GC watermark and prunes the journal below
//!   it. Population is the analog of Oracle's IMCU build.
//! * An analytic scan at snapshot `s` reads the segments, masks out rows
//!   whose key appears in the journal within `(image_ts, s]` (stale), and
//!   overlays the current row-store versions of those keys plus
//!   newly-inserted keys — each visible row is produced exactly once.

use crate::buffer::SegmentPager;
use crate::predicate::ScanPredicate;
use crate::rowstore::RowStore;
use crate::segment::Segment;
use oltap_common::hash::{FxHashMap, FxHashSet};
use oltap_common::ids::{SegmentId, TxnId};
use oltap_common::schema::SchemaRef;
use oltap_common::{Batch, BitSet, DbError, Result, Row};
use oltap_txn::{Transaction, Ts, WriteSetEntry};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared invalidation journal: (commit_ts, primary key).
type Journal = Arc<RwLock<Vec<(Ts, Row)>>>;

/// Write-set adapter that publishes touched keys at commit time.
struct JournalEntry {
    journal: Journal,
    key: Row,
}

impl WriteSetEntry for JournalEntry {
    fn commit(&self, _txn: TxnId, commit_ts: Ts) {
        self.journal.write().push((commit_ts, self.key.clone()));
    }
    fn abort(&self, _txn: TxnId) {}
}

struct ColumnarImage {
    /// Snapshot timestamp the image was built at.
    image_ts: Ts,
    segments: Vec<Arc<Segment>>,
    /// Primary key → (segment index, offset) in the image.
    pk_locs: FxHashMap<Row, (usize, u32)>,
}

/// A dual-format table.
pub struct DualFormatTable {
    schema: SchemaRef,
    rows: RowStore,
    image: RwLock<ColumnarImage>,
    journal: Journal,
    next_segment: AtomicU64,
    /// Rows per columnar segment when populating.
    segment_rows: usize,
    /// When set, populated image segments are paged through the buffer
    /// pool instead of held resident.
    pager: Option<Arc<SegmentPager>>,
}

impl std::fmt::Debug for DualFormatTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let image = self.image.read();
        f.debug_struct("DualFormatTable")
            .field("image_ts", &image.image_ts)
            .field("segments", &image.segments.len())
            .field("journal_len", &self.journal.read().len())
            .finish()
    }
}

impl DualFormatTable {
    /// Creates a dual-format table. Requires a primary key (the journal
    /// identifies rows by key).
    pub fn new(schema: SchemaRef) -> Result<Self> {
        Self::with_pager(schema, None)
    }

    /// Creates a dual-format table whose columnar image is paged through
    /// `pager`'s buffer pool when one is supplied.
    pub fn with_pager(schema: SchemaRef, pager: Option<Arc<SegmentPager>>) -> Result<Self> {
        if !schema.has_primary_key() {
            return Err(DbError::InvalidArgument(
                "dual-format tables require a primary key".into(),
            ));
        }
        Ok(DualFormatTable {
            rows: RowStore::new(Arc::clone(&schema)),
            image: RwLock::new(ColumnarImage {
                image_ts: 0,
                segments: Vec::new(),
                pk_locs: FxHashMap::default(),
            }),
            journal: Arc::new(RwLock::new(Vec::new())),
            next_segment: AtomicU64::new(1),
            segment_rows: 131_072,
            schema,
            pager,
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The underlying row store (OLTP access path).
    pub fn row_store(&self) -> &RowStore {
        &self.rows
    }

    /// Unpruned journal length (freshness metric).
    pub fn journal_len(&self) -> usize {
        self.journal.read().len()
    }

    /// The image's population timestamp.
    pub fn image_ts(&self) -> Ts {
        self.image.read().image_ts
    }

    /// Number of columnar segments in the image.
    pub fn segment_count(&self) -> usize {
        self.image.read().segments.len()
    }

    fn enlist_journal(&self, txn: &Transaction, key: Row) -> Result<()> {
        txn.enlist(Arc::new(JournalEntry {
            journal: Arc::clone(&self.journal),
            key,
        }))
    }

    /// Transactional insert (row store + journal).
    pub fn insert(&self, txn: &Transaction, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        let key = self.schema.key_of(&row);
        self.rows.insert(txn, row)?;
        self.enlist_journal(txn, key)
    }

    /// Bulk-loads committed rows (bypasses transactions and the journal —
    /// call [`DualFormatTable::populate`] afterwards).
    pub fn bulk_load(&self, rows: &[Row], ts: Ts) -> Result<()> {
        for r in rows {
            self.rows.load_committed(r.clone(), ts)?;
        }
        // Bulk loads invalidate wholesale: journal each key so scans stay
        // correct before the next population.
        let mut journal = self.journal.write();
        for r in rows {
            journal.push((ts, self.schema.key_of(r)));
        }
        Ok(())
    }

    /// Transactional update.
    pub fn update(&self, txn: &Transaction, key: &Row, row: Row) -> Result<()> {
        self.rows.update(txn, key, row)?;
        self.enlist_journal(txn, key.clone())
    }

    /// Transactional delete.
    pub fn delete(&self, txn: &Transaction, key: &Row) -> Result<()> {
        self.rows.delete(txn, key)?;
        self.enlist_journal(txn, key.clone())
    }

    /// OLTP point lookup — always served by the row format.
    pub fn get(&self, key: &Row, read_ts: Ts, me: TxnId) -> Option<Row> {
        self.rows.get(key, read_ts, me)
    }

    /// Rebuilds the columnar image from the row store at `watermark` and
    /// prunes the journal below it. Returns the number of image rows.
    pub fn populate(&self, watermark: Ts) -> Result<usize> {
        // Snapshot the rows first (cheap reads, no image lock held).
        let rows: Vec<Row> = self
            .rows
            .scan_rows(watermark, TxnId(u64::MAX - 2), None)
            .collect();
        let mut segments = Vec::new();
        let mut pk_locs = FxHashMap::default();
        for chunk in rows.chunks(self.segment_rows.max(1)) {
            let id = SegmentId(self.next_segment.fetch_add(1, Ordering::Relaxed));
            let seg = match &self.pager {
                Some(pager) => {
                    Segment::build_paged(id, Arc::clone(&self.schema), chunk, watermark, pager)?
                }
                None => {
                    Segment::build_visible_from(id, Arc::clone(&self.schema), chunk, watermark)?
                }
            };
            let seg_idx = segments.len();
            for (off, r) in chunk.iter().enumerate() {
                pk_locs.insert(self.schema.key_of(r), (seg_idx, off as u32));
            }
            segments.push(Arc::new(seg));
        }
        let n = rows.len();
        let mut image = self.image.write();
        *image = ColumnarImage {
            image_ts: watermark,
            segments,
            pk_locs,
        };
        // Prune journal entries at or below the new image timestamp.
        self.journal.write().retain(|(ts, _)| *ts > watermark);
        Ok(n)
    }

    /// Analytic scan — served by the columnar image reconciled with the
    /// journal overlay, consistent at `read_ts`.
    pub fn scan_analytic(
        &self,
        projection: &[usize],
        pred: &ScanPredicate,
        read_ts: Ts,
        me: TxnId,
        batch_size: usize,
    ) -> Result<Vec<Batch>> {
        pred.validate(&self.schema)?;
        let image = self.image.read();
        if read_ts < image.image_ts {
            // The snapshot predates the image: fall back to the row store
            // (only possible for snapshots older than the population
            // watermark, i.e. none in steady state).
            return self.rows.scan(projection, pred, read_ts, me, batch_size);
        }
        // Keys whose columnar copy may be stale. No upper bound on the
        // journal timestamp is needed: the overlay below reads the row
        // store *at the snapshot*, so a key invalidated after `read_ts`
        // simply overlays the same version the image holds — still exactly
        // once, still the right version. The bound is inclusive at
        // `image_ts` so that bootstrap loads stamped at the initial (empty)
        // image timestamp are not considered covered by it.
        let stale: FxHashSet<Row> = self
            .journal
            .read()
            .iter()
            .filter(|(ts, _)| *ts >= image.image_ts)
            .map(|(_, k)| k.clone())
            .collect();

        // Per-segment mask of stale offsets.
        let mut masks: Vec<Option<BitSet>> = vec![None; image.segments.len()];
        for key in &stale {
            if let Some(&(seg_idx, off)) = image.pk_locs.get(key) {
                masks[seg_idx]
                    .get_or_insert_with(|| {
                        BitSet::with_len(image.segments[seg_idx].row_count())
                    })
                    .set(off as usize);
            }
        }

        let mut out = Vec::new();
        for (seg, mask) in image.segments.iter().zip(&masks) {
            let sel = match seg.select(pred, read_ts, me)? {
                Some(sel) => sel,
                None => continue,
            };
            let mut sel = sel;
            if let Some(mask) = mask {
                sel.difference_with(mask);
            }
            let indexes = sel.to_selection();
            for chunk in indexes.chunks(batch_size.max(1)) {
                out.push(Batch::new(seg.gather_columns(projection, chunk)?)?);
            }
        }

        // Overlay: current row-store versions of stale/new keys.
        if !stale.is_empty() {
            let proj_schema = self.schema.project(projection);
            let mut buf = Vec::new();
            for key in &stale {
                if let Some(row) = self.rows.get(key, read_ts, me) {
                    if pred.matches_row(&row) {
                        buf.push(row.project(projection));
                    }
                }
            }
            for chunk in buf.chunks(batch_size.max(1)) {
                out.push(Batch::from_rows(&proj_schema, chunk)?);
            }
        }
        Ok(out)
    }

    /// OLTP-style scan — served entirely by the row format (for
    /// comparison and for queries the optimizer routes to the row store).
    pub fn scan_oltp(
        &self,
        projection: &[usize],
        pred: &ScanPredicate,
        read_ts: Ts,
        me: TxnId,
        batch_size: usize,
    ) -> Result<Vec<Batch>> {
        self.rows.scan(projection, pred, read_ts, me, batch_size)
    }

    /// Estimated visible rows.
    pub fn row_count_estimate(&self) -> usize {
        self.rows.key_count()
    }

    /// Runs MVCC GC on the row store.
    pub fn gc(&self, watermark: Ts) -> usize {
        self.rows.gc(watermark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use oltap_common::row;
    use oltap_common::{DataType, Field, Schema, Value};
    use oltap_txn::TransactionManager;

    const NOBODY: TxnId = TxnId(u64::MAX - 1);

    fn table() -> (Arc<TransactionManager>, DualFormatTable) {
        let schema = Arc::new(
            Schema::with_primary_key(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::new("region", DataType::Utf8),
                    Field::new("amount", DataType::Int64),
                ],
                &["id"],
            )
            .unwrap(),
        );
        (
            Arc::new(TransactionManager::new()),
            DualFormatTable::new(schema).unwrap(),
        )
    }

    fn count(t: &DualFormatTable, read_ts: Ts) -> usize {
        t.scan_analytic(&[0], &ScanPredicate::all(), read_ts, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum()
    }

    #[test]
    fn requires_primary_key() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        assert!(DualFormatTable::new(schema).is_err());
    }

    #[test]
    fn analytic_scan_before_population_reads_journal_overlay() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..10 {
            t.insert(&tx, row![i as i64, "eu", i as i64]).unwrap();
        }
        let cts = tx.commit().unwrap();
        assert_eq!(t.segment_count(), 0);
        assert_eq!(count(&t, cts), 10);
    }

    #[test]
    fn population_builds_image_and_prunes_journal() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..100 {
            t.insert(&tx, row![i as i64, "eu", i as i64]).unwrap();
        }
        tx.commit().unwrap();
        assert_eq!(t.journal_len(), 100);
        let n = t.populate(mgr.gc_watermark()).unwrap();
        assert_eq!(n, 100);
        assert_eq!(t.journal_len(), 0);
        assert!(t.segment_count() >= 1);
        assert_eq!(count(&t, mgr.now()), 100);
    }

    #[test]
    fn update_after_population_is_visible_exactly_once() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..10 {
            t.insert(&tx, row![i as i64, "eu", 0i64]).unwrap();
        }
        tx.commit().unwrap();
        t.populate(mgr.gc_watermark()).unwrap();

        let tx = mgr.begin();
        t.update(&tx, &row![3i64], row![3i64, "eu", 999i64]).unwrap();
        let cts = tx.commit().unwrap();

        // New snapshot: 10 rows, row 3 shows the new value.
        let batches = t
            .scan_analytic(&[0, 2], &ScanPredicate::all(), cts, NOBODY, 4096)
            .unwrap();
        let rows: Vec<Row> = batches.iter().flat_map(|b| b.to_rows()).collect();
        assert_eq!(rows.len(), 10);
        let updated: Vec<&Row> = rows.iter().filter(|r| r[0] == Value::Int(3)).collect();
        assert_eq!(updated.len(), 1);
        assert_eq!(updated[0][1], Value::Int(999));

        // Old snapshot: still the old value.
        let batches = t
            .scan_analytic(&[0, 2], &ScanPredicate::all(), cts - 1, NOBODY, 4096)
            .unwrap();
        let rows: Vec<Row> = batches.iter().flat_map(|b| b.to_rows()).collect();
        let old: Vec<&Row> = rows.iter().filter(|r| r[0] == Value::Int(3)).collect();
        assert_eq!(old.len(), 1);
        assert_eq!(old[0][1], Value::Int(0));
    }

    #[test]
    fn insert_and_delete_after_population() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..10 {
            t.insert(&tx, row![i as i64, "eu", 0i64]).unwrap();
        }
        tx.commit().unwrap();
        t.populate(mgr.gc_watermark()).unwrap();

        let tx = mgr.begin();
        t.insert(&tx, row![100i64, "us", 5i64]).unwrap();
        t.delete(&tx, &row![0i64]).unwrap();
        let cts = tx.commit().unwrap();

        assert_eq!(count(&t, cts), 10); // +1 insert, -1 delete
        assert_eq!(count(&t, cts - 1), 10);
        let rows: Vec<Row> = t
            .scan_analytic(&[0], &ScanPredicate::all(), cts, NOBODY, 4096)
            .unwrap()
            .iter()
            .flat_map(|b| b.to_rows())
            .collect();
        assert!(rows.iter().any(|r| r[0] == Value::Int(100)));
        assert!(!rows.iter().any(|r| r[0] == Value::Int(0)));
    }

    #[test]
    fn predicate_applies_to_both_image_and_overlay() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..20 {
            t.insert(&tx, row![i as i64, "eu", (i % 2) as i64]).unwrap();
        }
        tx.commit().unwrap();
        t.populate(mgr.gc_watermark()).unwrap();
        // Flip row 0's amount from 0 to 1 post-population.
        let tx = mgr.begin();
        t.update(&tx, &row![0i64], row![0i64, "eu", 1i64]).unwrap();
        let cts = tx.commit().unwrap();

        let pred = ScanPredicate::single(2, CmpOp::Eq, Value::Int(1));
        let total: usize = t
            .scan_analytic(&[0], &pred, cts, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 11); // 10 odd rows + updated row 0
    }

    #[test]
    fn point_reads_always_row_store() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        t.insert(&tx, row![1i64, "eu", 7i64]).unwrap();
        let cts = tx.commit().unwrap();
        assert_eq!(t.get(&row![1i64], cts, NOBODY).unwrap()[2], Value::Int(7));
        assert!(t.get(&row![2i64], cts, NOBODY).is_none());
    }

    #[test]
    fn repopulation_after_heavy_dml() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..50 {
            t.insert(&tx, row![i as i64, "eu", 0i64]).unwrap();
        }
        tx.commit().unwrap();
        t.populate(mgr.gc_watermark()).unwrap();
        for i in 0..50 {
            let tx = mgr.begin();
            t.update(&tx, &row![i as i64], row![i as i64, "eu", 1i64])
                .unwrap();
            tx.commit().unwrap();
        }
        assert_eq!(t.journal_len(), 50);
        t.populate(mgr.gc_watermark()).unwrap();
        assert_eq!(t.journal_len(), 0);
        let pred = ScanPredicate::single(2, CmpOp::Eq, Value::Int(1));
        let total: usize = t
            .scan_analytic(&[0], &pred, mgr.now(), NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn bulk_load_then_scan_consistent() {
        let (mgr, t) = table();
        let rows: Vec<Row> = (0..30).map(|i| row![i as i64, "eu", i as i64]).collect();
        t.bulk_load(&rows, 0).unwrap();
        assert_eq!(count(&t, mgr.now()), 30);
        t.populate(mgr.gc_watermark()).unwrap();
        assert_eq!(count(&t, mgr.now()), 30);
    }
}
