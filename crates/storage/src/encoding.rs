//! Column encodings for the compressed in-memory column store.
//!
//! The tutorial attributes much of the analytic speed of HANA, DB2 BLU, and
//! Oracle DBIM to *processing data in compressed form*: order-preserving
//! dictionary compression, run-length encoding, and dense bit-packing let a
//! scan touch a fraction of the bytes and evaluate predicates on small
//! integer codes instead of full values (§3; Willhalm et al. \[42\],
//! Raman et al. \[34\]). This module implements those encodings from scratch:
//!
//! * [`BitPacked`] — fixed-width bit-packing of `u64` codes (the substrate
//!   for everything else).
//! * [`ForPacked`] — frame-of-reference: store `v - min` bit-packed.
//! * [`Rle`] — run-length encoding for sorted/low-churn columns.
//! * [`Dictionary`] — order-preserving dictionary (sorted distinct values,
//!   codes are ranks) over any `Ord` value; comparisons against a literal
//!   become comparisons against a code.
//! * [`IntEncoding`] / [`StrEncoding`] — per-column choice made by a simple
//!   cost model ([`IntEncoding::choose`]).

use oltap_common::hash::FxHashMap;
use oltap_common::{DbError, Result};

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

/// Densely bit-packed unsigned codes with a fixed width of 0..=64 bits.
///
/// Width 0 is the degenerate "all values are zero" case and stores nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPacked {
    width: u8,
    len: usize,
    words: Vec<u64>,
}

impl BitPacked {
    /// Packs `values`, each of which must fit in `width` bits.
    pub fn pack(values: &[u64], width: u8) -> Result<Self> {
        assert!(width as usize <= 64);
        if width < 64 {
            let limit = 1u64 << width;
            if let Some(&bad) = values.iter().find(|&&v| v >= limit) {
                return Err(DbError::InvalidArgument(format!(
                    "value {bad} does not fit in {width} bits"
                )));
            }
        }
        let total_bits = values.len() * width as usize;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        let w = width as usize;
        for (i, &v) in values.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let bit = i * w;
            let word = bit / 64;
            let off = bit % 64;
            words[word] |= v << off;
            if off + w > 64 {
                words[word + 1] |= v >> (64 - off);
            }
        }
        Ok(BitPacked {
            width,
            len: values.len(),
            words,
        })
    }

    /// Minimal width able to represent every value in `values`.
    pub fn width_for(values: &[u64]) -> u8 {
        let max = values.iter().copied().max().unwrap_or(0);
        if max == 0 {
            0
        } else {
            (64 - max.leading_zeros()) as u8
        }
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Random access to value `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let w = self.width as usize;
        if w == 0 {
            return 0;
        }
        let bit = i * w;
        let word = bit / 64;
        let off = bit % 64;
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let mut v = self.words[word] >> off;
        if off + w > 64 {
            v |= self.words[word + 1] << (64 - off);
        }
        v & mask
    }

    /// Unpacks everything into a fresh vector.
    pub fn unpack(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.unpack_into(&mut out);
        out
    }

    /// Unpacks into `out` (cleared first). The loop is written so the
    /// compiler can unroll and vectorize the common widths.
    pub fn unpack_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(self.len);
        let mut buf = [0u64; 64];
        let mut start = 0usize;
        while start < self.len {
            let len = (self.len - start).min(64);
            self.unpack_block(start, &mut buf[..len]);
            out.extend_from_slice(&buf[..len]);
            start += len;
        }
    }

    /// Decodes `out.len()` consecutive values starting at `start` into
    /// `out`. This is the block-wise accessor the operate-on-compressed
    /// kernels use: a sequential bit cursor instead of per-index math, in
    /// a shape the compiler can unroll for the common widths.
    #[inline]
    pub fn unpack_block(&self, start: usize, out: &mut [u64]) {
        let w = self.width as usize;
        debug_assert!(start + out.len() <= self.len);
        if w == 0 {
            out.fill(0);
            return;
        }
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let mut bit = start * w;
        for slot in out.iter_mut() {
            let word = bit >> 6;
            let off = bit & 63;
            let mut v = self.words[word] >> off;
            if off + w > 64 {
                v |= self.words[word + 1] << (64 - off);
            }
            *slot = v & mask;
            bit += w;
        }
    }

    /// Heap bytes used by the packed representation.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Raw packed words (vectorized kernels operate on these directly).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassembles from raw parts (the inverse of [`BitPacked::words`] /
    /// [`BitPacked::width`] / [`BitPacked::len`], used by the column-page
    /// codec). Rejects a word vector too short for `len * width` bits so a
    /// truncated page cannot build an out-of-bounds accessor.
    pub fn from_parts(width: u8, len: usize, words: Vec<u64>) -> Result<Self> {
        if width as usize > 64 {
            return Err(DbError::InvalidArgument(format!(
                "bit width {width} out of range"
            )));
        }
        let need = (len * width as usize).div_ceil(64);
        if words.len() < need {
            return Err(DbError::Corruption(format!(
                "bit-packed payload has {} words, needs {need}",
                words.len()
            )));
        }
        Ok(BitPacked { width, len, words })
    }
}

// ---------------------------------------------------------------------------
// Frame of reference
// ---------------------------------------------------------------------------

/// Frame-of-reference encoding of signed integers: stores `v - min`
/// bit-packed with the minimal width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForPacked {
    base: i64,
    packed: BitPacked,
}

impl ForPacked {
    /// Encodes `values`.
    pub fn encode(values: &[i64]) -> Self {
        let base = values.iter().copied().min().unwrap_or(0);
        let shifted: Vec<u64> = values.iter().map(|&v| (v.wrapping_sub(base)) as u64).collect();
        let width = BitPacked::width_for(&shifted);
        ForPacked {
            base,
            packed: BitPacked::pack(&shifted, width).expect("width_for guarantees fit"),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Random access.
    #[inline]
    pub fn get(&self, i: usize) -> i64 {
        self.base.wrapping_add(self.packed.get(i) as i64)
    }

    /// Decodes everything.
    pub fn decode(&self) -> Vec<i64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// The raw shifted code at `i` (`value - base` as unsigned). Predicate
    /// evaluation compares in this code domain to skip per-row adds.
    #[inline]
    pub fn raw_code(&self, i: usize) -> u64 {
        self.packed.get(i)
    }

    /// The frame base (minimum value).
    pub fn base(&self) -> i64 {
        self.base
    }

    /// Bits per value.
    pub fn width(&self) -> u8 {
        self.packed.width()
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.packed.size_bytes() + 8
    }

    /// The underlying bit-packed shifted codes (for serialization).
    pub fn packed(&self) -> &BitPacked {
        &self.packed
    }

    /// Reassembles from a frame base and packed codes (page codec inverse
    /// of [`ForPacked::base`] / [`ForPacked::packed`]).
    pub fn from_parts(base: i64, packed: BitPacked) -> Self {
        ForPacked { base, packed }
    }
}

// ---------------------------------------------------------------------------
// Run-length encoding
// ---------------------------------------------------------------------------

/// Run-length encoding of `i64` values: `(value, run_length)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rle {
    runs: Vec<(i64, u32)>,
    len: usize,
}

impl Rle {
    /// Encodes `values`.
    pub fn encode(values: &[i64]) -> Self {
        let mut runs: Vec<(i64, u32)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((rv, rl)) if *rv == v && *rl < u32::MAX => *rl += 1,
                _ => runs.push((v, 1)),
            }
        }
        Rle {
            runs,
            len: values.len(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (compression quality metric).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The runs.
    pub fn runs(&self) -> &[(i64, u32)] {
        &self.runs
    }

    /// Decodes everything.
    pub fn decode(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len);
        for &(v, n) in &self.runs {
            out.extend(std::iter::repeat_n(v, n as usize));
        }
        out
    }

    /// Random access by binary search over cumulative run offsets — O(runs)
    /// here since we do a linear scan; callers needing hot random access
    /// should decode first.
    pub fn get(&self, mut i: usize) -> i64 {
        for &(v, n) in &self.runs {
            if i < n as usize {
                return v;
            }
            i -= n as usize;
        }
        panic!("RLE index out of range");
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.runs.len() * 12
    }

    /// Reassembles from runs (page codec inverse of [`Rle::runs`]). The
    /// run lengths must sum to `len`; a mismatch means a corrupt page.
    pub fn from_parts(runs: Vec<(i64, u32)>, len: usize) -> Result<Self> {
        let total: usize = runs.iter().map(|&(_, n)| n as usize).sum();
        if total != len {
            return Err(DbError::Corruption(format!(
                "RLE runs cover {total} rows, header says {len}"
            )));
        }
        Ok(Rle { runs, len })
    }
}

// ---------------------------------------------------------------------------
// Sorted-run delta encoding
// ---------------------------------------------------------------------------

/// Delta encoding for *non-decreasing* integer runs: the value at every
/// 64-row block start is stored verbatim (an anchor) and everything else as
/// a bit-packed unsigned delta from its predecessor. Sorted cold data — a
/// time column ordered by the merge, a clustered key — compresses to the
/// width of its typical *step* instead of its range, and sortedness makes
/// range predicates answerable by binary search instead of a scan.
///
/// Only the freeze pass emits this encoding ([`IntEncoding::choose_frozen`]);
/// the hot write path never pays the sortedness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaEnc {
    anchors: Vec<i64>,
    deltas: BitPacked,
    len: usize,
}

impl DeltaEnc {
    /// Encodes `values` when they are non-decreasing; `None` otherwise.
    pub fn try_encode(values: &[i64]) -> Option<Self> {
        if values.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        let mut anchors = Vec::with_capacity(values.len().div_ceil(64));
        let mut deltas = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            if i % 64 == 0 {
                anchors.push(v);
                deltas.push(0);
            } else {
                // Non-decreasing ⇒ the true difference is non-negative and
                // fits u64 even across the full i64 range.
                deltas.push(v.wrapping_sub(values[i - 1]) as u64);
            }
        }
        let width = BitPacked::width_for(&deltas);
        Some(DeltaEnc {
            anchors,
            deltas: BitPacked::pack(&deltas, width).expect("width_for guarantees fit"),
            len: values.len(),
        })
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Random access: decode the 64-block prefix up to `i`.
    pub fn get(&self, i: usize) -> i64 {
        debug_assert!(i < self.len);
        let bstart = (i / 64) * 64;
        let mut v = self.anchors[i / 64];
        let n = i - bstart;
        if n > 0 {
            let mut buf = [0u64; 64];
            self.deltas.unpack_block(bstart + 1, &mut buf[..n]);
            for &d in &buf[..n] {
                v = v.wrapping_add(d as i64);
            }
        }
        v
    }

    /// Decodes `out.len()` consecutive values starting at `start` — the
    /// block accessor the scan kernels feed from. Runs a prefix sum over
    /// each touched 64-delta block from its anchor.
    pub fn decode_block(&self, start: usize, out: &mut [i64]) {
        debug_assert!(start + out.len() <= self.len);
        let mut filled = 0usize;
        let mut bstart = (start / 64) * 64;
        let mut dbuf = [0u64; 64];
        while filled < out.len() {
            let blen = (self.len - bstart).min(64);
            self.deltas.unpack_block(bstart, &mut dbuf[..blen]);
            let mut v = self.anchors[bstart / 64];
            for (j, &d) in dbuf[..blen].iter().enumerate() {
                if j > 0 {
                    v = v.wrapping_add(d as i64);
                }
                if bstart + j >= start {
                    out[filled] = v;
                    filled += 1;
                    if filled == out.len() {
                        return;
                    }
                }
            }
            bstart += blen;
        }
    }

    /// Decodes everything.
    pub fn decode(&self) -> Vec<i64> {
        let mut out = vec![0i64; self.len];
        if self.len > 0 {
            self.decode_block(0, &mut out);
        }
        out
    }

    /// First index whose value is `>= value` (the column is sorted, so
    /// range predicates become two binary searches).
    pub fn lower_bound(&self, value: i64) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.get(mid) < value {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First index whose value is `> value`.
    pub fn upper_bound(&self, value: i64) -> usize {
        let (mut lo, mut hi) = (0usize, self.len);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.get(mid) <= value {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        self.anchors.len() * 8 + self.deltas.size_bytes()
    }

    /// Block anchors (for serialization).
    pub fn anchors(&self) -> &[i64] {
        &self.anchors
    }

    /// Packed per-row deltas (for serialization).
    pub fn deltas(&self) -> &BitPacked {
        &self.deltas
    }

    /// Reassembles from parts (page codec inverse of [`DeltaEnc::anchors`] /
    /// [`DeltaEnc::deltas`]). The shape must be internally consistent or the
    /// page is corrupt.
    pub fn from_parts(anchors: Vec<i64>, deltas: BitPacked, len: usize) -> Result<Self> {
        if deltas.len() != len || anchors.len() != len.div_ceil(64) {
            return Err(DbError::Corruption(format!(
                "delta encoding shape mismatch: {} anchors / {} deltas for {len} rows",
                anchors.len(),
                deltas.len()
            )));
        }
        Ok(DeltaEnc {
            anchors,
            deltas,
            len,
        })
    }
}

// ---------------------------------------------------------------------------
// Order-preserving dictionary
// ---------------------------------------------------------------------------

/// Order-preserving dictionary encoding over any `Ord + Clone` value.
///
/// The dictionary is the sorted distinct values; a code is the rank of its
/// value, so `code_a < code_b ⇔ value_a < value_b` and range predicates can
/// be evaluated entirely on codes (the HANA/BLU trick the paper highlights).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dictionary<T: Ord + Clone> {
    dict: Vec<T>,
    codes: BitPacked,
}

impl<T: Ord + Clone + std::hash::Hash> Dictionary<T> {
    /// Builds the dictionary and codes for `values`.
    pub fn encode(values: &[T]) -> Self {
        let mut dict: Vec<T> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let rank: FxHashMap<&T, u64> = dict
            .iter()
            .enumerate()
            .map(|(i, v)| (v, i as u64))
            .collect();
        let codes: Vec<u64> = values.iter().map(|v| rank[v]).collect();
        let width = BitPacked::width_for(&codes);
        Dictionary {
            dict,
            codes: BitPacked::pack(&codes, width).expect("codes fit"),
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Dictionary cardinality.
    pub fn cardinality(&self) -> usize {
        self.dict.len()
    }

    /// The sorted distinct values.
    pub fn dict(&self) -> &[T] {
        &self.dict
    }

    /// The packed codes.
    pub fn codes(&self) -> &BitPacked {
        &self.codes
    }

    /// The value at row `i`.
    pub fn get(&self, i: usize) -> &T {
        &self.dict[self.codes.get(i) as usize]
    }

    /// Decodes all rows.
    pub fn decode(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i).clone()).collect()
    }

    /// The code for `value` if it occurs in the dictionary.
    pub fn code_of(&self, value: &T) -> Option<u64> {
        self.dict.binary_search(value).ok().map(|i| i as u64)
    }

    /// The rank a value *would* have: the number of dictionary entries
    /// `< value`. Lets range predicates on absent literals still be lowered
    /// to code comparisons.
    pub fn lower_bound_code(&self, value: &T) -> u64 {
        match self.dict.binary_search(value) {
            Ok(i) | Err(i) => i as u64,
        }
    }

    /// Reassembles from a sorted dictionary and packed codes (page codec
    /// inverse of [`Dictionary::dict`] / [`Dictionary::codes`]). Every code
    /// must index into the dictionary; out-of-range codes mean corruption.
    pub fn from_parts(dict: Vec<T>, codes: BitPacked) -> Result<Self> {
        let card = dict.len() as u64;
        for i in 0..codes.len() {
            if codes.get(i) >= card {
                return Err(DbError::Corruption(format!(
                    "dictionary code {} out of range (cardinality {card})",
                    codes.get(i)
                )));
            }
        }
        Ok(Dictionary { dict, codes })
    }
}

impl Dictionary<String> {
    /// Heap bytes used (dictionary strings + packed codes).
    pub fn size_bytes(&self) -> usize {
        self.dict.iter().map(|s| s.len() + 24).sum::<usize>() + self.codes.size_bytes()
    }
}

// ---------------------------------------------------------------------------
// Per-column encoding selection
// ---------------------------------------------------------------------------

/// The encoding chosen for an `i64` column chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum IntEncoding {
    /// Uncompressed values (fallback / incompressible).
    Raw(Vec<i64>),
    /// Frame-of-reference bit-packed.
    For(ForPacked),
    /// Run-length encoded.
    Rle(Rle),
    /// Dictionary (pays off at very low cardinality with wide ranges).
    Dict(Box<Dictionary<i64>>),
    /// Sorted-run delta encoding (frozen cold segments only).
    Delta(DeltaEnc),
}

impl IntEncoding {
    /// Picks the smallest encoding for `values` by measuring each
    /// candidate's footprint (cheap: FOR and RLE are O(n), dictionary is
    /// only attempted when a sample suggests low cardinality).
    pub fn choose(values: &[i64]) -> Self {
        if values.is_empty() {
            return IntEncoding::Raw(Vec::new());
        }
        let raw_size = values.len() * 8;
        let fo = ForPacked::encode(values);
        let fo_size = fo.size_bytes();

        let rle = Rle::encode(values);
        let rle_size = rle.size_bytes();
        // Sample cardinality to decide whether a dictionary is worth building.
        let sample_card = {
            let mut set = oltap_common::hash::FxHashSet::default();
            for &v in values.iter().take(1024) {
                set.insert(v);
            }
            set.len()
        };
        let dict = if sample_card <= 256 {
            Some(Dictionary::encode(values))
        } else {
            None
        };
        let dict_size = dict
            .as_ref()
            .map(|d| d.dict().len() * 8 + d.codes().size_bytes())
            .unwrap_or(usize::MAX);

        let best = [
            (raw_size, 0usize),
            (fo_size, 1),
            (rle_size, 2),
            (dict_size, 3),
        ]
        .into_iter()
        .min_by_key(|&(s, _)| s)
        .unwrap()
        .1;

        match best {
            1 => IntEncoding::For(fo),
            2 => IntEncoding::Rle(rle),
            3 => IntEncoding::Dict(Box::new(dict.unwrap())),
            _ => IntEncoding::Raw(values.to_vec()),
        }
    }

    /// The freeze-pass encoding choice: exact costing with every candidate
    /// on the table. Unlike [`IntEncoding::choose`], the dictionary is
    /// costed from the *full* cardinality (no 1024-row sample cap — cold
    /// data is rewritten once, off the write path, so the O(n log n) build
    /// is acceptable) and sorted runs are offered [`DeltaEnc`]. Ties prefer
    /// FOR, whose packed codes feed the SWAR compare kernels directly.
    pub fn choose_frozen(values: &[i64]) -> Self {
        if values.is_empty() {
            return IntEncoding::Raw(Vec::new());
        }
        let raw_size = values.len() * 8;
        let fo = ForPacked::encode(values);
        let fo_size = fo.size_bytes();
        let rle = Rle::encode(values);
        let rle_size = rle.size_bytes();
        let dict = Dictionary::encode(values);
        let dict_size = dict.dict().len() * 8 + dict.codes().size_bytes();
        let delta = DeltaEnc::try_encode(values);
        let delta_size = delta.as_ref().map(|d| d.size_bytes()).unwrap_or(usize::MAX);

        let best = [
            (fo_size, 0usize),
            (delta_size, 1),
            (rle_size, 2),
            (dict_size, 3),
            (raw_size, 4),
        ]
        .into_iter()
        .min_by_key(|&(s, _)| s)
        .unwrap()
        .1;

        match best {
            0 => IntEncoding::For(fo),
            1 => IntEncoding::Delta(delta.unwrap()),
            2 => IntEncoding::Rle(rle),
            3 => IntEncoding::Dict(Box::new(dict)),
            _ => IntEncoding::Raw(values.to_vec()),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            IntEncoding::Raw(v) => v.len(),
            IntEncoding::For(f) => f.len(),
            IntEncoding::Rle(r) => r.len(),
            IntEncoding::Dict(d) => d.len(),
            IntEncoding::Delta(d) => d.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Random access.
    pub fn get(&self, i: usize) -> i64 {
        match self {
            IntEncoding::Raw(v) => v[i],
            IntEncoding::For(f) => f.get(i),
            IntEncoding::Rle(r) => r.get(i),
            IntEncoding::Dict(d) => *d.get(i),
            IntEncoding::Delta(d) => d.get(i),
        }
    }

    /// Decodes the whole chunk.
    pub fn decode(&self) -> Vec<i64> {
        match self {
            IntEncoding::Raw(v) => v.clone(),
            IntEncoding::For(f) => f.decode(),
            IntEncoding::Rle(r) => r.decode(),
            IntEncoding::Dict(d) => d.decode(),
            IntEncoding::Delta(d) => d.decode(),
        }
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        match self {
            IntEncoding::Raw(v) => v.len() * 8,
            IntEncoding::For(f) => f.size_bytes(),
            IntEncoding::Rle(r) => r.size_bytes(),
            IntEncoding::Dict(d) => d.dict().len() * 8 + d.codes().size_bytes(),
            IntEncoding::Delta(d) => d.size_bytes(),
        }
    }

    /// Short name for diagnostics and the compression experiment.
    pub fn name(&self) -> &'static str {
        match self {
            IntEncoding::Raw(_) => "raw",
            IntEncoding::For(_) => "for",
            IntEncoding::Rle(_) => "rle",
            IntEncoding::Dict(_) => "dict",
            IntEncoding::Delta(_) => "delta",
        }
    }
}

/// The encoding chosen for a string column chunk (always dictionary — the
/// paper's systems do the same; raw is kept for incompressible columns).
#[derive(Debug, Clone, PartialEq)]
pub enum StrEncoding {
    /// Uncompressed strings.
    Raw(Vec<String>),
    /// Order-preserving dictionary.
    Dict(Box<Dictionary<String>>),
}

impl StrEncoding {
    /// Chooses dictionary when it is smaller than raw storage.
    pub fn choose(values: &[String]) -> Self {
        if values.is_empty() {
            return StrEncoding::Raw(Vec::new());
        }
        let dict = Dictionary::encode(values);
        let raw_size: usize = values.iter().map(|s| s.len() + 24).sum();
        if dict.size_bytes() < raw_size {
            StrEncoding::Dict(Box::new(dict))
        } else {
            StrEncoding::Raw(values.to_vec())
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            StrEncoding::Raw(v) => v.len(),
            StrEncoding::Dict(d) => d.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Random access.
    pub fn get(&self, i: usize) -> &str {
        match self {
            StrEncoding::Raw(v) => &v[i],
            StrEncoding::Dict(d) => d.get(i),
        }
    }

    /// Decodes the whole chunk.
    pub fn decode(&self) -> Vec<String> {
        match self {
            StrEncoding::Raw(v) => v.clone(),
            StrEncoding::Dict(d) => d.decode(),
        }
    }

    /// Heap bytes used.
    pub fn size_bytes(&self) -> usize {
        match self {
            StrEncoding::Raw(v) => v.iter().map(|s| s.len() + 24).sum(),
            StrEncoding::Dict(d) => d.size_bytes(),
        }
    }

    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            StrEncoding::Raw(_) => "raw",
            StrEncoding::Dict(_) => "dict",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitpack_roundtrip_widths() {
        for width in [0u8, 1, 3, 7, 8, 13, 31, 32, 33, 63, 64] {
            let max = if width == 0 {
                0
            } else if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..257).map(|i| (i as u64 * 2654435761) & max).collect();
            let packed = BitPacked::pack(&values, width).unwrap();
            assert_eq!(packed.unpack(), values, "width {width}");
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(packed.get(i), v, "width {width} idx {i}");
            }
        }
    }

    #[test]
    fn unpack_block_matches_get_at_any_offset() {
        for width in [0u8, 1, 5, 8, 13, 32, 63, 64] {
            let max = if width == 0 {
                0
            } else if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..300).map(|i| (i as u64 * 2654435761) & max).collect();
            let packed = BitPacked::pack(&values, width).unwrap();
            for (start, len) in [(0usize, 64usize), (1, 63), (77, 100), (299, 1), (0, 300)] {
                let mut out = vec![0u64; len];
                packed.unpack_block(start, &mut out);
                assert_eq!(out, values[start..start + len], "width {width} at {start}");
            }
            assert_eq!(packed.unpack(), values, "width {width}");
        }
    }

    #[test]
    fn bitpack_rejects_oversized() {
        assert!(BitPacked::pack(&[8], 3).is_err());
        assert!(BitPacked::pack(&[7], 3).is_ok());
    }

    #[test]
    fn width_for_examples() {
        assert_eq!(BitPacked::width_for(&[]), 0);
        assert_eq!(BitPacked::width_for(&[0, 0]), 0);
        assert_eq!(BitPacked::width_for(&[1]), 1);
        assert_eq!(BitPacked::width_for(&[255]), 8);
        assert_eq!(BitPacked::width_for(&[256]), 9);
        assert_eq!(BitPacked::width_for(&[u64::MAX]), 64);
    }

    #[test]
    fn for_roundtrip_negative_values() {
        let values = vec![-100i64, -50, 0, 25, 99, -100, 99];
        let f = ForPacked::encode(&values);
        assert_eq!(f.decode(), values);
        assert_eq!(f.base(), -100);
        assert_eq!(f.width(), 8); // range 199 fits in 8 bits
    }

    #[test]
    fn for_handles_extremes() {
        let values = vec![i64::MIN, i64::MAX, 0];
        let f = ForPacked::encode(&values);
        assert_eq!(f.decode(), values);
    }

    #[test]
    fn rle_roundtrip_and_compression() {
        let values: Vec<i64> = (0..1000).map(|i| i / 100).collect();
        let r = Rle::encode(&values);
        assert_eq!(r.run_count(), 10);
        assert_eq!(r.decode(), values);
        assert_eq!(r.get(0), 0);
        assert_eq!(r.get(999), 9);
        assert!(r.size_bytes() < values.len() * 8 / 10);
    }

    #[test]
    fn dict_is_order_preserving() {
        let values: Vec<String> = ["pear", "apple", "fig", "apple", "pear"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let d = Dictionary::encode(&values);
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.decode(), values);
        // Codes order like values: apple < fig < pear.
        let ca = d.code_of(&"apple".to_string()).unwrap();
        let cf = d.code_of(&"fig".to_string()).unwrap();
        let cp = d.code_of(&"pear".to_string()).unwrap();
        assert!(ca < cf && cf < cp);
        assert_eq!(d.code_of(&"grape".to_string()), None);
        // lower_bound: 'grape' sorts between fig and pear.
        assert_eq!(d.lower_bound_code(&"grape".to_string()), cp);
    }

    #[test]
    fn int_encoding_choices() {
        // Sorted low-churn → RLE.
        let runs: Vec<i64> = (0..10_000).map(|i| i / 1000).collect();
        assert_eq!(IntEncoding::choose(&runs).name(), "rle");
        // Narrow range randoms → FOR.
        let narrow: Vec<i64> = (0..10_000)
            .map(|i| 1_000_000 + ((i * 2654435761u64 as i64) % 1000).abs())
            .collect();
        let e = IntEncoding::choose(&narrow);
        assert!(e.name() == "for" || e.name() == "dict", "got {}", e.name());
        assert_eq!(e.decode(), narrow);
        // Wide-range randoms → raw or for(64); must roundtrip regardless.
        let wide: Vec<i64> = (0..1000)
            .map(|i| (i as i64).wrapping_mul(0x9E3779B97F4A7C15u64 as i64))
            .collect();
        let e = IntEncoding::choose(&wide);
        assert_eq!(e.decode(), wide);
    }

    #[test]
    fn int_encoding_random_access_matches_decode() {
        let values: Vec<i64> = (0..500).map(|i| (i % 7) * 100).collect();
        for enc in [
            IntEncoding::Raw(values.clone()),
            IntEncoding::For(ForPacked::encode(&values)),
            IntEncoding::Rle(Rle::encode(&values)),
            IntEncoding::Dict(Box::new(Dictionary::encode(&values))),
        ] {
            let dec = enc.decode();
            for i in [0usize, 1, 250, 499] {
                assert_eq!(enc.get(i), dec[i], "{}", enc.name());
            }
        }
    }

    #[test]
    fn str_encoding_chooses_dict_for_low_cardinality() {
        let values: Vec<String> = (0..1000).map(|i| format!("status_{}", i % 4)).collect();
        let e = StrEncoding::choose(&values);
        assert_eq!(e.name(), "dict");
        assert_eq!(e.decode(), values);
        assert!(e.size_bytes() < 1000 * 10);
    }

    #[test]
    fn str_encoding_falls_back_to_raw() {
        // All-distinct long strings: dictionary adds only overhead.
        let values: Vec<String> = (0..100).map(|i| format!("unique-value-{i:06}")).collect();
        let e = StrEncoding::choose(&values);
        assert_eq!(e.decode(), values);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(IntEncoding::choose(&[]).len(), 0);
        assert_eq!(StrEncoding::choose(&[]).len(), 0);
        assert!(ForPacked::encode(&[]).is_empty());
        assert!(Rle::encode(&[]).is_empty());
    }
}
