//! Zone maps — per-segment min/max "in-memory storage indexes".
//!
//! Oracle Database In-Memory calls these *storage indexes*; Netezza called
//! them zone maps. Before scanning a segment, the engine checks each
//! pushed-down predicate against the column's `[min, max]` envelope and
//! skips the segment outright when no row can match — turning full scans
//! into partial scans for range-correlated data (time series especially,
//! which is exactly the machine-telemetry workload of the paper's §1).

use crate::predicate::{CmpOp, ColumnPredicate, JoinFilter, ScanPredicate};
use oltap_common::Value;
use std::cmp::Ordering;

/// Min/max/null statistics for one column of one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZone {
    /// Minimum non-null value (None when all rows are NULL).
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Number of NULL rows.
    pub null_count: usize,
    /// Total rows.
    pub row_count: usize,
}

impl ColumnZone {
    /// Builds the zone from values.
    pub fn build(values: &[Value]) -> Self {
        Self::build_iter(values.iter(), values.len())
    }

    /// Builds the zone from borrowed values — the clone-free path used by
    /// segment builds, which transpose rows into `&Value` slices.
    pub fn build_refs(values: &[&Value]) -> Self {
        Self::build_iter(values.iter().copied(), values.len())
    }

    fn build_iter<'a>(values: impl Iterator<Item = &'a Value>, row_count: usize) -> Self {
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        let mut null_count = 0;
        for v in values {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            min = Some(match min {
                Some(m) if m <= v => m,
                _ => v,
            });
            max = Some(match max {
                Some(m) if m >= v => m,
                _ => v,
            });
        }
        ColumnZone {
            min: min.cloned(),
            max: max.cloned(),
            null_count,
            row_count,
        }
    }

    /// Widens this zone to also cover `other` (streamed segment builds
    /// fold per-group zones into the segment zone group by group).
    pub fn absorb(&mut self, other: &ColumnZone) {
        self.null_count += other.null_count;
        self.row_count += other.row_count;
        if let Some(omin) = &other.min {
            if self.min.as_ref().is_none_or(|m| omin < m) {
                self.min = Some(omin.clone());
            }
        }
        if let Some(omax) = &other.max {
            if self.max.as_ref().is_none_or(|m| omax > m) {
                self.max = Some(omax.clone());
            }
        }
    }

    /// Can any row in this zone match `op literal`?
    ///
    /// Returns `true` conservatively; `false` is a proof that the segment
    /// can be skipped.
    pub fn may_match(&self, op: CmpOp, literal: &Value) -> bool {
        if literal.is_null() {
            return false; // NULL comparisons never match.
        }
        let (min, max) = match (&self.min, &self.max) {
            (Some(a), Some(b)) => (a, b),
            _ => return false, // all NULL
        };
        match op {
            CmpOp::Eq => min <= literal && literal <= max,
            // Ne can only be pruned when every row equals the literal.
            CmpOp::Ne => !(min == literal && max == literal && self.null_count == 0),
            CmpOp::Lt => min.cmp(literal) == Ordering::Less,
            CmpOp::Le => min <= literal,
            CmpOp::Gt => max.cmp(literal) == Ordering::Greater,
            CmpOp::Ge => max >= literal,
        }
    }
}

/// Zone maps for every column of a segment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ZoneMap {
    /// One entry per column, in schema order.
    pub columns: Vec<ColumnZone>,
}

impl ZoneMap {
    /// Builds zones column by column (input: per-column value slices).
    pub fn build(columns: &[Vec<Value>]) -> Self {
        ZoneMap {
            columns: columns.iter().map(|c| ColumnZone::build(c)).collect(),
        }
    }

    /// Builds zones from borrowed per-column value slices (clone-free
    /// segment build path).
    pub fn build_refs(columns: &[Vec<&Value>]) -> Self {
        ZoneMap {
            columns: columns.iter().map(|c| ColumnZone::build_refs(c)).collect(),
        }
    }

    /// An all-empty zone map for `ncols` columns (streamed builds widen it
    /// with [`ZoneMap::absorb`] as groups flush).
    pub fn empty(ncols: usize) -> Self {
        ZoneMap {
            columns: (0..ncols)
                .map(|_| ColumnZone {
                    min: None,
                    max: None,
                    null_count: 0,
                    row_count: 0,
                })
                .collect(),
        }
    }

    /// Widens every column zone to also cover `other` (same arity).
    pub fn absorb(&mut self, other: &ZoneMap) {
        debug_assert_eq!(self.columns.len(), other.columns.len());
        for (z, o) in self.columns.iter_mut().zip(&other.columns) {
            z.absorb(o);
        }
    }

    /// Can any row of the segment satisfy the whole conjunction?
    pub fn may_match(&self, pred: &ScanPredicate) -> bool {
        pred.conjuncts.iter().all(|c| self.may_match_one(c))
            && pred.join.as_ref().is_none_or(|j| self.may_match_join(j))
    }

    fn may_match_one(&self, c: &ColumnPredicate) -> bool {
        match self.columns.get(c.column) {
            Some(zone) => zone.may_match(c.op, &c.value),
            None => true, // unknown column: stay conservative
        }
    }

    /// Can any row of the segment find a join partner? The segment's key
    /// envelope must overlap the build side's key envelope in every key
    /// column. Equal values compare equal under `Value`'s total order, so
    /// disjoint envelopes prove the segment joins nothing.
    fn may_match_join(&self, j: &JoinFilter) -> bool {
        if j.build_rows == 0 {
            return false;
        }
        for (k, &c) in j.columns.iter().enumerate() {
            let Some(zone) = self.columns.get(c) else {
                continue; // unknown column: stay conservative
            };
            let (Some(zmin), Some(zmax)) = (&zone.min, &zone.max) else {
                return false; // all keys NULL: nothing joins
            };
            if let Some(Some((lo, hi))) = j.ranges.get(k) {
                if zmax < lo || zmin > hi {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone(lo: i64, hi: i64) -> ColumnZone {
        ColumnZone {
            min: Some(Value::Int(lo)),
            max: Some(Value::Int(hi)),
            null_count: 0,
            row_count: 100,
        }
    }

    #[test]
    fn build_computes_min_max_nulls() {
        let z = ColumnZone::build(&[
            Value::Int(5),
            Value::Null,
            Value::Int(-3),
            Value::Int(9),
            Value::Null,
        ]);
        assert_eq!(z.min, Some(Value::Int(-3)));
        assert_eq!(z.max, Some(Value::Int(9)));
        assert_eq!(z.null_count, 2);
        assert_eq!(z.row_count, 5);
    }

    #[test]
    fn all_null_zone_matches_nothing() {
        let z = ColumnZone::build(&[Value::Null, Value::Null]);
        assert!(!z.may_match(CmpOp::Eq, &Value::Int(1)));
        assert!(!z.may_match(CmpOp::Ne, &Value::Int(1)) || z.min.is_none());
        // Explicitly: pruning is allowed since no non-null values exist.
        assert!(!z.may_match(CmpOp::Gt, &Value::Int(i64::MIN)));
    }

    #[test]
    fn eq_pruning() {
        let z = zone(10, 20);
        assert!(z.may_match(CmpOp::Eq, &Value::Int(15)));
        assert!(z.may_match(CmpOp::Eq, &Value::Int(10)));
        assert!(z.may_match(CmpOp::Eq, &Value::Int(20)));
        assert!(!z.may_match(CmpOp::Eq, &Value::Int(9)));
        assert!(!z.may_match(CmpOp::Eq, &Value::Int(21)));
    }

    #[test]
    fn range_pruning() {
        let z = zone(10, 20);
        assert!(!z.may_match(CmpOp::Lt, &Value::Int(10)));
        assert!(z.may_match(CmpOp::Le, &Value::Int(10)));
        assert!(!z.may_match(CmpOp::Gt, &Value::Int(20)));
        assert!(z.may_match(CmpOp::Ge, &Value::Int(20)));
        assert!(z.may_match(CmpOp::Lt, &Value::Int(100)));
        assert!(z.may_match(CmpOp::Gt, &Value::Int(0)));
    }

    #[test]
    fn ne_pruning_only_for_constant_segments() {
        let constant = zone(7, 7);
        assert!(!constant.may_match(CmpOp::Ne, &Value::Int(7)));
        assert!(constant.may_match(CmpOp::Ne, &Value::Int(8)));
        let varied = zone(7, 9);
        assert!(varied.may_match(CmpOp::Ne, &Value::Int(7)));
        // Constant value but some NULLs: NULL rows don't match Ne either,
        // but pruning is still safe... actually NULL never matches, so a
        // constant-7 segment with nulls still has no matching rows.
        let mut with_nulls = zone(7, 7);
        with_nulls.null_count = 3;
        // Conservative implementation keeps it scannable; that is allowed.
        let _ = with_nulls.may_match(CmpOp::Ne, &Value::Int(7));
    }

    #[test]
    fn null_literal_prunes() {
        let z = zone(0, 100);
        assert!(!z.may_match(CmpOp::Eq, &Value::Null));
    }

    #[test]
    fn zonemap_conjunction() {
        let zm = ZoneMap {
            columns: vec![zone(0, 100), zone(1000, 2000)],
        };
        let p = ScanPredicate::all()
            .and(0, CmpOp::Gt, Value::Int(50))
            .and(1, CmpOp::Lt, Value::Int(1500));
        assert!(zm.may_match(&p));
        let p2 = ScanPredicate::all()
            .and(0, CmpOp::Gt, Value::Int(50))
            .and(1, CmpOp::Gt, Value::Int(5000));
        assert!(!zm.may_match(&p2));
        // Out-of-range column ordinal: conservative true.
        let p3 = ScanPredicate::single(9, CmpOp::Eq, Value::Int(1));
        assert!(zm.may_match(&p3));
    }

    #[test]
    fn join_filter_envelope_pruning() {
        use crate::predicate::JoinFilter;
        use oltap_common::bloom::BlockedBloom;
        use std::sync::Arc;

        let zm = ZoneMap {
            columns: vec![zone(0, 100)],
        };
        let filter = |range: Option<(i64, i64)>, build_rows: usize| JoinFilter {
            columns: vec![0],
            ranges: vec![range.map(|(a, b)| (Value::Int(a), Value::Int(b)))],
            bloom: Arc::new(BlockedBloom::with_capacity(8)),
            build_rows,
        };
        // Overlapping envelope: must scan.
        let p = ScanPredicate::all().with_join(filter(Some((50, 200)), 10));
        assert!(zm.may_match(&p));
        // Disjoint envelope: provably no join partner.
        let p = ScanPredicate::all().with_join(filter(Some((500, 900)), 10));
        assert!(!zm.may_match(&p));
        // Empty build side: skip regardless of ranges.
        let p = ScanPredicate::all().with_join(filter(None, 0));
        assert!(!zm.may_match(&p));
        // All-NULL key zone: NULL keys never join.
        let all_null = ZoneMap {
            columns: vec![ColumnZone::build(&[Value::Null, Value::Null])],
        };
        let p = ScanPredicate::all().with_join(filter(Some((0, 100)), 10));
        assert!(!all_null.may_match(&p));
    }

    #[test]
    fn string_zones() {
        let z = ColumnZone::build(&[
            Value::Str("berlin".into()),
            Value::Str("munich".into()),
            Value::Str("cologne".into()),
        ]);
        assert!(z.may_match(CmpOp::Eq, &Value::Str("cologne".into())));
        assert!(!z.may_match(CmpOp::Eq, &Value::Str("aachen".into())));
        assert!(!z.may_match(CmpOp::Gt, &Value::Str("zurich".into())));
    }
}
