//! Spill-to-disk file management for memory-bounded operators.
//!
//! When a pipeline breaker's [`oltap_common::mem::MemoryBudget`]
//! reservation fails, the operator writes part of its state to a spill
//! file and releases the memory. This module owns the file-level
//! mechanics so the executor only thinks in records:
//!
//! * [`SpillDir`] — a per-query scratch directory under the database's
//!   spill root. Dropping it (query completion, success *or* error)
//!   removes every file it handed out; [`purge_spill_root`] removes
//!   orphans left by a crash, and is called on recovery startup.
//! * [`SpillWriter`] / [`SpillReader`] — length-framed record streams
//!   (`u32` little-endian length + payload) over buffered files. The
//!   payload codec belongs to the caller: the join build, the hash
//!   aggregator, and the external sort each frame their own entries
//!   (see `oltap-exec`), typically reusing the WAL's row codec.
//!
//! Records are read back in exactly the order they were written, which
//! is what lets the spilling operators preserve the engine's
//! serial-identical determinism contract: spilled state re-enters the
//! operator in a deterministic order (or carries explicit sequence
//! numbers that make re-ordering harmless).

use oltap_common::{DbError, Result};
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes spill dirs of concurrent processes / queries.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A scratch directory whose contents live exactly as long as the handle.
///
/// Created under a database-level spill root; every file allocated
/// through [`SpillDir::writer`] is removed when the `SpillDir` drops, so
/// a query — successful, failed, or cancelled — cannot leak spill files.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
    files: AtomicU64,
}

impl SpillDir {
    /// Creates a fresh uniquely-named scratch dir under `root`
    /// (creating `root` itself if needed).
    pub fn create_under(root: &Path) -> Result<SpillDir> {
        let n = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = root.join(format!("q-{}-{}", std::process::id(), n));
        fs::create_dir_all(&path)?;
        Ok(SpillDir {
            path,
            files: AtomicU64::new(0),
        })
    }

    /// A scratch dir under the OS temp dir (tests, standalone executors).
    pub fn create_temp() -> Result<SpillDir> {
        Self::create_under(&std::env::temp_dir().join("oltap-spill"))
    }

    /// The directory path (diagnostics / leak assertions in tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of spill files allocated so far.
    pub fn file_count(&self) -> u64 {
        self.files.load(Ordering::Relaxed)
    }

    /// Opens a new spill file for writing. `label` is a human-readable
    /// tag (`"join-p3"`, `"agg-p7"`, `"sort-run"`); a counter makes the
    /// name unique.
    pub fn writer(&self, label: &str) -> Result<SpillWriter> {
        let n = self.files.fetch_add(1, Ordering::Relaxed);
        let path = self.path.join(format!("{label}-{n}.spill"));
        let file = File::create(&path)?;
        Ok(SpillWriter {
            out: BufWriter::new(file),
            path,
            records: 0,
            bytes: 0,
        })
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best-effort: a failed removal leaves orphans for
        // `purge_spill_root` at next startup.
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Removes every per-query scratch dir under a database's spill root.
/// Called on recovery startup: spill files never outlive a process on
/// purpose, so anything found here is leakage from a crash.
///
/// Returns the number of entries removed.
pub fn purge_spill_root(root: &Path) -> Result<u64> {
    let mut removed = 0;
    let entries = match fs::read_dir(root) {
        Ok(e) => e,
        // A missing root means nothing ever spilled: not an error.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            fs::remove_dir_all(&p)?;
        } else {
            fs::remove_file(&p)?;
        }
        removed += 1;
    }
    Ok(removed)
}

/// Append-only, length-framed record writer over a buffered spill file.
#[derive(Debug)]
pub struct SpillWriter {
    out: BufWriter<File>,
    path: PathBuf,
    records: u64,
    bytes: u64,
}

impl SpillWriter {
    /// Appends one record (`u32` LE length + payload).
    pub fn write_record(&mut self, payload: &[u8]) -> Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            DbError::InvalidArgument(format!("spill record too large: {} B", payload.len()))
        })?;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(payload)?;
        self.records += 1;
        self.bytes += 4 + payload.len() as u64;
        Ok(())
    }

    /// Flushes and seals the file, returning a handle for reading back.
    pub fn finish(mut self) -> Result<SpillHandle> {
        self.out.flush()?;
        Ok(SpillHandle {
            path: self.path.clone(),
            records: self.records,
            bytes: self.bytes,
        })
    }
}

/// A sealed spill file: metadata plus the ability to open readers.
#[derive(Debug, Clone)]
pub struct SpillHandle {
    path: PathBuf,
    records: u64,
    bytes: u64,
}

impl SpillHandle {
    /// Number of records in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// On-disk size in bytes (framing included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Opens a sequential reader positioned at the first record.
    pub fn reader(&self) -> Result<SpillReader> {
        let file = File::open(&self.path)?;
        Ok(SpillReader {
            input: BufReader::new(file),
            remaining: self.records,
        })
    }
}

/// Sequential record reader; yields payloads in write order.
#[derive(Debug)]
pub struct SpillReader {
    input: BufReader<File>,
    remaining: u64,
}

impl SpillReader {
    /// The next record, or `None` after the last one.
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        self.input.read_exact(&mut len_buf).map_err(truncated)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut payload = vec![0u8; len];
        self.input.read_exact(&mut payload).map_err(truncated)?;
        self.remaining -= 1;
        Ok(Some(payload))
    }

    /// Records left to read.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

fn truncated(e: std::io::Error) -> DbError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        DbError::Corruption("truncated spill record".into())
    } else {
        e.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_records_in_order() {
        let dir = SpillDir::create_temp().unwrap();
        let mut w = dir.writer("test").unwrap();
        for i in 0..100u32 {
            w.write_record(&i.to_le_bytes()).unwrap();
        }
        let h = w.finish().unwrap();
        assert_eq!(h.records(), 100);
        let mut r = h.reader().unwrap();
        for i in 0..100u32 {
            let rec = r.next_record().unwrap().unwrap();
            assert_eq!(rec, i.to_le_bytes());
        }
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn empty_and_large_records() {
        let dir = SpillDir::create_temp().unwrap();
        let mut w = dir.writer("test").unwrap();
        w.write_record(&[]).unwrap();
        let big = vec![0xAB; 1 << 20];
        w.write_record(&big).unwrap();
        let h = w.finish().unwrap();
        let mut r = h.reader().unwrap();
        assert_eq!(r.next_record().unwrap().unwrap().len(), 0);
        assert_eq!(r.next_record().unwrap().unwrap(), big);
    }

    #[test]
    fn drop_removes_directory() {
        let dir = SpillDir::create_temp().unwrap();
        let path = dir.path().to_path_buf();
        let mut w = dir.writer("x").unwrap();
        w.write_record(b"abc").unwrap();
        let _h = w.finish().unwrap();
        assert!(path.exists());
        drop(dir);
        assert!(!path.exists(), "spill dir removed on drop");
    }

    #[test]
    fn purge_removes_orphans() {
        let root = std::env::temp_dir().join(format!(
            "oltap-spill-purge-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Simulate a crash: create a scratch dir and forget the handle.
        let d = SpillDir::create_under(&root).unwrap();
        let mut w = d.writer("leak").unwrap();
        w.write_record(b"orphan").unwrap();
        w.finish().unwrap();
        std::mem::forget(d);
        assert_eq!(purge_spill_root(&root).unwrap(), 1);
        assert_eq!(fs::read_dir(&root).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn purge_of_missing_root_is_ok() {
        let ghost = std::env::temp_dir().join("oltap-spill-does-not-exist-xyz");
        assert_eq!(purge_spill_root(&ghost).unwrap(), 0);
    }

    #[test]
    fn multiple_files_have_unique_names() {
        let dir = SpillDir::create_temp().unwrap();
        let a = dir.writer("p").unwrap().finish().unwrap();
        let b = dir.writer("p").unwrap().finish().unwrap();
        assert_ne!(a.path, b.path);
        assert_eq!(dir.file_count(), 2);
    }
}
