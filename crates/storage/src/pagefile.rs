//! On-disk column-page files: the persistent half of the paged segment
//! store.
//!
//! A *page* is one encoded column chunk of one row group — the same
//! [`EncodedColumn`] the in-memory path scans, serialized with a small
//! self-describing codec. A segment's pages live in a single page file:
//!
//! ```text
//!   seg-<pid>-<n>.pages:  [len u32 LE][crc32 u32 LE][payload] ...
//! ```
//!
//! The framing is the WAL's (`oltap_txn::wal`) and the crash-hygiene
//! contract is the spill module's: pages are written to a `.tmp` file and
//! renamed into place on [`PageFileWriter::finish`], so a crash mid-build
//! leaves either a `.tmp` or nothing; [`purge_page_root`] removes both
//! kinds at database open (segments are rebuilt from the WAL on recovery,
//! so *every* page file found at open is garbage).
//!
//! Reads re-verify the CRC of every page faulted from disk. The
//! [`points::STORAGE_PAGE_READ_FAIL`] fault flips one payload byte after
//! the read so chaos tests can prove that a torn or bit-rotten page
//! surfaces as a typed [`DbError::Corruption`], never a panic and never
//! silently wrong rows.

use crate::encoding::{BitPacked, DeltaEnc, Dictionary, ForPacked, IntEncoding, Rle, StrEncoding};
use crate::segment::EncodedColumn;
use oltap_common::fault::{points, FaultInjector};
use oltap_common::{BitSet, DbError, Result};
use oltap_txn::wal::crc32;
use std::fs::{self, File};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinguishes page files of concurrent processes within one root.
static PAGE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Location and checksum of one page inside a page file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Byte offset of the payload (past the 8-byte frame header).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// Removes every page file (sealed or `.tmp`) under a database's page
/// root. Called at database open: segments never survive a restart (WAL
/// replay rebuilds them), so anything found here is leakage from a crash.
///
/// Returns the number of entries removed. A missing root is not an error.
pub fn purge_page_root(root: &Path) -> Result<u64> {
    let mut removed = 0;
    let entries = match fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            fs::remove_dir_all(&p)?;
        } else {
            fs::remove_file(&p)?;
        }
        removed += 1;
    }
    Ok(removed)
}

/// Writes a page file under a root directory, one framed page at a time.
///
/// All writes go to `<name>.tmp`; [`PageFileWriter::finish`] flushes and
/// renames to the final name, making segment publication atomic at the
/// file level.
#[derive(Debug)]
pub struct PageFileWriter {
    out: BufWriter<File>,
    tmp_path: PathBuf,
    final_path: PathBuf,
    file_id: u64,
    directory: Vec<PageMeta>,
    offset: u64,
    faults: Arc<FaultInjector>,
}

impl PageFileWriter {
    /// Opens a fresh uniquely-named page file under `root` (creating
    /// `root` itself if needed).
    pub fn create_under(root: &Path, faults: Arc<FaultInjector>) -> Result<PageFileWriter> {
        fs::create_dir_all(root)?;
        let file_id = PAGE_SEQ.fetch_add(1, Ordering::Relaxed);
        let final_path = root.join(format!("seg-{}-{}.pages", std::process::id(), file_id));
        let tmp_path = final_path.with_extension("pages.tmp");
        let file = File::create(&tmp_path)?;
        Ok(PageFileWriter {
            out: BufWriter::new(file),
            tmp_path,
            final_path,
            file_id,
            directory: Vec::new(),
            offset: 0,
            faults,
        })
    }

    /// Process-unique id of the file being written (buffer-pool page keys
    /// are `(file_id, page_index)`).
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Encodes and appends one column page; returns its page index.
    pub fn append_column(&mut self, col: &EncodedColumn) -> Result<u32> {
        self.append_page(&encode_page(col))
    }

    /// Appends one raw framed page; returns its page index.
    pub fn append_page(&mut self, payload: &[u8]) -> Result<u32> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            DbError::InvalidArgument(format!("column page too large: {} B", payload.len()))
        })?;
        let crc = crc32(payload);
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(&crc.to_le_bytes())?;
        self.out.write_all(payload)?;
        let idx = self.directory.len() as u32;
        self.directory.push(PageMeta {
            offset: self.offset + 8,
            len,
            crc,
        });
        self.offset += 8 + payload.len() as u64;
        Ok(idx)
    }

    /// Flushes, seals, and publishes the file (tmp → final rename),
    /// returning the readable handle with its in-memory page directory.
    pub fn finish(mut self) -> Result<PageFile> {
        self.out.flush()?;
        fs::rename(&self.tmp_path, &self.final_path)?;
        let file = File::open(&self.final_path)?;
        Ok(PageFile {
            path: std::mem::take(&mut self.final_path),
            file: parking_lot::Mutex::new(file),
            file_id: self.file_id,
            directory: std::mem::take(&mut self.directory),
            faults: Arc::clone(&self.faults),
        })
    }
}

impl Drop for PageFileWriter {
    fn drop(&mut self) {
        // An abandoned build (error mid-write) removes its tmp file; after
        // a successful `finish` the tmp no longer exists and this is a
        // no-op. A hard crash skips Drop entirely — that is what
        // `purge_page_root` at database open is for.
        let _ = fs::remove_file(&self.tmp_path);
    }
}

/// A sealed, readable page file plus its resident page directory.
///
/// The directory (offset/len/crc per page) is the only per-page state a
/// paged segment keeps in memory; payloads are faulted in on demand
/// through the buffer manager. Dropping the handle removes the file:
/// page files never outlive their segment, and never survive a restart.
#[derive(Debug)]
pub struct PageFile {
    path: PathBuf,
    file: parking_lot::Mutex<File>,
    file_id: u64,
    directory: Vec<PageMeta>,
    faults: Arc<FaultInjector>,
}

impl PageFile {
    /// Process-unique id (buffer-pool key component).
    pub fn file_id(&self) -> u64 {
        self.file_id
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.directory.len()
    }

    /// The page directory.
    pub fn directory(&self) -> &[PageMeta] {
        &self.directory
    }

    /// On-disk payload bytes across all pages (framing excluded).
    pub fn payload_bytes(&self) -> u64 {
        self.directory.iter().map(|m| m.len as u64).sum()
    }

    /// The file path (diagnostics / leak assertions in tests).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads page `idx` from disk and verifies its checksum.
    ///
    /// The [`points::STORAGE_PAGE_READ_FAIL`] fault corrupts one payload
    /// byte after the read, so the *real* CRC verification path is what
    /// turns the injected torn read into [`DbError::Corruption`].
    pub fn read_page(&self, idx: usize) -> Result<Vec<u8>> {
        let meta = *self.directory.get(idx).ok_or_else(|| {
            DbError::InvalidArgument(format!(
                "page {idx} out of range ({} pages)",
                self.directory.len()
            ))
        })?;
        let mut buf = vec![0u8; meta.len as usize];
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(meta.offset))?;
            file.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    DbError::Corruption(format!("truncated column page {idx}"))
                } else {
                    DbError::from(e)
                }
            })?;
        }
        if self.faults.should_fire(points::STORAGE_PAGE_READ_FAIL) && !buf.is_empty() {
            let flip = idx % buf.len();
            buf[flip] ^= 0x40;
        }
        if crc32(&buf) != meta.crc {
            return Err(DbError::Corruption(format!(
                "column page {idx} failed checksum verification"
            )));
        }
        Ok(buf)
    }

    /// Reads and decodes page `idx` into an [`EncodedColumn`].
    pub fn read_column(&self, idx: usize) -> Result<EncodedColumn> {
        decode_page(&self.read_page(idx)?)
    }
}

impl Drop for PageFile {
    fn drop(&mut self) {
        // Best-effort: a failed removal leaves an orphan for
        // `purge_page_root` at next startup.
        let _ = fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Column page codec
// ---------------------------------------------------------------------------

const TAG_INT: u8 = 0;
const TAG_FLOAT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_BOOL: u8 = 3;

const INT_RAW: u8 = 0;
const INT_FOR: u8 = 1;
const INT_RLE: u8 = 2;
const INT_DICT: u8 = 3;
const INT_DELTA: u8 = 4;

const STR_RAW: u8 = 0;
const STR_DICT: u8 = 1;

/// Serializes one encoded column into a page payload. The encoding chosen
/// at build time is preserved exactly, so a faulted-in page evaluates
/// predicates on the same compressed representation as a resident column.
pub fn encode_page(col: &EncodedColumn) -> Vec<u8> {
    let mut out = Vec::new();
    match col {
        EncodedColumn::Int { enc, validity } => {
            out.push(TAG_INT);
            match enc {
                IntEncoding::Raw(values) => {
                    out.push(INT_RAW);
                    put_u64(&mut out, values.len() as u64);
                    for &v in values {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
                IntEncoding::For(f) => {
                    out.push(INT_FOR);
                    out.extend_from_slice(&f.base().to_le_bytes());
                    put_bitpacked(&mut out, f.packed());
                }
                IntEncoding::Rle(r) => {
                    out.push(INT_RLE);
                    put_u64(&mut out, r.len() as u64);
                    put_u64(&mut out, r.runs().len() as u64);
                    for &(v, n) in r.runs() {
                        out.extend_from_slice(&v.to_le_bytes());
                        out.extend_from_slice(&n.to_le_bytes());
                    }
                }
                IntEncoding::Dict(d) => {
                    out.push(INT_DICT);
                    put_u64(&mut out, d.dict().len() as u64);
                    for &v in d.dict() {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    put_bitpacked(&mut out, d.codes());
                }
                IntEncoding::Delta(d) => {
                    out.push(INT_DELTA);
                    put_u64(&mut out, d.len() as u64);
                    put_u64(&mut out, d.anchors().len() as u64);
                    for &v in d.anchors() {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    put_bitpacked(&mut out, d.deltas());
                }
            }
            put_validity(&mut out, validity);
        }
        EncodedColumn::Float { values, validity } => {
            out.push(TAG_FLOAT);
            put_u64(&mut out, values.len() as u64);
            for &v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
            put_validity(&mut out, validity);
        }
        EncodedColumn::Str { enc, validity } => {
            out.push(TAG_STR);
            match enc {
                StrEncoding::Raw(values) => {
                    out.push(STR_RAW);
                    put_u64(&mut out, values.len() as u64);
                    for v in values {
                        put_str(&mut out, v);
                    }
                }
                StrEncoding::Dict(d) => {
                    out.push(STR_DICT);
                    put_u64(&mut out, d.dict().len() as u64);
                    for v in d.dict() {
                        put_str(&mut out, v);
                    }
                    put_bitpacked(&mut out, d.codes());
                }
            }
            put_validity(&mut out, validity);
        }
        EncodedColumn::Bool { values, validity } => {
            out.push(TAG_BOOL);
            put_bitset(&mut out, values);
            put_validity(&mut out, validity);
        }
    }
    out
}

/// Deserializes a page payload back into an [`EncodedColumn`]. Every
/// length and tag is bounds-checked: a corrupt payload that slipped past
/// the CRC (or a logic bug) yields [`DbError::Corruption`], not a panic.
pub fn decode_page(buf: &[u8]) -> Result<EncodedColumn> {
    let mut cur = Cursor { buf, pos: 0 };
    let col = match cur.u8()? {
        TAG_INT => {
            let enc = match cur.u8()? {
                INT_RAW => {
                    let n = cur.len()?;
                    let mut values = Vec::with_capacity(n);
                    for _ in 0..n {
                        values.push(cur.i64()?);
                    }
                    IntEncoding::Raw(values)
                }
                INT_FOR => {
                    let base = cur.i64()?;
                    IntEncoding::For(ForPacked::from_parts(base, cur.bitpacked()?))
                }
                INT_RLE => {
                    let len = cur.len()?;
                    let nruns = cur.len()?;
                    let mut runs = Vec::with_capacity(nruns);
                    for _ in 0..nruns {
                        let v = cur.i64()?;
                        let n = cur.u32()?;
                        runs.push((v, n));
                    }
                    IntEncoding::Rle(Rle::from_parts(runs, len)?)
                }
                INT_DICT => {
                    let card = cur.len()?;
                    let mut dict = Vec::with_capacity(card);
                    for _ in 0..card {
                        dict.push(cur.i64()?);
                    }
                    IntEncoding::Dict(Box::new(Dictionary::from_parts(dict, cur.bitpacked()?)?))
                }
                INT_DELTA => {
                    let len = cur.len()?;
                    let nanchors = cur.len()?;
                    let mut anchors = Vec::with_capacity(nanchors);
                    for _ in 0..nanchors {
                        anchors.push(cur.i64()?);
                    }
                    IntEncoding::Delta(DeltaEnc::from_parts(anchors, cur.bitpacked()?, len)?)
                }
                t => return Err(corrupt(format!("unknown int encoding tag {t}"))),
            };
            let validity = cur.validity()?;
            EncodedColumn::Int { enc, validity }
        }
        TAG_FLOAT => {
            let n = cur.len()?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(f64::from_le_bytes(cur.array()?));
            }
            let validity = cur.validity()?;
            EncodedColumn::Float { values, validity }
        }
        TAG_STR => {
            let enc = match cur.u8()? {
                STR_RAW => {
                    let n = cur.len()?;
                    let mut values = Vec::with_capacity(n);
                    for _ in 0..n {
                        values.push(cur.string()?);
                    }
                    StrEncoding::Raw(values)
                }
                STR_DICT => {
                    let card = cur.len()?;
                    let mut dict = Vec::with_capacity(card);
                    for _ in 0..card {
                        dict.push(cur.string()?);
                    }
                    StrEncoding::Dict(Box::new(Dictionary::from_parts(dict, cur.bitpacked()?)?))
                }
                t => return Err(corrupt(format!("unknown string encoding tag {t}"))),
            };
            let validity = cur.validity()?;
            EncodedColumn::Str { enc, validity }
        }
        TAG_BOOL => {
            let values = cur.bitset()?;
            let validity = cur.validity()?;
            EncodedColumn::Bool { values, validity }
        }
        t => return Err(corrupt(format!("unknown column tag {t}"))),
    };
    if cur.pos != buf.len() {
        return Err(corrupt(format!(
            "column page has {} trailing bytes",
            buf.len() - cur.pos
        )));
    }
    Ok(col)
}

fn corrupt(msg: String) -> DbError {
    DbError::Corruption(msg)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bitpacked(out: &mut Vec<u8>, bp: &BitPacked) {
    out.push(bp.width());
    put_u64(out, bp.len() as u64);
    put_u64(out, bp.words().len() as u64);
    for &w in bp.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn put_bitset(out: &mut Vec<u8>, bs: &BitSet) {
    put_u64(out, bs.len() as u64);
    for &w in bs.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn put_validity(out: &mut Vec<u8>, validity: &Option<BitSet>) {
    match validity {
        Some(v) => {
            out.push(1);
            put_bitset(out, v);
        }
        None => out.push(0),
    }
}

/// Bounds-checked sequential reader over a page payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let end = self.pos.checked_add(N).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| corrupt("column page truncated".into()))?;
        let mut a = [0u8; N];
        a.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(a)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.array::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// A u64 count validated against the bytes actually remaining, so a
    /// corrupt length cannot trigger a giant allocation.
    fn len(&mut self) -> Result<usize> {
        let v = self.u64()?;
        if v > self.buf.len() as u64 * 64 {
            return Err(corrupt(format!("implausible element count {v}")));
        }
        Ok(v as usize)
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| corrupt("column page truncated".into()))?;
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| corrupt("invalid UTF-8 in column page".into()))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn bitpacked(&mut self) -> Result<BitPacked> {
        let width = self.u8()?;
        let len = self.len()?;
        let nwords = self.len()?;
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(self.u64()?);
        }
        BitPacked::from_parts(width, len, words)
    }

    fn bitset(&mut self) -> Result<BitSet> {
        let len = self.len()?;
        let nwords = len.div_ceil(64);
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(self.u64()?);
        }
        Ok(BitSet::from_words(words, len))
    }

    fn validity(&mut self) -> Result<Option<BitSet>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bitset()?)),
            t => Err(corrupt(format!("unknown validity tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::fault::FaultPoint;
    use oltap_common::Value;

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "oltap-pages-{tag}-{}-{}",
            std::process::id(),
            PAGE_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_columns() -> Vec<EncodedColumn> {
        let ints: Vec<i64> = (0..500).map(|i| 1000 + (i % 37)).collect();
        let runs: Vec<i64> = (0..500).map(|i| i / 100).collect();
        let low_card: Vec<i64> = (0..500).map(|i| (i % 4) * 1_000_000).collect();
        let strs: Vec<String> = (0..500).map(|i| format!("city_{}", i % 5)).collect();
        let uniq: Vec<String> = (0..50).map(|i| format!("unique-{i:05}")).collect();
        let mut validity = BitSet::all_set(500);
        validity.clear(3);
        validity.clear(499);
        let mut bools = BitSet::with_len(500);
        for i in (0..500).step_by(3) {
            bools.set(i);
        }
        vec![
            EncodedColumn::Int {
                enc: IntEncoding::Raw((0..500).map(|i| i * 0x9E3779B9i64).collect()),
                validity: None,
            },
            EncodedColumn::Int {
                enc: IntEncoding::For(ForPacked::encode(&ints)),
                validity: Some(validity.clone()),
            },
            EncodedColumn::Int {
                enc: IntEncoding::Rle(Rle::encode(&runs)),
                validity: None,
            },
            EncodedColumn::Int {
                enc: IntEncoding::Dict(Box::new(Dictionary::encode(&low_card))),
                validity: None,
            },
            EncodedColumn::Float {
                values: (0..500).map(|i| i as f64 / 7.0).collect(),
                validity: Some(validity.clone()),
            },
            EncodedColumn::Str {
                enc: StrEncoding::choose(&strs),
                validity: None,
            },
            EncodedColumn::Str {
                enc: StrEncoding::Raw(uniq),
                validity: None,
            },
            EncodedColumn::Bool {
                values: bools,
                validity: Some(validity),
            },
        ]
    }

    fn values_of(col: &EncodedColumn) -> Vec<Value> {
        (0..col.len()).map(|i| col.value_at(i)).collect()
    }

    #[test]
    fn codec_roundtrips_every_encoding() {
        for col in sample_columns() {
            let payload = encode_page(&col);
            let back = decode_page(&payload).unwrap();
            assert_eq!(back.encoding_name(), col.encoding_name());
            assert_eq!(values_of(&back), values_of(&col));
        }
    }

    #[test]
    fn file_roundtrip_and_directory() {
        let root = temp_root("rt");
        let mut w = PageFileWriter::create_under(&root, FaultInjector::disabled()).unwrap();
        let cols = sample_columns();
        for col in &cols {
            w.append_column(col).unwrap();
        }
        let f = w.finish().unwrap();
        assert_eq!(f.page_count(), cols.len());
        assert!(f.payload_bytes() > 0);
        for (i, col) in cols.iter().enumerate() {
            let back = f.read_column(i).unwrap();
            assert_eq!(values_of(&back), values_of(col));
        }
        assert!(matches!(
            f.read_page(cols.len()),
            Err(DbError::InvalidArgument(_))
        ));
        let path = f.path().to_path_buf();
        drop(f);
        assert!(!path.exists(), "page file removed on drop");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn on_disk_corruption_is_typed() {
        let root = temp_root("corrupt");
        let mut w = PageFileWriter::create_under(&root, FaultInjector::disabled()).unwrap();
        let idx = w.append_column(&sample_columns()[0]).unwrap();
        let f = w.finish().unwrap();
        // Flip a payload byte on disk behind the handle's back.
        let meta = f.directory()[idx as usize];
        let mut bytes = fs::read(f.path()).unwrap();
        bytes[meta.offset as usize + 4] ^= 0xFF;
        fs::write(f.path(), &bytes).unwrap();
        assert!(matches!(
            f.read_page(idx as usize),
            Err(DbError::Corruption(_))
        ));
        drop(f);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn page_read_fault_fires_real_crc_path() {
        let faults = FaultInjector::new(0x9A6E);
        faults.arm(points::STORAGE_PAGE_READ_FAIL, FaultPoint::times(1));
        let root = temp_root("fault");
        let mut w = PageFileWriter::create_under(&root, faults.clone()).unwrap();
        w.append_column(&sample_columns()[0]).unwrap();
        let f = w.finish().unwrap();
        assert!(matches!(f.read_page(0), Err(DbError::Corruption(_))));
        assert_eq!(faults.fired_count(), 1);
        // Fault exhausted: the same page reads back clean.
        assert!(f.read_page(0).is_ok());
        drop(f);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn decoder_rejects_garbage_without_panicking() {
        assert!(decode_page(&[]).is_err());
        assert!(decode_page(&[99]).is_err());
        assert!(decode_page(&[TAG_INT, 99]).is_err());
        // Truncated length prefix.
        assert!(decode_page(&[TAG_FLOAT, 1, 2, 3]).is_err());
        // Implausible count must not allocate.
        let mut huge = vec![TAG_FLOAT];
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_page(&huge).is_err());
        // Trailing garbage after a valid column.
        let mut payload = encode_page(&sample_columns()[0]);
        payload.push(0);
        assert!(decode_page(&payload).is_err());
    }

    #[test]
    fn crash_mid_build_leaves_only_purgeable_tmp() {
        let root = temp_root("crash");
        let mut w = PageFileWriter::create_under(&root, FaultInjector::disabled()).unwrap();
        w.append_column(&sample_columns()[0]).unwrap();
        w.out.flush().unwrap();
        // Simulate a crash: the writer vanishes without finish() or Drop.
        std::mem::forget(w);
        let names: Vec<String> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| n.ends_with(".tmp")),
            "unfinished build left sealed files: {names:?}"
        );
        assert_eq!(purge_page_root(&root).unwrap(), names.len() as u64);
        assert_eq!(fs::read_dir(&root).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn purge_of_missing_root_is_ok() {
        let ghost = std::env::temp_dir().join("oltap-pages-does-not-exist-xyz");
        assert_eq!(purge_page_root(&ghost).unwrap(), 0);
    }
}
