//! The row store: a concurrent skip-list primary-key index over MVCC
//! version chains.
//!
//! This is the OLTP-facing store of the engine, modeled on MemSQL's
//! lock-free skip-list row store (paper §3, \[26\]): point inserts, lookups,
//! updates, and deletes are index traversals plus version-chain operations
//! — no latching of unrelated keys, readers never block.

use crate::predicate::ScanPredicate;
use crate::skiplist::SkipList;
use oltap_common::ids::TxnId;
use oltap_common::schema::SchemaRef;
use oltap_common::{Batch, DbError, Result, Row, Value};
use oltap_txn::{Transaction, Ts, VersionChain, WriteSetEntry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Adapter enlisting one version chain in a transaction's write set.
struct ChainWriteEntry {
    chain: Arc<VersionChain<Row>>,
}

impl WriteSetEntry for ChainWriteEntry {
    fn commit(&self, txn: TxnId, commit_ts: Ts) {
        self.chain.commit(txn, commit_ts);
    }
    fn abort(&self, txn: TxnId) {
        self.chain.abort(txn);
    }
}

/// A row store table.
pub struct RowStore {
    schema: SchemaRef,
    index: SkipList<Row, Arc<VersionChain<Row>>>,
    /// Sequence for tables without a declared primary key (each row gets a
    /// hidden, monotonically increasing key; point DML is then unsupported).
    hidden_seq: AtomicU64,
}

impl std::fmt::Debug for RowStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowStore")
            .field("keys", &self.index.len())
            .finish()
    }
}

impl RowStore {
    /// Creates an empty row store for `schema`.
    pub fn new(schema: SchemaRef) -> Self {
        RowStore {
            schema,
            index: SkipList::new(),
            hidden_seq: AtomicU64::new(0),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of distinct keys ever inserted (includes logically deleted).
    pub fn key_count(&self) -> usize {
        self.index.len()
    }

    fn key_for_insert(&self, row: &Row) -> Row {
        if self.schema.has_primary_key() {
            self.schema.key_of(row)
        } else {
            Row::new(vec![Value::Int(
                self.hidden_seq.fetch_add(1, Ordering::Relaxed) as i64,
            )])
        }
    }

    fn require_pk(&self) -> Result<()> {
        if self.schema.has_primary_key() {
            Ok(())
        } else {
            Err(DbError::Unsupported(
                "point operation on table without primary key".into(),
            ))
        }
    }

    /// Inserts `row` under `txn`. Duplicate-key and write-conflict errors
    /// propagate from the version chain.
    pub fn insert(&self, txn: &Transaction, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        let key = self.key_for_insert(&row);
        let chain = self.chain_for(key);
        chain.insert(row, txn.id(), txn.begin_ts())?;
        txn.enlist(Arc::new(ChainWriteEntry {
            chain: Arc::clone(&chain),
        }))?;
        Ok(())
    }

    /// Bulk-loads `row` as already-committed data stamped at `ts`
    /// (bypasses transactions; used by loaders, merge, and recovery).
    pub fn load_committed(&self, row: Row, ts: Ts) -> Result<()> {
        self.schema.check_row(&row)?;
        let key = self.key_for_insert(&row);
        match self.index.get(&key) {
            Some(chain) => {
                if chain.has_committed_live() {
                    return Err(DbError::DuplicateKey(format!("{key}")));
                }
                // Re-insert under a synthetic bootstrap txn then commit.
                let boot = TxnId(u64::MAX);
                chain.insert(row, boot, ts)?;
                chain.commit(boot, ts);
                Ok(())
            }
            None => {
                match self.index.insert(key, Arc::new(VersionChain::with_committed(row.clone(), ts))) {
                    Ok(_) => Ok(()),
                    Err(existing) => {
                        // Raced with another loader on the same key.
                        if existing.has_committed_live() {
                            Err(DbError::DuplicateKey("concurrent load".into()))
                        } else {
                            let boot = TxnId(u64::MAX);
                            existing.insert(row, boot, ts)?;
                            existing.commit(boot, ts);
                            Ok(())
                        }
                    }
                }
            }
        }
    }

    fn chain_for(&self, key: Row) -> Arc<VersionChain<Row>> {
        if let Some(chain) = self.index.get(&key) {
            return Arc::clone(chain);
        }
        match self.index.insert(key, Arc::new(VersionChain::new())) {
            Ok(chain) => Arc::clone(chain),
            Err(existing) => Arc::clone(existing),
        }
    }

    /// Point lookup at a snapshot.
    pub fn get(&self, key: &Row, read_ts: Ts, me: TxnId) -> Option<Row> {
        self.index
            .get(key)
            .and_then(|chain| chain.read(read_ts, me))
    }

    /// Updates the row at `key` to `row` under `txn`.
    pub fn update(&self, txn: &Transaction, key: &Row, row: Row) -> Result<()> {
        self.require_pk()?;
        self.schema.check_row(&row)?;
        if self.schema.key_of(&row) != *key {
            return Err(DbError::InvalidArgument(
                "update must not change the primary key".into(),
            ));
        }
        let chain = self
            .index
            .get(key)
            .ok_or_else(|| DbError::KeyNotFound(format!("{key}")))?;
        chain.update(row, txn.id(), txn.begin_ts())?;
        txn.enlist(Arc::new(ChainWriteEntry {
            chain: Arc::clone(chain),
        }))?;
        Ok(())
    }

    /// Deletes the row at `key` under `txn`.
    pub fn delete(&self, txn: &Transaction, key: &Row) -> Result<()> {
        self.require_pk()?;
        let chain = self
            .index
            .get(key)
            .ok_or_else(|| DbError::KeyNotFound(format!("{key}")))?;
        chain.delete(txn.id(), txn.begin_ts())?;
        txn.enlist(Arc::new(ChainWriteEntry {
            chain: Arc::clone(chain),
        }))?;
        Ok(())
    }

    /// Iterates the visible rows at a snapshot, in key order, optionally
    /// starting at `start_key`.
    pub fn scan_rows<'a>(
        &'a self,
        read_ts: Ts,
        me: TxnId,
        start_key: Option<&Row>,
    ) -> impl Iterator<Item = Row> + 'a {
        self.index
            .iter_from(start_key)
            .filter_map(move |(_, chain)| chain.read(read_ts, me))
    }

    /// Full scan into batches with a residual predicate applied row-wise.
    pub fn scan(
        &self,
        projection: &[usize],
        pred: &ScanPredicate,
        read_ts: Ts,
        me: TxnId,
        batch_size: usize,
    ) -> Result<Vec<Batch>> {
        pred.validate(&self.schema)?;
        let proj_schema = self.schema.project(projection);
        let mut out = Vec::new();
        let mut buf: Vec<Row> = Vec::with_capacity(batch_size.min(4096));
        for row in self.scan_rows(read_ts, me, None) {
            if pred.matches_row(&row) {
                buf.push(row.project(projection));
                if buf.len() >= batch_size {
                    out.push(Batch::from_rows(&proj_schema, &buf)?);
                    buf.clear();
                }
            }
        }
        if !buf.is_empty() {
            out.push(Batch::from_rows(&proj_schema, &buf)?);
        }
        Ok(out)
    }

    /// Counts visible rows at a snapshot (O(n)).
    pub fn count_visible(&self, read_ts: Ts, me: TxnId) -> usize {
        self.index
            .iter()
            .filter(|(_, chain)| chain.exists_for(read_ts, me))
            .count()
    }

    /// Runs MVCC garbage collection on every chain; returns pruned
    /// version count.
    pub fn gc(&self, watermark: Ts) -> usize {
        self.index.iter().map(|(_, chain)| chain.gc(watermark)).sum()
    }

    /// Iterates `(key, latest committed row)` pairs regardless of
    /// snapshots — the merge path uses this to drain the delta.
    pub fn latest_committed_rows<'a>(&'a self) -> impl Iterator<Item = (Row, Row)> + 'a {
        self.index
            .iter()
            .filter_map(|(k, chain)| chain.latest_committed().map(|r| (k.clone(), r)))
    }

    /// Merge hook: closes (at `watermark`) and returns every row whose
    /// latest version committed at or before `watermark` and is not being
    /// rewritten by an in-flight transaction. The caller must re-publish
    /// the returned rows in a main-store segment with
    /// `visible_from = watermark` (see [`crate::delta`]); the table-level
    /// lock makes close + publish atomic with respect to readers.
    pub fn drain_committed(&self, watermark: Ts) -> Vec<Row> {
        self.index
            .iter()
            .filter_map(|(_, chain)| chain.close_latest_committed(watermark))
            .collect()
    }

    /// Rebuilds the store without chains that are dead to every snapshot
    /// at or after `watermark` (the skip list is insert-only, so merged
    /// keys otherwise accumulate and slow down delta scans forever).
    /// Chains are moved by `Arc`, so transactions holding write-set
    /// references keep operating on the same objects.
    pub fn rebuilt_without_dead(&self, watermark: Ts) -> RowStore {
        let fresh = RowStore::new(Arc::clone(&self.schema));
        for (key, chain) in self.index.iter() {
            chain.gc(watermark);
            if chain.version_count() > 0 {
                let _ = fresh.index.insert(key.clone(), Arc::clone(chain));
            }
        }
        // Hidden-key sequences must keep ascending across rebuilds.
        fresh
            .hidden_seq
            .store(self.hidden_seq.load(Ordering::SeqCst), Ordering::SeqCst);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::row;
    use oltap_common::{DataType, Field, Schema};
    use oltap_txn::TransactionManager;

    fn store() -> (Arc<TransactionManager>, RowStore) {
        let schema = Arc::new(
            Schema::with_primary_key(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::new("name", DataType::Utf8),
                    Field::new("qty", DataType::Int64),
                ],
                &["id"],
            )
            .unwrap(),
        );
        (Arc::new(TransactionManager::new()), RowStore::new(schema))
    }

    const NOBODY: TxnId = TxnId(u64::MAX - 1);

    #[test]
    fn insert_commit_read() {
        let (mgr, rs) = store();
        let t = mgr.begin();
        rs.insert(&t, row![1i64, "ada", 10i64]).unwrap();
        rs.insert(&t, row![2i64, "bob", 20i64]).unwrap();
        let cts = t.commit().unwrap();
        assert_eq!(
            rs.get(&row![1i64], cts, NOBODY).unwrap(),
            row![1i64, "ada", 10i64]
        );
        assert_eq!(rs.count_visible(cts, NOBODY), 2);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let (mgr, rs) = store();
        let t = mgr.begin();
        rs.insert(&t, row![1i64, "ada", 10i64]).unwrap();
        t.commit().unwrap();
        let t2 = mgr.begin();
        assert!(matches!(
            rs.insert(&t2, row![1i64, "eve", 5i64]),
            Err(DbError::DuplicateKey(_))
        ));
    }

    #[test]
    fn update_delete_roundtrip() {
        let (mgr, rs) = store();
        let t = mgr.begin();
        rs.insert(&t, row![1i64, "ada", 10i64]).unwrap();
        t.commit().unwrap();

        let t2 = mgr.begin();
        rs.update(&t2, &row![1i64], row![1i64, "ada", 99i64]).unwrap();
        let cts2 = t2.commit().unwrap();
        assert_eq!(
            rs.get(&row![1i64], cts2, NOBODY).unwrap()[2],
            Value::Int(99)
        );

        let t3 = mgr.begin();
        rs.delete(&t3, &row![1i64]).unwrap();
        let cts3 = t3.commit().unwrap();
        assert!(rs.get(&row![1i64], cts3, NOBODY).is_none());
        // Older snapshot still sees it.
        assert!(rs.get(&row![1i64], cts2, NOBODY).is_some());
    }

    #[test]
    fn pk_change_rejected() {
        let (mgr, rs) = store();
        let t = mgr.begin();
        rs.insert(&t, row![1i64, "ada", 10i64]).unwrap();
        t.commit().unwrap();
        let t2 = mgr.begin();
        assert!(rs
            .update(&t2, &row![1i64], row![2i64, "ada", 10i64])
            .is_err());
    }

    #[test]
    fn write_conflict_between_txns() {
        let (mgr, rs) = store();
        let t = mgr.begin();
        rs.insert(&t, row![1i64, "ada", 10i64]).unwrap();
        t.commit().unwrap();

        let t1 = mgr.begin();
        let t2 = mgr.begin();
        rs.update(&t1, &row![1i64], row![1i64, "ada", 11i64]).unwrap();
        assert!(matches!(
            rs.update(&t2, &row![1i64], row![1i64, "ada", 12i64]),
            Err(DbError::WriteConflict(_))
        ));
        t1.commit().unwrap();
    }

    #[test]
    fn abort_via_drop_leaves_no_trace() {
        let (mgr, rs) = store();
        {
            let t = mgr.begin();
            rs.insert(&t, row![1i64, "ada", 10i64]).unwrap();
        }
        assert_eq!(rs.count_visible(mgr.now(), NOBODY), 0);
        // Key can be reused after the implicit abort.
        let t = mgr.begin();
        rs.insert(&t, row![1i64, "eve", 1i64]).unwrap();
        let cts = t.commit().unwrap();
        assert_eq!(
            rs.get(&row![1i64], cts, NOBODY).unwrap()[1],
            Value::Str("eve".into())
        );
    }

    #[test]
    fn scan_is_key_ordered_and_snapshot_consistent() {
        let (mgr, rs) = store();
        let t = mgr.begin();
        for i in (0..50).rev() {
            rs.insert(&t, row![i as i64, "x", i as i64]).unwrap();
        }
        let cts = t.commit().unwrap();

        // A writer modifies concurrently; the old snapshot is unaffected.
        let t2 = mgr.begin();
        rs.update(&t2, &row![0i64], row![0i64, "x", 999i64]).unwrap();

        let rows: Vec<Row> = rs.scan_rows(cts, NOBODY, None).collect();
        assert_eq!(rows.len(), 50);
        assert!(rows.windows(2).all(|w| w[0][0] < w[1][0]));
        assert_eq!(rows[0][2], Value::Int(0));
        t2.commit().unwrap();
    }

    #[test]
    fn scan_batches_with_predicate() {
        let (mgr, rs) = store();
        let t = mgr.begin();
        for i in 0..100 {
            rs.insert(&t, row![i as i64, "x", (i % 10) as i64]).unwrap();
        }
        let cts = t.commit().unwrap();
        let pred = ScanPredicate::single(2, crate::predicate::CmpOp::Eq, Value::Int(3));
        let batches = rs.scan(&[0, 2], &pred, cts, NOBODY, 7).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 10);
        assert!(batches.iter().all(|b| b.len() <= 7));
        assert!(batches[0].row(0)[1] == Value::Int(3));
    }

    #[test]
    fn load_committed_bypasses_txns() {
        let (mgr, rs) = store();
        rs.load_committed(row![1i64, "bulk", 0i64], 0).unwrap();
        assert!(rs.get(&row![1i64], mgr.now(), NOBODY).is_some());
        assert!(matches!(
            rs.load_committed(row![1i64, "dup", 0i64], 0),
            Err(DbError::DuplicateKey(_))
        ));
    }

    #[test]
    fn hidden_key_table_supports_insert_and_scan_only() {
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int64)]));
        let rs = RowStore::new(schema);
        let mgr = Arc::new(TransactionManager::new());
        let t = mgr.begin();
        rs.insert(&t, row![7i64]).unwrap();
        rs.insert(&t, row![7i64]).unwrap(); // duplicates fine
        let cts = t.commit().unwrap();
        assert_eq!(rs.count_visible(cts, NOBODY), 2);
        let t2 = mgr.begin();
        assert!(matches!(
            rs.delete(&t2, &row![0i64]),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn gc_reduces_version_counts() {
        let (mgr, rs) = store();
        let t = mgr.begin();
        rs.insert(&t, row![1i64, "a", 0i64]).unwrap();
        t.commit().unwrap();
        for i in 0..10 {
            let t = mgr.begin();
            rs.update(&t, &row![1i64], row![1i64, "a", i as i64]).unwrap();
            t.commit().unwrap();
        }
        let pruned = rs.gc(mgr.gc_watermark());
        assert!(pruned >= 9, "pruned {pruned}");
        assert!(rs.get(&row![1i64], mgr.now(), NOBODY).is_some());
    }

    #[test]
    fn concurrent_inserts_across_threads() {
        let (mgr, rs) = store();
        let rs = Arc::new(rs);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let mgr = Arc::clone(&mgr);
                let rs = Arc::clone(&rs);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let t = mgr.begin();
                        let id = (tid * 1000 + i) as i64;
                        rs.insert(&t, row![id, "w", 1i64]).unwrap();
                        t.commit().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rs.count_visible(mgr.now(), NOBODY), 2000);
    }
}
