//! The delta + main architecture: a writable row-format delta store in
//! front of immutable compressed columnar segments, reconciled by a merge.
//!
//! This is the storage design the tutorial traces from differential files
//! and LSM-trees (§4, \[29, 16\]) into HANA's delta/main and MemSQL's
//! row-store-plus-column-store: ingest lands in the row-format delta at
//! OLTP speed; a background **merge** periodically drains committed delta
//! rows into a new compressed segment; analytic scans read segments (fast,
//! compressed, zone-mapped) plus the small delta (fresh).
//!
//! # MVCC correctness of merge
//!
//! Merge moves only rows committed at or before the transaction manager's
//! GC `watermark` (the minimum active snapshot). A moved row's delta
//! version is closed at `watermark` and the receiving segment is stamped
//! `visible_from = watermark`, so for every snapshot `s`:
//!
//! * `s < watermark` — impossible for active/future snapshots, by the
//!   definition of the watermark;
//! * `s ≥ watermark` — the delta version is closed (`end = watermark ≤ s`)
//!   and the segment is visible: the row is seen exactly once.
//!
//! The close-and-publish pair runs under the table's state write lock,
//! which scans take for read, so no reader observes the intermediate
//! state.

use crate::buffer::SegmentPager;
use crate::predicate::ScanPredicate;
use crate::rowstore::RowStore;
use crate::segment::{Segment, SegmentBuilder};
use oltap_common::fault::{points, FaultInjector};
use oltap_common::hash::FxHashMap;
use oltap_common::ids::{SegmentId, TxnId};
use oltap_common::schema::SchemaRef;
use oltap_common::{Batch, DbError, Result, Row};
use oltap_txn::{Stamp, Transaction, Ts, WriteSetEntry};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Write-set adapter finalizing a transaction's delete stamps in a segment.
struct SegmentDeleteEntry {
    segment: Arc<Segment>,
}

impl WriteSetEntry for SegmentDeleteEntry {
    fn commit(&self, txn: TxnId, commit_ts: Ts) {
        self.segment.commit_deletes(txn, commit_ts);
    }
    fn abort(&self, txn: TxnId) {
        self.segment.abort_deletes(txn);
    }
}

/// Statistics returned by [`DeltaMainTable::merge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeStats {
    /// Rows moved from the delta into the new segment.
    pub rows_merged: usize,
    /// Id of the created segment (None when nothing was merged).
    pub new_segment: Option<u64>,
}

/// Statistics returned by [`DeltaMainTable::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactStats {
    /// Segments rewritten into the compacted segment.
    pub segments_compacted: usize,
    /// Rows dropped because their deletion is below the watermark.
    pub rows_dropped: usize,
    /// Segments skipped because of in-flight (pending) deletes.
    pub segments_skipped: usize,
}

/// Statistics returned by [`DeltaMainTable::freeze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FreezeStats {
    /// Segments rewritten into the frozen representation this pass.
    pub segments_frozen: usize,
    /// Row groups in the frozen rewrites.
    pub groups_frozen: usize,
    /// Rows dropped because their deletion is below the watermark.
    pub rows_dropped: usize,
    /// Compressed bytes of the rewritten segments before freezing.
    pub bytes_before: usize,
    /// Compressed bytes after freezing.
    pub bytes_after: usize,
    /// Unfrozen segments left alone this pass (still hot, pending deletes,
    /// or above the watermark) — they are re-evaluated next pass.
    pub segments_skipped: usize,
}

impl FreezeStats {
    /// Accumulates another pass (or another table) into this one.
    pub fn absorb(&mut self, other: &FreezeStats) {
        self.segments_frozen += other.segments_frozen;
        self.groups_frozen += other.groups_frozen;
        self.rows_dropped += other.rows_dropped;
        self.bytes_before += other.bytes_before;
        self.bytes_after += other.bytes_after;
        self.segments_skipped += other.segments_skipped;
    }
}

/// Aggregated heat/freeze counters (surfaced via `Database::stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeatStats {
    /// Live frozen segments.
    pub frozen_segments: usize,
    /// Live frozen row groups.
    pub frozen_groups: usize,
    /// Sum of current per-group heat across all segments.
    pub total_heat: u64,
    /// Scans served by live frozen segments.
    pub frozen_scan_hits: u64,
    /// Segments ever frozen (cumulative over the table's lifetime).
    pub segments_frozen_total: u64,
    /// Cumulative compressed bytes before freezing.
    pub bytes_before_total: u64,
    /// Cumulative compressed bytes after freezing.
    pub bytes_after_total: u64,
}

impl HeatStats {
    /// Folds another table's counters into this aggregate.
    pub fn absorb(&mut self, other: &HeatStats) {
        self.frozen_segments += other.frozen_segments;
        self.frozen_groups += other.frozen_groups;
        self.total_heat += other.total_heat;
        self.frozen_scan_hits += other.frozen_scan_hits;
        self.segments_frozen_total += other.segments_frozen_total;
        self.bytes_before_total += other.bytes_before_total;
        self.bytes_after_total += other.bytes_after_total;
    }
}

/// Snapshot of table size for merge policies and planners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableSizes {
    /// Rows resident in main segments (including logically deleted).
    pub main_rows: usize,
    /// Distinct keys resident in the delta store.
    pub delta_rows: usize,
    /// Number of main segments.
    pub segments: usize,
    /// Compressed main bytes.
    pub main_bytes: usize,
}

struct TableState {
    delta: RowStore,
    segments: Vec<Arc<Segment>>,
    /// Primary key → every main-store location that ever held the key.
    /// At most one location is visible to a given snapshot.
    pk_locs: FxHashMap<Row, Vec<(SegmentId, u32)>>,
}

impl TableState {
    fn segment(&self, id: SegmentId) -> Option<&Arc<Segment>> {
        self.segments.iter().find(|s| s.id() == id)
    }
}

/// A delta + main table (the engine's column-store format).
pub struct DeltaMainTable {
    schema: SchemaRef,
    state: RwLock<TableState>,
    next_segment: AtomicU64,
    /// When set, merged/bulk-loaded segments are built *paged*: column
    /// data lives in page files and faults in through the buffer pool.
    pager: Option<Arc<SegmentPager>>,
    /// Cumulative freeze counters (survive segment churn).
    frozen_total: AtomicU64,
    freeze_bytes_before: AtomicU64,
    freeze_bytes_after: AtomicU64,
    /// Heat restored from a pre-restart snapshot that could not be applied
    /// yet because recovery replays the WAL into the *delta* — no segments
    /// exist until the first merge. The first merge after a seed drains
    /// this into the segment it builds.
    pending_seed_heat: AtomicU64,
}

impl std::fmt::Debug for DeltaMainTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sizes = self.sizes();
        f.debug_struct("DeltaMainTable")
            .field("main_rows", &sizes.main_rows)
            .field("delta_rows", &sizes.delta_rows)
            .field("segments", &sizes.segments)
            .finish()
    }
}

impl DeltaMainTable {
    /// An empty table with fully resident segments.
    pub fn new(schema: SchemaRef) -> Self {
        Self::with_pager(schema, None)
    }

    /// An empty table; when `pager` is set, segments are paged through its
    /// buffer pool instead of held resident.
    pub fn with_pager(schema: SchemaRef, pager: Option<Arc<SegmentPager>>) -> Self {
        DeltaMainTable {
            state: RwLock::new(TableState {
                delta: RowStore::new(Arc::clone(&schema)),
                segments: Vec::new(),
                pk_locs: FxHashMap::default(),
            }),
            schema,
            next_segment: AtomicU64::new(1),
            pager,
            frozen_total: AtomicU64::new(0),
            freeze_bytes_before: AtomicU64::new(0),
            freeze_bytes_after: AtomicU64::new(0),
            pending_seed_heat: AtomicU64::new(0),
        }
    }

    /// Restores access heat persisted before a restart. Existing segments
    /// are seeded immediately; when none exist yet (the recovery case —
    /// replayed rows sit in the delta until the first merge), the seed is
    /// held and applied to the first merged segment. Without this, every
    /// restart zeroes all heat and the freeze pass would re-freeze the
    /// working set after two idle maintenance ticks.
    pub fn seed_heat(&self, total: u64) {
        if total == 0 {
            return;
        }
        let state = self.state.read();
        if state.segments.is_empty() {
            self.pending_seed_heat.fetch_add(total, Ordering::Relaxed);
        } else {
            // The snapshot is table-granular; every live segment gets the
            // full coldness reprieve (conservative: freezing late is
            // recoverable, freezing the working set is a latency cliff).
            for seg in &state.segments {
                seg.seed_heat(total);
            }
        }
    }

    /// Builds a segment in the table's configured residency mode.
    fn build_segment(&self, id: SegmentId, rows: &[Row], visible_from: Ts) -> Result<Segment> {
        match &self.pager {
            Some(pager) => {
                Segment::build_paged(id, Arc::clone(&self.schema), rows, visible_from, pager)
            }
            None => Segment::build_visible_from(id, Arc::clone(&self.schema), rows, visible_from),
        }
    }

    /// A streamed segment build in the table's residency mode (merge and
    /// compaction push rows group-at-a-time instead of materializing the
    /// whole segment).
    fn segment_builder(&self, id: SegmentId, visible_from: Ts) -> Result<SegmentBuilder> {
        Segment::builder(id, Arc::clone(&self.schema), visible_from, self.pager.as_ref())
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Current size snapshot.
    pub fn sizes(&self) -> TableSizes {
        let state = self.state.read();
        TableSizes {
            main_rows: state.segments.iter().map(|s| s.row_count()).sum(),
            delta_rows: state.delta.key_count(),
            segments: state.segments.len(),
            main_bytes: state.segments.iter().map(|s| s.size_bytes()).sum(),
        }
    }

    /// Bulk-loads rows directly into a main segment, visible to every
    /// snapshot (for initial population; bypasses transactions).
    pub fn bulk_load(&self, rows: &[Row]) -> Result<()> {
        for r in rows {
            self.schema.check_row(r)?;
        }
        let mut state = self.state.write();
        // Duplicate-key screening against both delta and existing main.
        if self.schema.has_primary_key() {
            for r in rows {
                let key = self.schema.key_of(r);
                if state.pk_locs.contains_key(&key) {
                    return Err(DbError::DuplicateKey(format!("{key}")));
                }
            }
        }
        let id = SegmentId(self.next_segment.fetch_add(1, Ordering::Relaxed));
        let seg = Arc::new(self.build_segment(id, rows, 0)?);
        if self.schema.has_primary_key() {
            for (i, r) in rows.iter().enumerate() {
                let key = self.schema.key_of(r);
                state.pk_locs.entry(key).or_default().push((id, i as u32));
            }
        }
        state.segments.push(seg);
        Ok(())
    }

    /// Transactional insert. Checks primary-key uniqueness against both the
    /// main store (MVCC-aware) and the delta.
    pub fn insert(&self, txn: &Transaction, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        let state = self.state.read();
        if self.schema.has_primary_key() {
            let key = self.schema.key_of(&row);
            self.check_main_insertable(&state, &key, txn)?;
        }
        state.delta.insert(txn, row)
    }

    /// Can `key` be inserted given the main store's contents?
    fn check_main_insertable(
        &self,
        state: &TableState,
        key: &Row,
        txn: &Transaction,
    ) -> Result<()> {
        let locs = match state.pk_locs.get(key) {
            Some(l) => l,
            None => return Ok(()),
        };
        for &(sid, off) in locs {
            let seg = state
                .segment(sid)
                .ok_or_else(|| DbError::Corruption(format!("missing segment {sid}")))?;
            match seg.delete_stamp(off) {
                None => {
                    return Err(DbError::DuplicateKey(format!("{key}")));
                }
                Some(Stamp::Pending(t)) if t == txn.id() => {
                    // We deleted it in this transaction: insert may proceed.
                }
                Some(Stamp::Pending(_)) => {
                    return Err(DbError::WriteConflict(
                        "concurrent delete on key".into(),
                    ))
                }
                Some(Stamp::Committed(ts)) if ts > txn.begin_ts() => {
                    return Err(DbError::WriteConflict(
                        "key deleted after snapshot".into(),
                    ))
                }
                Some(Stamp::Committed(_)) | Some(Stamp::Infinity) => {}
            }
        }
        Ok(())
    }

    /// Point lookup at a snapshot. Faults the row's pages when the main
    /// location is paged; page-read failures surface as typed errors.
    pub fn get(&self, key: &Row, read_ts: Ts, me: TxnId) -> Result<Option<Row>> {
        let state = self.state.read();
        if let Some(r) = state.delta.get(key, read_ts, me) {
            return Ok(Some(r));
        }
        let Some(locs) = state.pk_locs.get(key) else {
            return Ok(None);
        };
        for &(sid, off) in locs {
            if let Some(seg) = state.segment(sid) {
                if seg.visible_to(read_ts) && !seg.is_deleted(off, read_ts, me) {
                    return Ok(Some(seg.row_at(off)?));
                }
            }
        }
        Ok(None)
    }

    /// Transactional update (full-row image; the key must not change).
    pub fn update(&self, txn: &Transaction, key: &Row, row: Row) -> Result<()> {
        self.schema.check_row(&row)?;
        if !self.schema.has_primary_key() {
            return Err(DbError::Unsupported(
                "point operation on table without primary key".into(),
            ));
        }
        if self.schema.key_of(&row) != *key {
            return Err(DbError::InvalidArgument(
                "update must not change the primary key".into(),
            ));
        }
        let state = self.state.read();
        // Route to the delta when the delta holds the visible version.
        if state.delta.get(key, txn.begin_ts(), txn.id()).is_some() {
            return state.delta.update(txn, key, row);
        }
        // Main path: logical delete + re-insert into the delta.
        self.delete_in_main(&state, key, txn)?;
        state.delta.insert(txn, row)
    }

    /// Transactional delete.
    pub fn delete(&self, txn: &Transaction, key: &Row) -> Result<()> {
        if !self.schema.has_primary_key() {
            return Err(DbError::Unsupported(
                "point operation on table without primary key".into(),
            ));
        }
        let state = self.state.read();
        if state.delta.get(key, txn.begin_ts(), txn.id()).is_some() {
            return state.delta.delete(txn, key);
        }
        self.delete_in_main(&state, key, txn)
    }

    fn delete_in_main(&self, state: &TableState, key: &Row, txn: &Transaction) -> Result<()> {
        let locs = state
            .pk_locs
            .get(key)
            .ok_or_else(|| DbError::KeyNotFound(format!("{key}")))?;
        for &(sid, off) in locs {
            let seg = state
                .segment(sid)
                .ok_or_else(|| DbError::Corruption(format!("missing segment {sid}")))?;
            if !seg.visible_to(txn.begin_ts()) {
                continue;
            }
            match seg.delete_row(off, txn.id(), txn.begin_ts()) {
                Ok(()) => {
                    txn.enlist(Arc::new(SegmentDeleteEntry {
                        segment: Arc::clone(seg),
                    }))?;
                    return Ok(());
                }
                // Already deleted at this location: try the next one.
                Err(DbError::KeyNotFound(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(DbError::KeyNotFound(format!("{key}")))
    }

    /// Scans main segments (zone-map pruned, predicate pushdown on
    /// compressed data) plus the delta, producing batches.
    pub fn scan(
        &self,
        projection: &[usize],
        pred: &ScanPredicate,
        read_ts: Ts,
        me: TxnId,
        batch_size: usize,
    ) -> Result<Vec<Batch>> {
        pred.validate(&self.schema)?;
        let state = self.state.read();
        let mut out = Vec::new();
        for seg in &state.segments {
            if seg.visible_to(read_ts) {
                out.extend(seg.scan(projection, pred, read_ts, me, batch_size)?);
            }
        }
        out.extend(state.delta.scan(projection, pred, read_ts, me, batch_size)?);
        Ok(out)
    }

    /// The raw inputs of a fused (operate-on-compressed) scan: the main
    /// segments visible at `read_ts` plus the delta store's batches. The
    /// fused aggregate path consumes segments without materializing them;
    /// the delta — small and row-format — is returned pre-scanned in the
    /// same order the batched [`DeltaMainTable::scan`] would emit it.
    pub fn fused_scan_parts(
        &self,
        projection: &[usize],
        pred: &ScanPredicate,
        read_ts: Ts,
        me: TxnId,
        batch_size: usize,
    ) -> Result<(Vec<Arc<Segment>>, Vec<Batch>)> {
        pred.validate(&self.schema)?;
        let state = self.state.read();
        let segments = state
            .segments
            .iter()
            .filter(|s| s.visible_to(read_ts))
            .cloned()
            .collect();
        let delta = state.delta.scan(projection, pred, read_ts, me, batch_size)?;
        Ok((segments, delta))
    }

    /// Merges committed delta rows (at or below `watermark`) into a new
    /// main segment. See the module docs for why this is MVCC-safe.
    pub fn merge(&self, watermark: Ts) -> Result<MergeStats> {
        let mut state = self.state.write();
        let drained = state.delta.drain_committed(watermark);
        if drained.is_empty() {
            return Ok(MergeStats::default());
        }
        let id = SegmentId(self.next_segment.fetch_add(1, Ordering::Relaxed));
        let rows_merged = drained.len();
        if self.schema.has_primary_key() {
            for (i, r) in drained.iter().enumerate() {
                let key = self.schema.key_of(r);
                state.pk_locs.entry(key).or_default().push((id, i as u32));
            }
        }
        // Stream the drained rows into the builder: paged builds flush and
        // drop each full row group, so the drained vector shrinks as the
        // segment grows instead of coexisting with a second copy.
        let mut builder = self.segment_builder(id, watermark)?;
        for r in drained {
            builder.push_row(r)?;
        }
        let seg = Arc::new(builder.finish()?);
        // Apply heat restored from a pre-restart snapshot to the first
        // merged segment (recovery replays the WAL into the delta, so the
        // seed had nowhere to land until now).
        seg.seed_heat(self.pending_seed_heat.swap(0, Ordering::Relaxed));
        state.segments.push(seg);
        // Compact the delta index: drop chains now dead to every snapshot
        // (their data lives in the new segment). Live/pending chains move
        // over by Arc.
        state.delta = state.delta.rebuilt_without_dead(watermark);
        Ok(MergeStats {
            rows_merged,
            new_segment: Some(id.raw()),
        })
    }

    /// Rewrites main segments, dropping rows whose deletion committed at or
    /// before `watermark` and folding the rest into a single segment.
    /// Segments with in-flight (pending) deletes are left untouched.
    pub fn compact(&self, watermark: Ts) -> Result<CompactStats> {
        let mut state = self.state.write();
        let mut stats = CompactStats::default();
        let compactable = |s: &Arc<Segment>| !s.has_pending_deletes() && s.visible_to(watermark);
        if !state.segments.iter().any(&compactable) {
            stats.segments_skipped = state.segments.len();
            return Ok(stats);
        }
        let mut keep: Vec<Arc<Segment>> = Vec::new();
        // Streamed rewrite: surviving rows go straight into the builder,
        // which flushes each completed row group, so peak transient
        // materialization is one row group — not the union of every
        // compacted segment.
        let id = SegmentId(self.next_segment.fetch_add(1, Ordering::Relaxed));
        let mut builder = self.segment_builder(id, watermark)?;
        // (row offset in the new segment) → surviving stamp to re-register.
        let mut carried_stamps: Vec<(u32, Stamp)> = Vec::new();
        for seg in state.segments.drain(..) {
            if !compactable(&seg) {
                stats.segments_skipped += 1;
                keep.push(seg);
                continue;
            }
            stats.segments_compacted += 1;
            for off in 0..seg.row_count() as u32 {
                match seg.delete_stamp(off) {
                    Some(Stamp::Committed(ts)) if ts <= watermark => {
                        stats.rows_dropped += 1;
                    }
                    Some(stamp @ Stamp::Committed(_)) => {
                        carried_stamps.push((builder.rows_pushed() as u32, stamp));
                        builder.push_row(seg.row_at_uncounted(off)?)?;
                    }
                    _ => builder.push_row(seg.row_at(off)?)?,
                }
            }
        }
        let seg = Arc::new(builder.finish()?);
        for (off, stamp) in carried_stamps {
            seg.restore_delete_stamp(off, stamp);
        }
        // Rebuild the pk index from scratch: surviving segments + new one.
        state.pk_locs.clear();
        state.segments = keep;
        state.segments.push(Arc::clone(&seg));
        if self.schema.has_primary_key() {
            let segments = std::mem::take(&mut state.segments);
            for s in &segments {
                for off in 0..s.row_count() as u32 {
                    let key = self.schema.key_of(&s.row_at(off)?);
                    state.pk_locs.entry(key).or_default().push((s.id(), off));
                }
            }
            state.segments = segments;
        }
        Ok(stats)
    }

    /// Decays every segment's heat counters and rewrites the *cold* ones
    /// into their frozen representation: surviving rows (deletions
    /// committed at or before `watermark` are dropped, L-Store style) are
    /// streamed into a fresh segment built with the frozen encodings
    /// (exact-cost selection, sorted-run delta, full-cardinality ordered
    /// dictionaries), and the replacement is swapped in atomically per
    /// segment under the table's state write lock.
    ///
    /// OLTP transparency: updates and deletes of frozen rows go through
    /// the delta / delete-stamp paths exactly as for hot segments, so no
    /// writer ever blocks on (or errors because of) a freeze. Segments
    /// with in-flight (pending) deletes are skipped **this pass** and
    /// re-evaluated on every subsequent pass — once the deleting
    /// transaction resolves and the watermark passes it, the segment
    /// freezes (this also fixes the old `compact` behaviour of shelving
    /// such segments forever).
    ///
    /// Crash hygiene: the frozen page file is published tmp+rename by the
    /// segment builder *before* the in-memory swap. The
    /// [`points::STORAGE_FREEZE_CRASH`] fault aborts between publish and
    /// swap — the table keeps serving the old representation unchanged and
    /// the orphaned replacement is reclaimed (Drop now, purge-at-open
    /// after a real crash, since segments rebuild from the WAL anyway).
    ///
    /// `force` freezes every eligible segment regardless of heat (tests,
    /// benchmarks, and explicit operator requests).
    pub fn freeze(
        &self,
        watermark: Ts,
        faults: &FaultInjector,
        force: bool,
    ) -> Result<FreezeStats> {
        /// Consecutive zero-heat maintenance decays before a segment is
        /// considered cold enough to freeze.
        const COLD_TICKS: u32 = 2;
        let mut state = self.state.write();
        let mut stats = FreezeStats::default();
        for idx in 0..state.segments.len() {
            let seg = Arc::clone(&state.segments[idx]);
            seg.decay_heat();
            if seg.is_frozen() {
                continue;
            }
            if !seg.visible_to(watermark)
                || seg.has_pending_deletes()
                || (!force && seg.cold_ticks() < COLD_TICKS)
            {
                stats.segments_skipped += 1;
                continue;
            }
            let bytes_before = seg.size_bytes();
            let id = SegmentId(self.next_segment.fetch_add(1, Ordering::Relaxed));
            let mut builder = self.segment_builder(id, watermark)?.frozen();
            // Old row offset → new offset for surviving rows (pk remap).
            let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
            let mut carried_stamps: Vec<(u32, Stamp)> = Vec::new();
            let mut dropped = 0usize;
            for off in 0..seg.row_count() as u32 {
                let stamp = seg.delete_stamp(off);
                if let Some(Stamp::Committed(ts)) = stamp {
                    if ts <= watermark {
                        dropped += 1;
                        continue;
                    }
                }
                let new_off = builder.rows_pushed() as u32;
                if let Some(s @ Stamp::Committed(_)) = stamp {
                    carried_stamps.push((new_off, s));
                }
                remap.insert(off, new_off);
                builder.push_row(seg.row_at_uncounted(off)?)?;
            }
            let frozen = Arc::new(builder.finish()?);
            for &(off, stamp) in &carried_stamps {
                frozen.restore_delete_stamp(off, stamp);
            }
            // The replacement is fully built (page file published via
            // tmp+rename) but not yet visible. A crash here must leave the
            // old representation serving and the new one reclaimable.
            if faults.should_fire(points::STORAGE_FREEZE_CRASH) {
                return Err(DbError::FaultInjected(
                    "crash between freeze publish and swap".into(),
                ));
            }
            let bytes_after = frozen.size_bytes();
            // Atomic per-segment swap + pk remap, all under the write lock.
            state.segments[idx] = Arc::clone(&frozen);
            if self.schema.has_primary_key() {
                let old_id = seg.id();
                for locs in state.pk_locs.values_mut() {
                    locs.retain_mut(|loc| {
                        if loc.0 != old_id {
                            return true;
                        }
                        match remap.get(&loc.1) {
                            Some(&new_off) => {
                                *loc = (id, new_off);
                                true
                            }
                            None => false,
                        }
                    });
                }
                state.pk_locs.retain(|_, locs| !locs.is_empty());
            }
            stats.segments_frozen += 1;
            stats.groups_frozen += frozen.group_count();
            stats.rows_dropped += dropped;
            stats.bytes_before += bytes_before;
            stats.bytes_after += bytes_after;
            self.frozen_total.fetch_add(1, Ordering::Relaxed);
            self.freeze_bytes_before
                .fetch_add(bytes_before as u64, Ordering::Relaxed);
            self.freeze_bytes_after
                .fetch_add(bytes_after as u64, Ordering::Relaxed);
        }
        Ok(stats)
    }

    /// Aggregated heat/freeze counters for `Database::stats`.
    pub fn heat_stats(&self) -> HeatStats {
        let state = self.state.read();
        let mut hs = HeatStats {
            segments_frozen_total: self.frozen_total.load(Ordering::Relaxed),
            bytes_before_total: self.freeze_bytes_before.load(Ordering::Relaxed),
            bytes_after_total: self.freeze_bytes_after.load(Ordering::Relaxed),
            ..HeatStats::default()
        };
        for s in &state.segments {
            hs.total_heat += s.heat();
            if s.is_frozen() {
                hs.frozen_segments += 1;
                hs.frozen_groups += s.group_count();
                hs.frozen_scan_hits += s.frozen_scan_hits();
            }
        }
        hs
    }

    /// Runs version GC on the delta store.
    pub fn gc(&self, watermark: Ts) -> usize {
        self.state.read().delta.gc(watermark)
    }

    /// Estimated visible row count (cheap, approximate: main rows minus
    /// committed deletes plus delta keys).
    pub fn row_count_estimate(&self) -> usize {
        let state = self.state.read();
        let main: usize = state
            .segments
            .iter()
            .map(|s| s.row_count().saturating_sub(s.delete_count()))
            .sum();
        main + state.delta.key_count()
    }

    /// Per-segment encoding names of column `c` (diagnostics / EXPLAIN).
    /// Pins the first page of each paged segment's column.
    pub fn column_encodings(&self, c: usize) -> Result<Vec<&'static str>> {
        self.state
            .read()
            .segments
            .iter()
            .map(|s| s.column_encoding_name(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use oltap_common::row;
    use oltap_common::{DataType, Field, Schema, Value};
    use oltap_txn::TransactionManager;

    const NOBODY: TxnId = TxnId(u64::MAX - 1);

    fn table() -> (Arc<TransactionManager>, DeltaMainTable) {
        let schema = Arc::new(
            Schema::with_primary_key(
                vec![
                    Field::not_null("id", DataType::Int64),
                    Field::new("tag", DataType::Utf8),
                    Field::new("v", DataType::Int64),
                ],
                &["id"],
            )
            .unwrap(),
        );
        (
            Arc::new(TransactionManager::new()),
            DeltaMainTable::new(schema),
        )
    }

    fn count(t: &DeltaMainTable, read_ts: Ts) -> usize {
        t.scan(&[0], &ScanPredicate::all(), read_ts, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum()
    }

    #[test]
    fn insert_lands_in_delta_then_merges_to_main() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..100 {
            t.insert(&tx, row![i as i64, "a", i as i64]).unwrap();
        }
        let cts = tx.commit().unwrap();
        assert_eq!(t.sizes().delta_rows, 100);
        assert_eq!(t.sizes().main_rows, 0);
        assert_eq!(count(&t, cts), 100);

        let stats = t.merge(mgr.gc_watermark()).unwrap();
        assert_eq!(stats.rows_merged, 100);
        assert_eq!(t.sizes().main_rows, 100);
        assert_eq!(count(&t, mgr.now()), 100);
        // Point reads route to main now.
        assert!(t.get(&row![42i64], mgr.now(), NOBODY).unwrap().is_some());
    }

    #[test]
    fn merge_respects_watermark() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        t.insert(&tx, row![1i64, "a", 1i64]).unwrap();
        tx.commit().unwrap();

        // A long-running reader pins an old snapshot.
        let reader = mgr.begin();

        let tx2 = mgr.begin();
        t.insert(&tx2, row![2i64, "b", 2i64]).unwrap();
        tx2.commit().unwrap();

        // Watermark is the reader's begin_ts: row 2 (committed later) must
        // stay in the delta.
        let stats = t.merge(mgr.gc_watermark()).unwrap();
        assert_eq!(stats.rows_merged, 1);
        // Key 2 is still live in the delta; key 1's chain was compacted
        // away (its data now lives in the segment).
        assert_eq!(t.sizes().delta_rows, 1);
        // The reader still sees exactly row 1.
        assert_eq!(count(&t, reader.begin_ts()), 1);
        // A fresh snapshot sees both, exactly once each.
        assert_eq!(count(&t, mgr.now()), 2);
        reader.commit().unwrap();

        // Now everything can merge.
        let stats = t.merge(mgr.gc_watermark()).unwrap();
        assert_eq!(stats.rows_merged, 1);
        assert_eq!(count(&t, mgr.now()), 2);
    }

    #[test]
    fn no_double_visibility_after_merge() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..10 {
            t.insert(&tx, row![i as i64, "x", 0i64]).unwrap();
        }
        let cts = tx.commit().unwrap();
        t.merge(mgr.gc_watermark()).unwrap();
        // Snapshot taken before the merge but after commit: exactly 10.
        assert_eq!(count(&t, cts), 10);
        assert_eq!(count(&t, mgr.now()), 10);
    }

    #[test]
    fn update_of_main_row_is_delete_plus_delta_insert() {
        let (mgr, t) = table();
        t.bulk_load(&[row![1i64, "a", 10i64], row![2i64, "b", 20i64]])
            .unwrap();
        let tx = mgr.begin();
        t.update(&tx, &row![1i64], row![1i64, "a", 99i64]).unwrap();
        let cts = tx.commit().unwrap();

        assert_eq!(t.get(&row![1i64], cts, NOBODY).unwrap().unwrap()[2], Value::Int(99));
        // Old snapshot sees the old value.
        assert_eq!(
            t.get(&row![1i64], cts - 1, NOBODY).unwrap().unwrap()[2],
            Value::Int(10)
        );
        // Still exactly two visible rows.
        assert_eq!(count(&t, cts), 2);
    }

    #[test]
    fn delete_from_main_and_from_delta() {
        let (mgr, t) = table();
        t.bulk_load(&[row![1i64, "m", 1i64]]).unwrap();
        let tx = mgr.begin();
        t.insert(&tx, row![2i64, "d", 2i64]).unwrap();
        tx.commit().unwrap();

        let tx = mgr.begin();
        t.delete(&tx, &row![1i64]).unwrap(); // main row
        t.delete(&tx, &row![2i64]).unwrap(); // delta row
        let cts = tx.commit().unwrap();
        assert_eq!(count(&t, cts), 0);
        assert_eq!(count(&t, cts - 1), 2);
        assert!(t.get(&row![1i64], cts, NOBODY).unwrap().is_none());
    }

    #[test]
    fn duplicate_key_against_main_detected() {
        let (mgr, t) = table();
        t.bulk_load(&[row![1i64, "a", 1i64]]).unwrap();
        let tx = mgr.begin();
        assert!(matches!(
            t.insert(&tx, row![1i64, "dup", 0i64]),
            Err(DbError::DuplicateKey(_))
        ));
        // Delete-then-insert in one transaction is allowed.
        t.delete(&tx, &row![1i64]).unwrap();
        t.insert(&tx, row![1i64, "new", 5i64]).unwrap();
        let cts = tx.commit().unwrap();
        assert_eq!(
            t.get(&row![1i64], cts, NOBODY).unwrap().unwrap()[1],
            Value::Str("new".into())
        );
        assert_eq!(count(&t, cts), 1);
    }

    #[test]
    fn write_conflict_on_main_row() {
        let (mgr, t) = table();
        t.bulk_load(&[row![1i64, "a", 1i64]]).unwrap();
        let t1 = mgr.begin();
        let t2 = mgr.begin();
        t.update(&t1, &row![1i64], row![1i64, "a", 2i64]).unwrap();
        assert!(matches!(
            t.update(&t2, &row![1i64], row![1i64, "a", 3i64]),
            Err(DbError::WriteConflict(_))
        ));
        t1.commit().unwrap();
        // FCW against a stale snapshot.
        assert!(matches!(
            t.delete(&t2, &row![1i64]),
            Err(DbError::WriteConflict(_))
        ));
    }

    #[test]
    fn abort_of_main_update_restores_row() {
        let (mgr, t) = table();
        t.bulk_load(&[row![1i64, "a", 1i64]]).unwrap();
        let tx = mgr.begin();
        t.update(&tx, &row![1i64], row![1i64, "a", 2i64]).unwrap();
        tx.abort().unwrap();
        assert_eq!(
            t.get(&row![1i64], mgr.now(), NOBODY).unwrap().unwrap()[2],
            Value::Int(1)
        );
        assert_eq!(count(&t, mgr.now()), 1);
    }

    #[test]
    fn scan_pushdown_covers_delta_and_main() {
        let (mgr, t) = table();
        t.bulk_load(
            &(0..100)
                .map(|i| row![i as i64, "m", (i % 10) as i64])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let tx = mgr.begin();
        for i in 100..120 {
            t.insert(&tx, row![i as i64, "d", (i % 10) as i64]).unwrap();
        }
        let cts = tx.commit().unwrap();
        let pred = ScanPredicate::single(2, CmpOp::Eq, Value::Int(3));
        let total: usize = t
            .scan(&[0, 2], &pred, cts, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 12); // 10 from main, 2 from delta
    }

    #[test]
    fn repeated_update_merge_cycles() {
        let (mgr, t) = table();
        t.bulk_load(&[row![1i64, "a", 0i64]]).unwrap();
        for round in 1..=5 {
            let tx = mgr.begin();
            t.update(&tx, &row![1i64], row![1i64, "a", round as i64])
                .unwrap();
            tx.commit().unwrap();
            t.merge(mgr.gc_watermark()).unwrap();
            assert_eq!(
                t.get(&row![1i64], mgr.now(), NOBODY).unwrap().unwrap()[2],
                Value::Int(round as i64),
                "round {round}"
            );
            assert_eq!(count(&t, mgr.now()), 1, "round {round}");
        }
        // 1 bulk segment + 5 merge segments accumulated.
        assert_eq!(t.sizes().segments, 6);
        // Compaction folds them and drops dead rows.
        let stats = t.compact(mgr.gc_watermark()).unwrap();
        assert_eq!(stats.segments_compacted, 6);
        assert_eq!(stats.rows_dropped, 5);
        assert_eq!(t.sizes().segments, 1);
        assert_eq!(count(&t, mgr.now()), 1);
        assert_eq!(
            t.get(&row![1i64], mgr.now(), NOBODY).unwrap().unwrap()[2],
            Value::Int(5)
        );
    }

    #[test]
    fn freeze_rewrites_cold_segments_without_changing_results() {
        let (mgr, t) = table();
        // Sorted ids and a low-cardinality tag: the frozen re-encoding has
        // something to win on (delta runs + full-cardinality dictionaries).
        let rows: Vec<_> = (0..500)
            .map(|i| row![i as i64, ["a", "b"][i % 2], (i / 10) as i64])
            .collect();
        t.bulk_load(&rows).unwrap();
        let faults = FaultInjector::disabled();

        // Hot segment: nothing freezes without `force` until it has been
        // cold for consecutive decay ticks.
        let stats = t.freeze(mgr.gc_watermark(), &faults, false).unwrap();
        assert_eq!(stats.segments_frozen, 0);
        assert_eq!(stats.segments_skipped, 1);

        // One more idle decay tick and it is cold; it freezes on its own.
        let stats = t.freeze(mgr.gc_watermark(), &faults, false).unwrap();
        assert_eq!(stats.segments_frozen, 1);
        assert!(stats.bytes_after <= stats.bytes_before, "{stats:?}");

        // A frozen segment is never re-frozen.
        let again = t.freeze(mgr.gc_watermark(), &faults, true).unwrap();
        assert_eq!(again.segments_frozen, 0);

        // Scans, predicates, and point reads are unchanged.
        assert_eq!(count(&t, mgr.now()), 500);
        let pred = ScanPredicate::single(0, CmpOp::Ge, Value::Int(400));
        let survivors: usize = t
            .scan(&[0], &pred, mgr.now(), NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(survivors, 100);
        assert_eq!(
            t.get(&row![123i64], mgr.now(), NOBODY).unwrap().unwrap()[2],
            Value::Int(12)
        );

        // OLTP stays transparent: update + delete against frozen rows.
        let tx = mgr.begin();
        t.update(&tx, &row![1i64], row![1i64, "a", 999i64]).unwrap();
        t.delete(&tx, &row![2i64]).unwrap();
        let cts = tx.commit().unwrap();
        assert_eq!(t.get(&row![1i64], cts, NOBODY).unwrap().unwrap()[2], Value::Int(999));
        assert!(t.get(&row![2i64], cts, NOBODY).unwrap().is_none());
        assert_eq!(count(&t, cts), 499);

        let hs = t.heat_stats();
        assert_eq!(hs.frozen_segments, 1);
        assert!(hs.frozen_scan_hits > 0);
    }

    #[test]
    fn freeze_reevaluates_segments_once_pending_deletes_commit() {
        let (mgr, t) = table();
        t.bulk_load(&[row![1i64, "a", 1i64], row![2i64, "b", 2i64]])
            .unwrap();
        let faults = FaultInjector::disabled();

        // An in-flight delete blocks the freeze (stamps must not be
        // baked into an immutable rewrite while undecided).
        let tx = mgr.begin();
        t.delete(&tx, &row![1i64]).unwrap();
        let stats = t.freeze(mgr.gc_watermark(), &faults, true).unwrap();
        assert_eq!(stats.segments_frozen, 0);
        assert_eq!(stats.segments_skipped, 1);

        // The skip is NOT permanent: after the delete commits and the GC
        // watermark passes it, the next pass rewrites the segment and
        // drops the dead row.
        tx.commit().unwrap();
        let stats = t.freeze(mgr.gc_watermark(), &faults, true).unwrap();
        assert_eq!(stats.segments_frozen, 1);
        assert_eq!(stats.rows_dropped, 1);
        assert_eq!(count(&t, mgr.now()), 1);
        assert!(t.get(&row![1i64], mgr.now(), NOBODY).unwrap().is_none());
        assert_eq!(
            t.get(&row![2i64], mgr.now(), NOBODY).unwrap().unwrap()[1],
            Value::Str("b".into())
        );
    }

    #[test]
    fn freeze_crash_point_leaves_table_intact() {
        let (mgr, t) = table();
        let rows: Vec<_> = (0..200).map(|i| row![i as i64, "x", i as i64]).collect();
        t.bulk_load(&rows).unwrap();
        let faults = FaultInjector::new(7);
        faults.arm(points::STORAGE_FREEZE_CRASH, oltap_common::FaultPoint::times(1));

        let err = t.freeze(mgr.gc_watermark(), &faults, true).unwrap_err();
        assert!(matches!(err, DbError::FaultInjected(_)), "{err}");
        // The swap never happened: the segment is still unfrozen and every
        // row is still readable.
        assert_eq!(t.heat_stats().frozen_segments, 0);
        assert_eq!(count(&t, mgr.now()), 200);

        // The retry (fault exhausted) succeeds with identical results.
        let stats = t.freeze(mgr.gc_watermark(), &faults, true).unwrap();
        assert_eq!(stats.segments_frozen, 1);
        assert_eq!(count(&t, mgr.now()), 200);
    }

    #[test]
    fn seeded_heat_defers_freeze_after_restart() {
        let faults = FaultInjector::disabled();

        // Recovery case: rows sit in the delta (no segments yet) when the
        // restored heat arrives; the first merge must inherit it.
        let (mgr, t) = table();
        let tx = mgr.begin();
        for i in 0..50 {
            t.insert(&tx, row![i as i64, "a", i as i64]).unwrap();
        }
        tx.commit().unwrap();
        t.seed_heat(64);
        t.merge(mgr.gc_watermark()).unwrap();
        assert!(t.heat_stats().total_heat > 0);
        // Two idle ticks freeze a cold segment; the seed keeps this one hot.
        for _ in 0..2 {
            let fs = t.freeze(mgr.gc_watermark(), &faults, false).unwrap();
            assert_eq!(fs.segments_frozen, 0, "seeded segment froze early");
        }

        // Control: identical table without the seed freezes on the second
        // idle tick.
        let (mgr2, t2) = table();
        let tx = mgr2.begin();
        for i in 0..50 {
            t2.insert(&tx, row![i as i64, "a", i as i64]).unwrap();
        }
        tx.commit().unwrap();
        t2.merge(mgr2.gc_watermark()).unwrap();
        let mut frozen = 0;
        for _ in 0..2 {
            frozen += t2
                .freeze(mgr2.gc_watermark(), &faults, false)
                .unwrap()
                .segments_frozen;
        }
        assert_eq!(frozen, 1, "unseeded control did not freeze");

        // Seeding with live segments applies immediately (no merge needed).
        let before = t2.heat_stats().total_heat;
        t2.seed_heat(16);
        assert!(t2.heat_stats().total_heat > before);
    }

    #[test]
    fn compact_skips_segments_with_pending_deletes() {
        let (mgr, t) = table();
        t.bulk_load(&[row![1i64, "a", 1i64], row![2i64, "b", 2i64]])
            .unwrap();
        let tx = mgr.begin();
        t.delete(&tx, &row![1i64]).unwrap();
        let stats = t.compact(mgr.gc_watermark()).unwrap();
        assert_eq!(stats.segments_skipped, 1);
        assert_eq!(stats.segments_compacted, 0);
        tx.abort().unwrap();
        assert_eq!(count(&t, mgr.now()), 2);
    }

    #[test]
    fn merge_then_update_routes_to_main_path() {
        let (mgr, t) = table();
        let tx = mgr.begin();
        t.insert(&tx, row![1i64, "a", 1i64]).unwrap();
        tx.commit().unwrap();
        t.merge(mgr.gc_watermark()).unwrap();

        let tx = mgr.begin();
        t.update(&tx, &row![1i64], row![1i64, "a", 2i64]).unwrap();
        let cts = tx.commit().unwrap();
        assert_eq!(t.get(&row![1i64], cts, NOBODY).unwrap().unwrap()[2], Value::Int(2));
        assert_eq!(count(&t, cts), 1);
    }

    #[test]
    fn keyless_table_ingest_and_merge() {
        let schema = Arc::new(Schema::new(vec![Field::new("v", DataType::Int64)]));
        let t = DeltaMainTable::new(schema);
        let mgr = Arc::new(TransactionManager::new());
        let tx = mgr.begin();
        for i in 0..50 {
            t.insert(&tx, row![i as i64]).unwrap();
        }
        tx.commit().unwrap();
        let stats = t.merge(mgr.gc_watermark()).unwrap();
        assert_eq!(stats.rows_merged, 50);
        assert_eq!(count(&t, mgr.now()), 50);
    }

    #[test]
    fn concurrent_scans_during_merge() {
        let (mgr, t) = table();
        let t = Arc::new(t);
        let tx = mgr.begin();
        for i in 0..2000 {
            t.insert(&tx, row![i as i64, "x", i as i64]).unwrap();
        }
        tx.commit().unwrap();

        let scanners: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let n = count(&t, mgr.now());
                        assert_eq!(n, 2000);
                    }
                })
            })
            .collect();
        t.merge(mgr.gc_watermark()).unwrap();
        for s in scanners {
            s.join().unwrap();
        }
        assert_eq!(count(&t, mgr.now()), 2000);
    }
}
