//! Immutable compressed columnar segments — the "main" store.
//!
//! A segment is the unit of the read-optimized column store: a few hundred
//! thousand rows, each column independently encoded
//! ([`crate::encoding`]), fronted by a [`ZoneMap`], and carrying an MVCC
//! *delete-stamp table* so that logical deletes/updates of merged rows
//! remain snapshot-consistent (the DB2 BLU approach: "deletes are logical
//! operations that retain the old version rows").
//!
//! MVCC contract: segments are built only from rows whose commit timestamp
//! is at or below the transaction manager's GC watermark at merge time, so
//! every live snapshot can see every merged row. Visibility therefore
//! reduces to "not (visibly deleted)".

use crate::buffer::{PageGuard, SegmentPager};
use crate::encoding::{BitPacked, IntEncoding, StrEncoding};
use crate::pagefile::{PageFile, PageFileWriter};
use crate::predicate::{CmpOp, ColumnPredicate, ScanPredicate};
use crate::zonemap::{ColumnZone, ZoneMap};
use oltap_common::hash::FxHashMap;
use oltap_common::ids::{SegmentId, TxnId};
use oltap_common::{BitSet, ColumnVector, DataType, DbError, Result, Row, Value};
use oltap_common::schema::SchemaRef;
use oltap_txn::{Stamp, Ts};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// One encoded column plus its validity bitmap.
#[derive(Debug, Clone)]
pub enum EncodedColumn {
    /// Int64/Timestamp column.
    Int {
        /// The chosen encoding.
        enc: IntEncoding,
        /// Validity (None = all valid).
        validity: Option<BitSet>,
    },
    /// Float64 column (stored raw: float compression is future work).
    Float {
        /// Dense values.
        values: Vec<f64>,
        /// Validity.
        validity: Option<BitSet>,
    },
    /// Utf8 column.
    Str {
        /// The chosen encoding.
        enc: StrEncoding,
        /// Validity.
        validity: Option<BitSet>,
    },
    /// Bool column.
    Bool {
        /// Packed values.
        values: BitSet,
        /// Validity.
        validity: Option<BitSet>,
    },
}

impl EncodedColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            EncodedColumn::Int { enc, .. } => enc.len(),
            EncodedColumn::Float { values, .. } => values.len(),
            EncodedColumn::Str { enc, .. } => enc.len(),
            EncodedColumn::Bool { values, .. } => values.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Heap bytes used by the encoded form.
    pub fn size_bytes(&self) -> usize {
        let v = match self {
            EncodedColumn::Int { enc, .. } => enc.size_bytes(),
            EncodedColumn::Float { values, .. } => values.len() * 8,
            EncodedColumn::Str { enc, .. } => enc.size_bytes(),
            EncodedColumn::Bool { values, .. } => values.len() / 8 + 8,
        };
        v + self.validity().map_or(0, |b| b.len() / 8 + 8)
    }

    fn validity(&self) -> Option<&BitSet> {
        match self {
            EncodedColumn::Int { validity, .. }
            | EncodedColumn::Float { validity, .. }
            | EncodedColumn::Str { validity, .. }
            | EncodedColumn::Bool { validity, .. } => validity.as_ref(),
        }
    }

    /// Encoding name for diagnostics.
    pub fn encoding_name(&self) -> &'static str {
        match self {
            EncodedColumn::Int { enc, .. } => enc.name(),
            EncodedColumn::Float { .. } => "raw",
            EncodedColumn::Str { enc, .. } => enc.name(),
            EncodedColumn::Bool { .. } => "bitpack",
        }
    }

    /// Materializes the value at row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        if let Some(v) = self.validity() {
            if !v.get(i) {
                return Value::Null;
            }
        }
        match self {
            EncodedColumn::Int { enc, .. } => Value::Int(enc.get(i)),
            EncodedColumn::Float { values, .. } => Value::Float(values[i]),
            EncodedColumn::Str { enc, .. } => Value::Str(enc.get(i).to_string()),
            EncodedColumn::Bool { values, .. } => Value::Bool(values.get(i)),
        }
    }

    /// Gathers `sel` rows into a decoded [`ColumnVector`]. `sel` must be
    /// ascending (scan selections always are).
    pub fn gather(&self, sel: &[u32]) -> ColumnVector {
        debug_assert!(sel.windows(2).all(|w| w[0] < w[1]), "gather needs ascending indexes");
        // Contiguous-selection fast path: full-group scans and dense ranges
        // decode sequentially (block cursor + memcpy) instead of per-index.
        if let Some(&first) = sel.first() {
            let last = sel[sel.len() - 1];
            if (last - first) as usize == sel.len() - 1 {
                return self.gather_range(first as usize, sel.len());
            }
        }
        let gather_validity = |validity: &Option<BitSet>| {
            validity.as_ref().map(|v| {
                let mut out = BitSet::with_len(sel.len());
                for (o, &s) in sel.iter().enumerate() {
                    if v.get(s as usize) {
                        out.set(o);
                    }
                }
                out
            })
        };
        match self {
            EncodedColumn::Int { enc, validity } => ColumnVector::Int64 {
                values: sel.iter().map(|&i| enc.get(i as usize)).collect(),
                validity: gather_validity(validity),
            },
            EncodedColumn::Float { values, validity } => ColumnVector::Float64 {
                values: sel.iter().map(|&i| values[i as usize]).collect(),
                validity: gather_validity(validity),
            },
            EncodedColumn::Str { enc, validity } => ColumnVector::Utf8 {
                values: sel.iter().map(|&i| enc.get(i as usize).to_string()).collect(),
                validity: gather_validity(validity),
            },
            EncodedColumn::Bool { values, validity } => {
                let mut bits = BitSet::with_len(sel.len());
                for (o, &s) in sel.iter().enumerate() {
                    if values.get(s as usize) {
                        bits.set(o);
                    }
                }
                ColumnVector::Bool {
                    values: bits,
                    validity: gather_validity(validity),
                }
            }
        }
    }

    /// Decodes the dense row range `[start, start + len)` — the contiguous
    /// fast path of [`EncodedColumn::gather`].
    fn gather_range(&self, start: usize, len: usize) -> ColumnVector {
        let sub_validity =
            |validity: &Option<BitSet>| validity.as_ref().map(|v| v.slice(start, len));
        match self {
            EncodedColumn::Int { enc, validity } => ColumnVector::Int64 {
                values: decode_int_range(enc, start, len),
                validity: sub_validity(validity),
            },
            EncodedColumn::Float { values, validity } => ColumnVector::Float64 {
                values: values[start..start + len].to_vec(),
                validity: sub_validity(validity),
            },
            EncodedColumn::Str { enc, validity } => {
                let values = match enc {
                    StrEncoding::Raw(v) => v[start..start + len].to_vec(),
                    StrEncoding::Dict(d) => {
                        let mut codes = vec![0u64; len];
                        d.codes().unpack_block(start, &mut codes);
                        let dict = d.dict();
                        codes.iter().map(|&c| dict[c as usize].clone()).collect()
                    }
                };
                ColumnVector::Utf8 {
                    values,
                    validity: sub_validity(validity),
                }
            }
            EncodedColumn::Bool { values, validity } => ColumnVector::Bool {
                values: values.slice(start, len),
                validity: sub_validity(validity),
            },
        }
    }

    /// Block-decodes integer rows `[start, start + out.len())` into `out`
    /// without allocating (FOR/dict codes are unpacked 64 at a time, RLE
    /// runs are walked with a skip counter). Returns `false`, leaving
    /// `out` untouched, for non-integer columns.
    pub fn decode_int_block(&self, start: usize, out: &mut [i64]) -> bool {
        match self {
            EncodedColumn::Int { enc, .. } => {
                decode_int_block(enc, start, out);
                true
            }
            _ => false,
        }
    }

    /// Evaluates `op literal` over all rows, AND-ing the result into `sel`
    /// (rows whose bit is already clear are skipped implicitly since AND
    /// only clears bits). NULL rows never match.
    pub fn eval_predicate(&self, op: CmpOp, literal: &Value, sel: &mut BitSet) -> Result<()> {
        let n = self.len();
        let mut matches = BitSet::with_len(n);
        if literal.is_null() {
            sel.intersect_with(&matches); // all clear
            return Ok(());
        }
        match self {
            EncodedColumn::Int { enc, .. } => {
                let lit = literal.as_int()?;
                eval_int(enc, op, lit, &mut matches);
            }
            EncodedColumn::Float { values, .. } => {
                let lit = literal.as_float()?;
                for (i, &v) in values.iter().enumerate() {
                    if op.matches(v.total_cmp(&lit)) {
                        matches.set(i);
                    }
                }
            }
            EncodedColumn::Str { enc, .. } => {
                let lit = literal.as_str()?;
                eval_str(enc, op, lit, &mut matches);
            }
            EncodedColumn::Bool { values, .. } => {
                let lit = literal.as_bool()?;
                for i in 0..n {
                    if op.matches(values.get(i).cmp(&lit)) {
                        matches.set(i);
                    }
                }
            }
        }
        if let Some(validity) = self.validity() {
            matches.intersect_with(validity);
        }
        sel.intersect_with(&matches);
        Ok(())
    }
}

/// Predicate evaluation over encoded integers, operating on the compressed
/// form where profitable (codes for dictionary, shifted domain for FOR,
/// runs for RLE).
fn eval_int(enc: &IntEncoding, op: CmpOp, lit: i64, out: &mut BitSet) {
    match enc {
        IntEncoding::Raw(values) => {
            for (i, &v) in values.iter().enumerate() {
                if op.matches(v.cmp(&lit)) {
                    out.set(i);
                }
            }
        }
        IntEncoding::For(f) => {
            // Compare in the shifted (code) domain to avoid per-row adds.
            let n = f.len();
            let base = f.base();
            let max_code = if f.width() == 64 {
                u64::MAX
            } else if f.width() == 0 {
                0
            } else {
                (1u64 << f.width()) - 1
            };
            // lit relative to base, clamped to the representable window.
            let rel = (lit as i128) - (base as i128);
            let (all, none): (bool, bool) = match op {
                CmpOp::Eq => (false, rel < 0 || rel > max_code as i128),
                CmpOp::Ne => (rel < 0 || rel > max_code as i128, false),
                CmpOp::Lt => (rel > max_code as i128, rel <= 0),
                CmpOp::Le => (rel >= max_code as i128, rel < 0),
                CmpOp::Gt => (rel < 0, rel >= max_code as i128),
                CmpOp::Ge => (rel <= 0, rel > max_code as i128),
            };
            if none {
                return;
            }
            if all {
                for i in 0..n {
                    out.set(i);
                }
                return;
            }
            cmp_codes_block(f.packed(), op, rel as u64, out);
        }
        IntEncoding::Rle(r) => {
            let mut offset = 0usize;
            for &(v, run) in r.runs() {
                if op.matches(v.cmp(&lit)) {
                    for i in offset..offset + run as usize {
                        out.set(i);
                    }
                }
                offset += run as usize;
            }
        }
        IntEncoding::Dict(d) => {
            let n = d.len();
            // Translate to a code comparison.
            let (code_op, code) = match translate_code_pred(op, d.code_of(&lit), d.lower_bound_code(&lit)) {
                TranslatedPred::None => return,
                TranslatedPred::All => {
                    for i in 0..n {
                        out.set(i);
                    }
                    return;
                }
                TranslatedPred::Cmp(o, c) => (o, c),
            };
            cmp_codes_block(d.codes(), code_op, code, out);
        }
        IntEncoding::Delta(d) => {
            // Sorted run: every comparison reduces to at most two binary
            // searches and a contiguous bit-range fill — no scan at all.
            let n = d.len();
            match op {
                CmpOp::Eq => set_bit_range(out, d.lower_bound(lit), d.upper_bound(lit)),
                CmpOp::Ne => {
                    set_bit_range(out, 0, d.lower_bound(lit));
                    set_bit_range(out, d.upper_bound(lit), n);
                }
                CmpOp::Lt => set_bit_range(out, 0, d.lower_bound(lit)),
                CmpOp::Le => set_bit_range(out, 0, d.upper_bound(lit)),
                CmpOp::Gt => set_bit_range(out, d.upper_bound(lit), n),
                CmpOp::Ge => set_bit_range(out, d.lower_bound(lit), n),
            }
        }
    }
}

/// ORs the contiguous index range `[lo, hi)` into `out`, whole words at a
/// time (the sorted-run predicate path produces exactly such ranges).
fn set_bit_range(out: &mut BitSet, lo: usize, hi: usize) {
    if lo >= hi {
        return;
    }
    let (lw, hw) = (lo / 64, (hi - 1) / 64);
    for w in lw..=hw {
        let from = if w == lw { lo % 64 } else { 0 };
        let to = if w == hw { (hi - 1) % 64 } else { 63 };
        let bits = if to - from == 63 {
            u64::MAX
        } else {
            ((1u64 << (to - from + 1)) - 1) << from
        };
        out.or_word(w, bits);
    }
}

fn eval_str(enc: &StrEncoding, op: CmpOp, lit: &str, out: &mut BitSet) {
    match enc {
        StrEncoding::Raw(values) => {
            for (i, v) in values.iter().enumerate() {
                if op.matches(v.as_str().cmp(lit)) {
                    out.set(i);
                }
            }
        }
        StrEncoding::Dict(d) => {
            let n = d.len();
            let lit_owned = lit.to_string();
            let (code_op, code) = match translate_code_pred(
                op,
                d.code_of(&lit_owned),
                d.lower_bound_code(&lit_owned),
            ) {
                TranslatedPred::None => return,
                TranslatedPred::All => {
                    for i in 0..n {
                        out.set(i);
                    }
                    return;
                }
                TranslatedPred::Cmp(o, c) => (o, c),
            };
            cmp_codes_block(d.codes(), code_op, code, out);
        }
    }
}

/// Compares every packed code against `lit`, ORing hits into `out` a
/// 64-bit word at a time. Codes are unpacked 64 per block into a stack
/// buffer; the comparison loop is branch-free so it autovectorizes, and
/// hit bits land in `out` via a single `or_word` per block. Public so
/// property tests can pit it directly against decode-then-evaluate.
pub fn cmp_codes_block(codes: &BitPacked, op: CmpOp, lit: u64, out: &mut BitSet) {
    let n = codes.len();
    let mut buf = [0u64; 64];
    let mut start = 0usize;
    macro_rules! run {
        ($test:expr) => {
            while start < n {
                let take = (n - start).min(64);
                let block = &mut buf[..take];
                codes.unpack_block(start, block);
                let mut word = 0u64;
                for (o, &c) in block.iter().enumerate() {
                    let hit: bool = $test(c);
                    word |= (hit as u64) << o;
                }
                out.or_word(start / 64, word);
                start += take;
            }
        };
    }
    match op {
        CmpOp::Eq => run!(|c: u64| c == lit),
        CmpOp::Ne => run!(|c: u64| c != lit),
        CmpOp::Lt => run!(|c: u64| c < lit),
        CmpOp::Le => run!(|c: u64| c <= lit),
        CmpOp::Gt => run!(|c: u64| c > lit),
        CmpOp::Ge => run!(|c: u64| c >= lit),
    }
}

/// Decodes the dense row range `[start, start + len)` of an integer
/// encoding without touching the rest of the column — the workhorse
/// behind [`EncodedColumn::gather_range`] and the fused aggregate path.
fn decode_int_range(enc: &IntEncoding, start: usize, len: usize) -> Vec<i64> {
    let mut out = vec![0i64; len];
    decode_int_block(enc, start, &mut out);
    out
}

/// Non-allocating version of [`decode_int_range`]: decodes
/// `[start, start + out.len())` into a caller-provided buffer, so the
/// fused kernels can reuse one stack block across row groups.
fn decode_int_block(enc: &IntEncoding, start: usize, out: &mut [i64]) {
    let len = out.len();
    match enc {
        IntEncoding::Raw(values) => out.copy_from_slice(&values[start..start + len]),
        IntEncoding::For(f) => {
            let base = f.base();
            let mut codes = [0u64; 64];
            let mut done = 0usize;
            while done < len {
                let take = (len - done).min(64);
                f.packed().unpack_block(start + done, &mut codes[..take]);
                for (slot, &c) in out[done..done + take].iter_mut().zip(&codes[..take]) {
                    *slot = base.wrapping_add(c as i64);
                }
                done += take;
            }
        }
        IntEncoding::Rle(r) => {
            let mut skip = start;
            let mut filled = 0usize;
            for &(v, run) in r.runs() {
                let run = run as usize;
                if skip >= run {
                    skip -= run;
                    continue;
                }
                let avail = run - skip;
                skip = 0;
                let take = avail.min(len - filled);
                out[filled..filled + take].fill(v);
                filled += take;
                if filled == len {
                    break;
                }
            }
        }
        IntEncoding::Dict(d) => {
            let dict = d.dict();
            let mut codes = [0u64; 64];
            let mut done = 0usize;
            while done < len {
                let take = (len - done).min(64);
                d.codes().unpack_block(start + done, &mut codes[..take]);
                for (slot, &c) in out[done..done + take].iter_mut().zip(&codes[..take]) {
                    *slot = dict[c as usize];
                }
                done += take;
            }
        }
        IntEncoding::Delta(d) => d.decode_block(start, out),
    }
}

enum TranslatedPred {
    /// No row can match.
    None,
    /// Every row matches.
    All,
    /// Compare codes against this code with this operator.
    Cmp(CmpOp, u64),
}

/// Rewrites `value <op> literal` into code space for an order-preserving
/// dictionary. `exact` is the literal's code if present; `lb` is the number
/// of dictionary entries strictly less than the literal.
fn translate_code_pred(op: CmpOp, exact: Option<u64>, lb: u64) -> TranslatedPred {
    match (op, exact) {
        (CmpOp::Eq, Some(c)) => TranslatedPred::Cmp(CmpOp::Eq, c),
        (CmpOp::Eq, None) => TranslatedPred::None,
        (CmpOp::Ne, Some(c)) => TranslatedPred::Cmp(CmpOp::Ne, c),
        (CmpOp::Ne, None) => TranslatedPred::All,
        // value < literal  ⇔  code < lb (entries below the literal)
        (CmpOp::Lt, _) => {
            if lb == 0 {
                TranslatedPred::None
            } else {
                TranslatedPred::Cmp(CmpOp::Lt, lb)
            }
        }
        (CmpOp::Le, Some(c)) => TranslatedPred::Cmp(CmpOp::Le, c),
        (CmpOp::Le, None) => {
            if lb == 0 {
                TranslatedPred::None
            } else {
                TranslatedPred::Cmp(CmpOp::Lt, lb)
            }
        }
        // value > literal ⇔ code ≥ first entry greater than the literal
        (CmpOp::Gt, Some(c)) => TranslatedPred::Cmp(CmpOp::Gt, c),
        (CmpOp::Gt, None) => TranslatedPred::Cmp(CmpOp::Ge, lb),
        (CmpOp::Ge, _) => TranslatedPred::Cmp(CmpOp::Ge, lb),
    }
}

/// Metadata for one row group of a paged segment: the group's global row
/// range plus its own zone map. A group whose zone map disproves the
/// predicate is skipped without faulting any of its pages.
#[derive(Debug)]
pub struct RowGroupMeta {
    /// Global row offset of the group's first row.
    pub row_start: usize,
    /// Number of rows in the group.
    pub rows: usize,
    /// Zone map over just this group's rows.
    pub zone: ZoneMap,
}

/// Where a segment's encoded columns live: fully resident in memory, or
/// paged out to a checksummed column-page file and faulted in through the
/// buffer pool. Page `g * ncols + c` holds row group `g`'s column `c`.
#[derive(Debug)]
enum ColumnData {
    Resident(Vec<EncodedColumn>),
    Paged {
        pager: Arc<SegmentPager>,
        file: Arc<PageFile>,
        ncols: usize,
        groups: Vec<RowGroupMeta>,
    },
}

/// A borrowed (resident) or pinned (paged) reference to one encoded
/// column chunk. Dereferences to [`EncodedColumn`]; the pinned variant
/// keeps its buffer frame unevictable until dropped.
#[derive(Debug)]
pub enum ColumnRef<'a> {
    /// Column borrowed from a resident segment.
    Borrowed(&'a EncodedColumn),
    /// Column page pinned in the buffer pool.
    Pinned(PageGuard),
}

impl std::ops::Deref for ColumnRef<'_> {
    type Target = EncodedColumn;
    fn deref(&self) -> &EncodedColumn {
        match self {
            ColumnRef::Borrowed(c) => c,
            ColumnRef::Pinned(g) => g,
        }
    }
}

/// An immutable columnar segment.
#[derive(Debug)]
pub struct Segment {
    id: SegmentId,
    schema: SchemaRef,
    row_count: usize,
    data: ColumnData,
    zone_map: ZoneMap,
    /// Snapshots older than this timestamp must not see the segment's rows
    /// (they see them in the delta store instead). `0` for bulk loads.
    visible_from: Ts,
    /// MVCC delete stamps: row offset → stamp of the deleting transaction.
    deletes: RwLock<FxHashMap<u32, Stamp>>,
    /// True when this segment is a freeze-pass rewrite (cold data,
    /// re-encoded with the denser frozen encodings).
    frozen: bool,
    /// Per-row-group access heat: bumped (relaxed) by every scan that
    /// survives zone pruning into the group and by point row access,
    /// halved by the maintenance daemon. Purely advisory — no ordering.
    heat: Vec<AtomicU32>,
    /// Consecutive maintenance decays that observed zero total heat
    /// (the freeze pass's coldness signal).
    cold_ticks: AtomicU32,
    /// Scans served by this segment since it was frozen.
    frozen_scan_hits: AtomicU64,
}

fn heat_counters(groups: usize) -> Vec<AtomicU32> {
    (0..groups.max(1)).map(|_| AtomicU32::new(0)).collect()
}

impl Segment {
    /// Builds a segment from materialized rows, visible to snapshots at or
    /// after `visible_from` (use 0 for bulk loads).
    pub fn build_visible_from(
        id: SegmentId,
        schema: SchemaRef,
        rows: &[Row],
        visible_from: Ts,
    ) -> Result<Self> {
        Self::build_inner(id, schema, rows, visible_from, false)
    }

    /// Builds a fully resident segment from materialized rows (visible to
    /// all snapshots).
    pub fn build(id: SegmentId, schema: SchemaRef, rows: &[Row]) -> Result<Self> {
        Self::build_inner(id, schema, rows, 0, false)
    }

    fn build_inner(
        id: SegmentId,
        schema: SchemaRef,
        rows: &[Row],
        visible_from: Ts,
        frozen: bool,
    ) -> Result<Self> {
        // Transpose into per-column borrow vectors: the zone map and the
        // encoders only need to *read* the values, so no row is cloned.
        let cols = transpose_refs(&schema, rows)?;
        let zone_map = ZoneMap::build_refs(&cols);
        let mut columns = Vec::with_capacity(schema.len());
        for (c, field) in schema.fields().iter().enumerate() {
            columns.push(encode_column(field.data_type, &cols[c], frozen)?);
        }
        Ok(Segment {
            id,
            schema,
            row_count: rows.len(),
            data: ColumnData::Resident(columns),
            zone_map,
            visible_from,
            deletes: RwLock::new(FxHashMap::default()),
            frozen,
            heat: heat_counters(1),
            cold_ticks: AtomicU32::new(0),
            frozen_scan_hits: AtomicU64::new(0),
        })
    }

    /// Builds a *paged* segment: every row group's columns are encoded,
    /// framed, and written to a page file under the pager's root; only the
    /// zone maps, page directory, and delete stamps stay resident. Reads
    /// fault pages back in through the pager's buffer pool.
    pub fn build_paged(
        id: SegmentId,
        schema: SchemaRef,
        rows: &[Row],
        visible_from: Ts,
        pager: &Arc<SegmentPager>,
    ) -> Result<Self> {
        let cols = transpose_refs(&schema, rows)?;
        let zone_map = ZoneMap::build_refs(&cols);
        let ncols = schema.len();
        let n = rows.len();
        let group_rows = pager.rows_per_group();
        let mut writer = pager.create_file()?;
        let mut groups = Vec::with_capacity(n.div_ceil(group_rows.max(1)));
        let mut start = 0;
        while start < n {
            let len = group_rows.min(n - start);
            // One page per column, appended in column order so page
            // `g * ncols + c` addresses (group, column) directly. Encoded
            // chunks are dropped right after framing — peak memory is one
            // column chunk, not the segment.
            for (c, field) in schema.fields().iter().enumerate() {
                let enc = encode_column(field.data_type, &cols[c][start..start + len], false)?;
                writer.append_column(&enc)?;
            }
            let zone = ZoneMap {
                columns: cols
                    .iter()
                    .map(|c| ColumnZone::build_refs(&c[start..start + len]))
                    .collect(),
            };
            groups.push(RowGroupMeta {
                row_start: start,
                rows: len,
                zone,
            });
            start += len;
        }
        let file = Arc::new(writer.finish()?);
        let ngroups = groups.len();
        Ok(Segment {
            id,
            schema,
            row_count: n,
            data: ColumnData::Paged {
                pager: Arc::clone(pager),
                file,
                ncols,
                groups,
            },
            zone_map,
            visible_from,
            deletes: RwLock::new(FxHashMap::default()),
            frozen: false,
            heat: heat_counters(ngroups),
            cold_ticks: AtomicU32::new(0),
            frozen_scan_hits: AtomicU64::new(0),
        })
    }

    /// True when the segment's columns live in a page file rather than in
    /// memory.
    pub fn is_paged(&self) -> bool {
        matches!(self.data, ColumnData::Paged { .. })
    }

    /// Starts a streamed build (see [`SegmentBuilder`]): rows are pushed
    /// one at a time and paged builds flush each full row group to disk,
    /// so peak materialization is one row group instead of the segment.
    pub fn builder(
        id: SegmentId,
        schema: SchemaRef,
        visible_from: Ts,
        pager: Option<&Arc<SegmentPager>>,
    ) -> Result<SegmentBuilder> {
        let mode = match pager {
            Some(pager) => BuilderMode::Paged {
                writer: pager.create_file()?,
                pager: Arc::clone(pager),
                buf: Vec::new(),
                groups: Vec::new(),
                zone: ZoneMap::empty(schema.len()),
                row_count: 0,
            },
            None => BuilderMode::Resident { rows: Vec::new() },
        };
        Ok(SegmentBuilder {
            id,
            schema,
            visible_from,
            frozen: false,
            mode,
        })
    }

    /// The earliest snapshot timestamp that may see this segment's rows.
    pub fn visible_from(&self) -> Ts {
        self.visible_from
    }

    /// True when this segment is a freeze-pass rewrite.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Total access heat across all row groups.
    pub fn heat(&self) -> u64 {
        self.heat.iter().map(|h| h.load(Ordering::Relaxed) as u64).sum()
    }

    /// Access heat of row group `g`.
    pub fn group_heat(&self, g: usize) -> u32 {
        self.heat.get(g).map_or(0, |h| h.load(Ordering::Relaxed))
    }

    /// Maintenance decay: halves every group's heat counter and tracks how
    /// many consecutive decays observed zero total heat. Returns the total
    /// heat *before* this decay.
    pub fn decay_heat(&self) -> u64 {
        let mut total = 0u64;
        for h in &self.heat {
            let cur = h.load(Ordering::Relaxed);
            total += cur as u64;
            h.store(cur / 2, Ordering::Relaxed);
        }
        if total == 0 {
            self.cold_ticks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cold_ticks.store(0, Ordering::Relaxed);
        }
        total
    }

    /// Consecutive zero-heat maintenance decays (coldness signal).
    pub fn cold_ticks(&self) -> u32 {
        self.cold_ticks.load(Ordering::Relaxed)
    }

    /// Seeds access heat restored from a pre-restart snapshot, spread
    /// evenly across row groups (the snapshot is per-table: segment
    /// boundaries do not survive a WAL-replay rebuild, so per-group
    /// placement is unknowable). Resets `cold_ticks` — a segment that was
    /// hot before the crash must earn its coldness again under the decay
    /// schedule rather than freeze on the first post-restart tick.
    pub fn seed_heat(&self, total: u64) {
        if total == 0 {
            return;
        }
        let per_group = (total / self.heat.len() as u64).max(1).min(u32::MAX as u64) as u32;
        for h in &self.heat {
            h.fetch_add(per_group, Ordering::Relaxed);
        }
        self.cold_ticks.store(0, Ordering::Relaxed);
    }

    /// Scans served since this segment was frozen (0 for hot segments).
    pub fn frozen_scan_hits(&self) -> u64 {
        self.frozen_scan_hits.load(Ordering::Relaxed)
    }

    /// Whether a snapshot at `read_ts` may see this segment at all.
    #[inline]
    pub fn visible_to(&self, read_ts: Ts) -> bool {
        read_ts >= self.visible_from
    }

    /// The delete stamp of row `offset`, if any (conflict analysis).
    pub fn delete_stamp(&self, offset: u32) -> Option<Stamp> {
        self.deletes.read().get(&offset).copied()
    }

    /// True when any delete stamp is still pending (blocks compaction from
    /// dropping this segment).
    pub fn has_pending_deletes(&self) -> bool {
        self.deletes
            .read()
            .values()
            .any(|s| matches!(s, Stamp::Pending(_)))
    }

    /// The segment id.
    pub fn id(&self) -> SegmentId {
        self.id
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Total rows (including logically deleted ones).
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// The zone map.
    pub fn zone_map(&self) -> &ZoneMap {
        &self.zone_map
    }

    /// The encoded columns of a *resident* segment. Panics for paged
    /// segments, whose columns are only reachable through pins — use
    /// [`Segment::gather_columns`] / [`Segment::column_chunk`] instead.
    pub fn columns(&self) -> &[EncodedColumn] {
        match &self.data {
            ColumnData::Resident(cols) => cols,
            ColumnData::Paged { .. } => {
                panic!("columns() called on a paged segment; pin pages via gather_columns")
            }
        }
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        match &self.data {
            ColumnData::Resident(cols) => cols.len(),
            ColumnData::Paged { ncols, .. } => *ncols,
        }
    }

    /// Number of row groups (resident segments are one implicit group).
    pub fn group_count(&self) -> usize {
        match &self.data {
            ColumnData::Resident(_) => 1,
            ColumnData::Paged { groups, .. } => groups.len(),
        }
    }

    /// `(row_start, rows)` of group `g`.
    pub fn group_bounds(&self, g: usize) -> (usize, usize) {
        match &self.data {
            ColumnData::Resident(_) => (0, self.row_count),
            ColumnData::Paged { groups, .. } => (groups[g].row_start, groups[g].rows),
        }
    }

    /// The zone map guarding group `g` (the global map for resident
    /// segments, which have already passed it by the time groups are
    /// visited).
    pub fn group_zone(&self, g: usize) -> &ZoneMap {
        match &self.data {
            ColumnData::Resident(_) => &self.zone_map,
            ColumnData::Paged { groups, .. } => &groups[g].zone,
        }
    }

    /// Column `c` of group `g`: a plain borrow for resident segments, a
    /// pinned buffer-pool page for paged ones (faulted in on a miss).
    pub fn column_chunk(&self, g: usize, c: usize) -> Result<ColumnRef<'_>> {
        match &self.data {
            ColumnData::Resident(cols) => cols
                .get(c)
                .map(ColumnRef::Borrowed)
                .ok_or_else(|| DbError::ColumnNotFound(format!("ordinal {c}"))),
            ColumnData::Paged {
                pager,
                file,
                ncols,
                groups,
            } => {
                if c >= *ncols {
                    return Err(DbError::ColumnNotFound(format!("ordinal {c}")));
                }
                if g >= groups.len() {
                    return Err(DbError::InvalidArgument(format!(
                        "row group {g} out of range"
                    )));
                }
                let page = (g * ncols + c) as u32;
                Ok(ColumnRef::Pinned(pager.pin(file, page)?))
            }
        }
    }

    /// Encoding name of column `c` (diagnostics). For paged segments this
    /// pins the first group's page; empty paged segments report `"empty"`.
    pub fn column_encoding_name(&self, c: usize) -> Result<&'static str> {
        match &self.data {
            ColumnData::Resident(cols) => cols
                .get(c)
                .map(|col| col.encoding_name())
                .ok_or_else(|| DbError::ColumnNotFound(format!("ordinal {c}"))),
            ColumnData::Paged { ncols, groups, .. } => {
                if c >= *ncols {
                    return Err(DbError::ColumnNotFound(format!("ordinal {c}")));
                }
                if groups.is_empty() {
                    return Ok("empty");
                }
                Ok(self.column_chunk(0, c)?.encoding_name())
            }
        }
    }

    /// Compressed footprint in bytes: heap bytes for resident segments,
    /// on-disk payload bytes for paged ones (what faulting everything in
    /// would cost).
    pub fn size_bytes(&self) -> usize {
        match &self.data {
            ColumnData::Resident(cols) => cols.iter().map(|c| c.size_bytes()).sum(),
            ColumnData::Paged { file, .. } => file.payload_bytes() as usize,
        }
    }

    /// Number of delete stamps (committed or pending).
    pub fn delete_count(&self) -> usize {
        self.deletes.read().len()
    }

    /// Is row `offset` visibly deleted for snapshot (`read_ts`, `me`)?
    pub fn is_deleted(&self, offset: u32, read_ts: Ts, me: TxnId) -> bool {
        match self.deletes.read().get(&offset) {
            Some(Stamp::Committed(ts)) => *ts <= read_ts,
            Some(Stamp::Pending(t)) => *t == me,
            Some(Stamp::Infinity) => false,
            None => false,
        }
    }

    /// Marks row `offset` deleted by `me` (first-committer-wins).
    pub fn delete_row(&self, offset: u32, me: TxnId, begin_ts: Ts) -> Result<()> {
        if offset as usize >= self.row_count {
            return Err(DbError::InvalidArgument(format!(
                "offset {offset} out of range"
            )));
        }
        let mut deletes = self.deletes.write();
        match deletes.get(&offset) {
            Some(Stamp::Pending(t)) if *t == me => Ok(()), // idempotent
            Some(Stamp::Pending(_)) => {
                Err(DbError::WriteConflict("row delete in flight".into()))
            }
            Some(Stamp::Committed(ts)) if *ts > begin_ts => Err(DbError::WriteConflict(
                "row deleted after snapshot".into(),
            )),
            Some(Stamp::Committed(_)) => {
                Err(DbError::KeyNotFound("row already deleted".into()))
            }
            Some(Stamp::Infinity) | None => {
                deletes.insert(offset, Stamp::Pending(me));
                Ok(())
            }
        }
    }

    /// Re-registers a delete stamp at a new offset (compaction carries
    /// not-yet-globally-dead stamps into the rewritten segment).
    pub fn restore_delete_stamp(&self, offset: u32, stamp: Stamp) {
        self.deletes.write().insert(offset, stamp);
    }

    /// Commit hook: finalizes `me`'s pending delete stamps at `cts`.
    pub fn commit_deletes(&self, me: TxnId, cts: Ts) {
        let mut deletes = self.deletes.write();
        for stamp in deletes.values_mut() {
            if matches!(stamp, Stamp::Pending(t) if *t == me) {
                *stamp = Stamp::Committed(cts);
            }
        }
    }

    /// Abort hook: removes `me`'s pending delete stamps.
    pub fn abort_deletes(&self, me: TxnId) {
        self.deletes
            .write()
            .retain(|_, stamp| !matches!(stamp, Stamp::Pending(t) if *t == me));
    }

    /// Builds the visible-row selection for a snapshot: all rows, minus
    /// rows whose predicate bits fail, minus visibly deleted rows.
    /// Returns `None` when the zone map proves nothing matches.
    ///
    /// Evaluation is row-group-at-a-time, zone-map-first: a group whose
    /// zone map disproves the predicate contributes no rows *and faults no
    /// pages* — cold pruned groups stay cold.
    pub fn select(
        &self,
        pred: &ScanPredicate,
        read_ts: Ts,
        me: TxnId,
    ) -> Result<Option<BitSet>> {
        if !self.zone_map.may_match(pred) {
            return Ok(None);
        }
        // Validate ordinals up front so bad plans fail identically whether
        // or not any group survives pruning.
        let ncols = self.column_count();
        for p in &pred.conjuncts {
            if p.column >= ncols {
                return Err(DbError::ColumnNotFound(format!("ordinal {}", p.column)));
            }
        }
        if let Some(jf) = &pred.join {
            for &c in &jf.columns {
                if c >= ncols {
                    return Err(DbError::ColumnNotFound(format!("join filter ordinal {c}")));
                }
            }
        }
        if self.frozen {
            self.frozen_scan_hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut sel = BitSet::with_len(self.row_count);
        for g in 0..self.group_count() {
            let (start, rows) = self.group_bounds(g);
            if rows == 0 || !self.group_zone(g).may_match(pred) {
                continue;
            }
            // The group survived zone pruning: it is about to be touched.
            if let Some(h) = self.heat.get(g) {
                h.fetch_add(1, Ordering::Relaxed);
            }
            let mut local = BitSet::all_set(rows);
            for ColumnPredicate { column, op, value } in &pred.conjuncts {
                self.column_chunk(g, *column)?
                    .eval_predicate(*op, value, &mut local)?;
                if local.none_set() {
                    break;
                }
            }
            if local.none_set() {
                continue;
            }
            // Sideways join filter: drop rows that provably have no join
            // partner (NULL key, outside the build key envelope, or
            // missing from the build-side Bloom filter). Key columns are
            // pinned once per group, not once per row.
            if let Some(jf) = &pred.join {
                let mut keys: FxHashMap<usize, ColumnRef<'_>> = FxHashMap::default();
                for &c in &jf.columns {
                    if let std::collections::hash_map::Entry::Vacant(e) = keys.entry(c) {
                        e.insert(self.column_chunk(g, c)?);
                    }
                }
                for i in local.to_selection() {
                    if !jf.matches_at(|c| keys[&c].value_at(i as usize)) {
                        local.clear(i as usize);
                    }
                }
            }
            for i in local.iter_ones() {
                sel.set(start + i);
            }
        }
        // Apply delete stamps.
        let deletes = self.deletes.read();
        for (&offset, stamp) in deletes.iter() {
            let visible_delete = match stamp {
                Stamp::Committed(ts) => *ts <= read_ts,
                Stamp::Pending(t) => *t == me,
                Stamp::Infinity => false,
            };
            if visible_delete && (offset as usize) < sel.len() {
                sel.clear(offset as usize);
            }
        }
        Ok(Some(sel))
    }

    /// Scans the segment: predicate + visibility + projection, producing
    /// batches of at most `batch_size` rows. Batch boundaries depend only
    /// on the selection and `batch_size`, so paged and resident segments
    /// produce byte-identical output.
    pub fn scan(
        &self,
        projection: &[usize],
        pred: &ScanPredicate,
        read_ts: Ts,
        me: TxnId,
        batch_size: usize,
    ) -> Result<Vec<oltap_common::Batch>> {
        let sel = match self.select(pred, read_ts, me)? {
            Some(sel) => sel,
            None => return Ok(Vec::new()),
        };
        let indexes = sel.to_selection();
        let mut out = Vec::new();
        for chunk in indexes.chunks(batch_size.max(1)) {
            out.push(oltap_common::Batch::new(
                self.gather_columns(projection, chunk)?,
            )?);
        }
        Ok(out)
    }

    /// Gathers the projected columns at the given ascending global row
    /// indexes. Resident segments gather directly; paged segments split
    /// the indexes into per-group runs, pin each `(group, column)` page
    /// once per run, and concatenate the pieces.
    pub fn gather_columns(
        &self,
        projection: &[usize],
        indexes: &[u32],
    ) -> Result<Vec<ColumnVector>> {
        if indexes.is_empty() {
            return projection
                .iter()
                .map(|&c| {
                    self.schema
                        .fields()
                        .get(c)
                        .map(|f| ColumnVector::new(f.data_type))
                        .ok_or_else(|| DbError::ColumnNotFound(format!("ordinal {c}")))
                })
                .collect();
        }
        match &self.data {
            ColumnData::Resident(cols) => projection
                .iter()
                .map(|&c| {
                    cols.get(c)
                        .map(|col| col.gather(indexes))
                        .ok_or_else(|| DbError::ColumnNotFound(format!("ordinal {c}")))
                })
                .collect(),
            ColumnData::Paged { groups, ncols, .. } => {
                for &c in projection {
                    if c >= *ncols {
                        return Err(DbError::ColumnNotFound(format!("ordinal {c}")));
                    }
                }
                // Split the (ascending) index list into runs that fall
                // into the same row group.
                let mut runs: Vec<(usize, usize, usize)> = Vec::new(); // (group, lo, hi)
                let mut lo = 0;
                while lo < indexes.len() {
                    let row = indexes[lo] as usize;
                    let g = groups
                        .partition_point(|gr| gr.row_start + gr.rows <= row);
                    let (gs, gr) = (groups[g].row_start, groups[g].rows);
                    debug_assert!(row >= gs && row < gs + gr);
                    let mut hi = lo + 1;
                    while hi < indexes.len() && (indexes[hi] as usize) < gs + gr {
                        hi += 1;
                    }
                    runs.push((g, lo, hi));
                    lo = hi;
                }
                let mut pieces: Vec<Vec<ColumnVector>> =
                    vec![Vec::with_capacity(runs.len()); projection.len()];
                for &(g, lo, hi) in &runs {
                    let start = groups[g].row_start as u32;
                    let local: Vec<u32> =
                        indexes[lo..hi].iter().map(|&i| i - start).collect();
                    for (k, &c) in projection.iter().enumerate() {
                        pieces[k].push(self.column_chunk(g, c)?.gather(&local));
                    }
                }
                pieces.into_iter().map(concat_vectors).collect()
            }
        }
    }

    /// Materializes the full row at `offset` (no visibility check — caller
    /// is responsible). Faults the row's pages for paged segments.
    pub fn row_at(&self, offset: u32) -> Result<Row> {
        self.row_at_inner(offset, true)
    }

    /// `row_at` for maintenance-internal reads (freeze rewrites): does not
    /// bump heat counters, so a crashed rewrite cannot re-heat the segment
    /// it was trying to freeze.
    pub fn row_at_uncounted(&self, offset: u32) -> Result<Row> {
        self.row_at_inner(offset, false)
    }

    fn row_at_inner(&self, offset: u32, count_heat: bool) -> Result<Row> {
        let i = offset as usize;
        if i >= self.row_count {
            return Err(DbError::InvalidArgument(format!(
                "row offset {offset} out of range"
            )));
        }
        match &self.data {
            ColumnData::Resident(cols) => {
                if count_heat {
                    if let Some(h) = self.heat.first() {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(Row::new(cols.iter().map(|c| c.value_at(i)).collect()))
            }
            ColumnData::Paged { ncols, groups, .. } => {
                let g = groups.partition_point(|gr| gr.row_start + gr.rows <= i);
                if count_heat {
                    if let Some(h) = self.heat.get(g) {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let local = i - groups[g].row_start;
                let mut values = Vec::with_capacity(*ncols);
                for c in 0..*ncols {
                    values.push(self.column_chunk(g, c)?.value_at(local));
                }
                Ok(Row::new(values))
            }
        }
    }
}

/// A streamed, bounded-memory segment build. Rows are pushed one at a
/// time; in paged mode each full row group is encoded, written to the
/// page file, and dropped immediately, so building a segment of N rows
/// buffers at most one row group of materialized rows (plus one encoded
/// chunk) at any instant. Merge and compaction use this to avoid
/// materializing a whole segment's worth of `Row`s transiently.
///
/// Resident mode has no paging boundary to flush at; it buffers all rows
/// (the finished segment is fully in-memory anyway) and delegates to
/// [`Segment::build_visible_from`] so both paths produce identical
/// segments.
pub struct SegmentBuilder {
    id: SegmentId,
    schema: SchemaRef,
    visible_from: Ts,
    frozen: bool,
    mode: BuilderMode,
}

enum BuilderMode {
    Resident {
        rows: Vec<Row>,
    },
    Paged {
        pager: Arc<SegmentPager>,
        writer: PageFileWriter,
        buf: Vec<Row>,
        groups: Vec<RowGroupMeta>,
        zone: ZoneMap,
        row_count: usize,
    },
}

impl SegmentBuilder {
    /// Switches the build to the *frozen* encodings (exact-cost selection,
    /// sorted-run delta): what the freeze pass uses to rewrite cold data.
    pub fn frozen(mut self) -> Self {
        self.frozen = true;
        self
    }

    /// Appends one row; may flush a completed row group to the page file.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        match &mut self.mode {
            BuilderMode::Resident { rows } => {
                rows.push(row);
                Ok(())
            }
            BuilderMode::Paged { pager, buf, .. } => {
                buf.push(row);
                if buf.len() >= pager.rows_per_group() {
                    self.flush_group()?;
                }
                Ok(())
            }
        }
    }

    /// Rows pushed so far (their offsets in the finished segment).
    pub fn rows_pushed(&self) -> usize {
        match &self.mode {
            BuilderMode::Resident { rows } => rows.len(),
            BuilderMode::Paged { row_count, buf, .. } => row_count + buf.len(),
        }
    }

    /// Rows currently buffered in memory — bounded by one row group in
    /// paged mode (asserted by tests).
    pub fn buffered_rows(&self) -> usize {
        match &self.mode {
            BuilderMode::Resident { rows } => rows.len(),
            BuilderMode::Paged { buf, .. } => buf.len(),
        }
    }

    fn flush_group(&mut self) -> Result<()> {
        let BuilderMode::Paged {
            writer,
            buf,
            groups,
            zone,
            row_count,
            ..
        } = &mut self.mode
        else {
            return Ok(());
        };
        if buf.is_empty() {
            return Ok(());
        }
        let cols = transpose_refs(&self.schema, buf)?;
        for (c, field) in self.schema.fields().iter().enumerate() {
            let enc = encode_column(field.data_type, &cols[c], self.frozen)?;
            writer.append_column(&enc)?;
        }
        let group_zone = ZoneMap {
            columns: cols.iter().map(|c| ColumnZone::build_refs(c)).collect(),
        };
        zone.absorb(&group_zone);
        groups.push(RowGroupMeta {
            row_start: *row_count,
            rows: buf.len(),
            zone: group_zone,
        });
        *row_count += buf.len();
        buf.clear();
        Ok(())
    }

    /// Flushes the tail group and seals the segment.
    pub fn finish(mut self) -> Result<Segment> {
        match self.mode {
            BuilderMode::Resident { ref rows } => Segment::build_inner(
                self.id,
                Arc::clone(&self.schema),
                rows,
                self.visible_from,
                self.frozen,
            ),
            BuilderMode::Paged { .. } => {
                self.flush_group()?;
                let BuilderMode::Paged {
                    pager,
                    writer,
                    groups,
                    zone,
                    row_count,
                    ..
                } = self.mode
                else {
                    unreachable!("mode checked above");
                };
                let ncols = self.schema.len();
                let file = Arc::new(writer.finish()?);
                let ngroups = groups.len();
                Ok(Segment {
                    id: self.id,
                    schema: self.schema,
                    row_count,
                    data: ColumnData::Paged {
                        pager,
                        file,
                        ncols,
                        groups,
                    },
                    zone_map: zone,
                    visible_from: self.visible_from,
                    deletes: RwLock::new(FxHashMap::default()),
                    frozen: self.frozen,
                    heat: heat_counters(ngroups),
                    cold_ticks: AtomicU32::new(0),
                    frozen_scan_hits: AtomicU64::new(0),
                })
            }
        }
    }
}

/// Transposes rows into per-column `&Value` slices, checking arity. The
/// borrow-based transpose is what keeps [`Segment::build`] clone-free.
fn transpose_refs<'r>(schema: &SchemaRef, rows: &'r [Row]) -> Result<Vec<Vec<&'r Value>>> {
    let ncols = schema.len();
    let mut cols: Vec<Vec<&Value>> = vec![Vec::with_capacity(rows.len()); ncols];
    for row in rows {
        if row.len() != ncols {
            return Err(DbError::InvalidArgument(
                "row arity mismatch while building segment".into(),
            ));
        }
        for (c, v) in row.values().iter().enumerate() {
            cols[c].push(v);
        }
    }
    Ok(cols)
}

/// Concatenates per-run gather results for one column back into a single
/// vector. All pieces come from the same column, so a variant mismatch is
/// page corruption that slipped past the CRC — reported, not assumed.
fn concat_vectors(pieces: Vec<ColumnVector>) -> Result<ColumnVector> {
    let mut iter = pieces.into_iter();
    let Some(first) = iter.next() else {
        return Err(DbError::InvalidArgument(
            "concat of zero column pieces".into(),
        ));
    };
    let mut out = first;
    for piece in iter {
        append_vector(&mut out, piece)?;
    }
    Ok(out)
}

fn append_vector(out: &mut ColumnVector, piece: ColumnVector) -> Result<()> {
    // Merge validity first: absent validity means "all valid".
    fn merge_validity(
        out_validity: &mut Option<BitSet>,
        out_len: usize,
        piece_validity: Option<BitSet>,
        piece_len: usize,
    ) {
        match (out_validity.as_mut(), piece_validity) {
            (None, None) => {}
            (Some(v), None) => {
                for _ in 0..piece_len {
                    v.push(true);
                }
            }
            (None, Some(p)) => {
                let mut v = BitSet::all_set(out_len);
                for i in 0..piece_len {
                    v.push(p.get(i));
                }
                *out_validity = Some(v);
            }
            (Some(v), Some(p)) => {
                for i in 0..piece_len {
                    v.push(p.get(i));
                }
            }
        }
    }
    match (out, piece) {
        (
            ColumnVector::Int64 { values, validity },
            ColumnVector::Int64 {
                values: pv,
                validity: pval,
            },
        ) => {
            merge_validity(validity, values.len(), pval, pv.len());
            values.extend(pv);
        }
        (
            ColumnVector::Float64 { values, validity },
            ColumnVector::Float64 {
                values: pv,
                validity: pval,
            },
        ) => {
            merge_validity(validity, values.len(), pval, pv.len());
            values.extend(pv);
        }
        (
            ColumnVector::Utf8 { values, validity },
            ColumnVector::Utf8 {
                values: pv,
                validity: pval,
            },
        ) => {
            merge_validity(validity, values.len(), pval, pv.len());
            values.extend(pv);
        }
        (
            ColumnVector::Bool { values, validity },
            ColumnVector::Bool {
                values: pv,
                validity: pval,
            },
        ) => {
            merge_validity(validity, values.len(), pval, pv.len());
            for i in 0..pv.len() {
                values.push(pv.get(i));
            }
        }
        _ => {
            return Err(DbError::Corruption(
                "column page type mismatch across row groups".into(),
            ))
        }
    }
    Ok(())
}

fn encode_column(data_type: DataType, values: &[&Value], frozen: bool) -> Result<EncodedColumn> {
    let n = values.len();
    let mut validity: Option<BitSet> = None;
    let mark_null = |validity: &mut Option<BitSet>, i: usize| {
        validity
            .get_or_insert_with(|| BitSet::all_set(n))
            .clear(i);
    };
    Ok(match data_type {
        DataType::Int64 | DataType::Timestamp => {
            let mut ints = Vec::with_capacity(n);
            for (i, v) in values.iter().enumerate() {
                if v.is_null() {
                    mark_null(&mut validity, i);
                    ints.push(0);
                } else {
                    ints.push(v.as_int()?);
                }
            }
            EncodedColumn::Int {
                enc: if frozen {
                    IntEncoding::choose_frozen(&ints)
                } else {
                    IntEncoding::choose(&ints)
                },
                validity,
            }
        }
        DataType::Float64 => {
            let mut floats = Vec::with_capacity(n);
            for (i, v) in values.iter().enumerate() {
                if v.is_null() {
                    mark_null(&mut validity, i);
                    floats.push(0.0);
                } else {
                    floats.push(v.as_float()?);
                }
            }
            EncodedColumn::Float {
                values: floats,
                validity,
            }
        }
        DataType::Utf8 => {
            let mut strs = Vec::with_capacity(n);
            for (i, v) in values.iter().enumerate() {
                if v.is_null() {
                    mark_null(&mut validity, i);
                    strs.push(String::new());
                } else {
                    strs.push(v.as_str()?.to_string());
                }
            }
            EncodedColumn::Str {
                enc: StrEncoding::choose(&strs),
                validity,
            }
        }
        DataType::Bool => {
            let mut bits = BitSet::with_len(n);
            for (i, v) in values.iter().enumerate() {
                if v.is_null() {
                    mark_null(&mut validity, i);
                } else if v.as_bool()? {
                    bits.set(i);
                }
            }
            EncodedColumn::Bool {
                values: bits,
                validity,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferManager;
    use oltap_common::fault::FaultInjector;
    use oltap_common::row;
    use oltap_common::{Field, Schema};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::not_null("id", DataType::Int64),
            Field::new("city", DataType::Utf8),
            Field::new("temp", DataType::Float64),
        ]))
    }

    fn sample_rows() -> Vec<Row> {
        (0..1000)
            .map(|i| {
                row![
                    i as i64,
                    ["berlin", "munich", "cologne", "hamburg"][i % 4],
                    (i as f64) / 10.0
                ]
            })
            .collect()
    }

    fn sample_segment() -> Segment {
        Segment::build(SegmentId(1), schema(), &sample_rows()).unwrap()
    }

    fn test_pager(pool_bytes: u64, rows_per_group: usize) -> Arc<SegmentPager> {
        let root = std::env::temp_dir().join(format!(
            "oltap-seg-pages-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        SegmentPager::new(
            root,
            BufferManager::new(pool_bytes, None, FaultInjector::disabled()),
            rows_per_group,
            FaultInjector::disabled(),
        )
    }

    const NOBODY: TxnId = TxnId(u64::MAX);

    #[test]
    fn streamed_paged_build_matches_batch_build_with_bounded_buffer() {
        let rows = sample_rows();
        let group = 128;
        let batch_built =
            Segment::build_paged(SegmentId(1), schema(), &rows, 5, &test_pager(u64::MAX, group))
                .unwrap();
        let mut builder =
            Segment::builder(SegmentId(1), schema(), 5, Some(&test_pager(u64::MAX, group)))
                .unwrap();
        for (i, r) in rows.iter().cloned().enumerate() {
            builder.push_row(r).unwrap();
            assert!(
                builder.buffered_rows() <= group,
                "streamed build buffered {} rows at push {i} (group = {group})",
                builder.buffered_rows()
            );
        }
        let streamed = builder.finish().unwrap();
        assert_eq!(streamed.row_count(), batch_built.row_count());
        assert_eq!(streamed.visible_from(), batch_built.visible_from());
        for off in [0u32, 1, group as u32 - 1, group as u32, 777, 999] {
            assert_eq!(
                streamed.row_at(off).unwrap(),
                batch_built.row_at(off).unwrap(),
                "row {off} differs between streamed and batch build"
            );
        }
        // Zone maps agree, so predicate pruning is unchanged.
        let pred = ScanPredicate::single(0, CmpOp::Gt, Value::Int(990));
        let a = streamed.select(&pred, 10, NOBODY).unwrap();
        let b = batch_built.select(&pred, 10, NOBODY).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_resident_build_matches_batch_build() {
        let rows = sample_rows();
        let batch_built =
            Segment::build_visible_from(SegmentId(9), schema(), &rows, 3).unwrap();
        let mut builder = Segment::builder(SegmentId(9), schema(), 3, None).unwrap();
        for r in &rows {
            builder.push_row(r.clone()).unwrap();
        }
        let streamed = builder.finish().unwrap();
        assert_eq!(streamed.row_count(), batch_built.row_count());
        for off in [0u32, 499, 999] {
            assert_eq!(
                streamed.row_at(off).unwrap(),
                batch_built.row_at(off).unwrap()
            );
        }
    }

    #[test]
    fn build_and_read_back() {
        let s = sample_segment();
        assert_eq!(s.row_count(), 1000);
        assert_eq!(s.row_at(0).unwrap(), row![0i64, "berlin", 0.0f64]);
        assert_eq!(s.row_at(999).unwrap(), row![999i64, "hamburg", 99.9f64]);
    }

    #[test]
    fn compression_kicks_in() {
        let s = sample_segment();
        // 1000 rows * (8 + ~7 + 8) raw ≈ 23KB; encoded should be far less
        // for id (FOR 10-bit) and city (dict 2-bit).
        assert!(s.size_bytes() < 12_000, "size {}", s.size_bytes());
        assert_eq!(s.columns()[1].encoding_name(), "dict");
    }

    #[test]
    fn scan_with_int_predicate() {
        let s = sample_segment();
        let pred = ScanPredicate::all()
            .and(0, CmpOp::Ge, Value::Int(100))
            .and(0, CmpOp::Lt, Value::Int(110));
        let batches = s.scan(&[0, 1], &pred, 100, NOBODY, 4096).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(batches[0].row(0)[0], Value::Int(100));
    }

    #[test]
    fn scan_with_string_predicate() {
        let s = sample_segment();
        let pred = ScanPredicate::single(1, CmpOp::Eq, Value::Str("munich".into()));
        let batches = s.scan(&[0], &pred, 100, NOBODY, 4096).unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 250);
        // First munich row is id 1.
        assert_eq!(batches[0].row(0)[0], Value::Int(1));
    }

    #[test]
    fn string_range_predicate_on_dict() {
        let s = sample_segment();
        // city < "c" matches only berlin (250 rows).
        let pred = ScanPredicate::single(1, CmpOp::Lt, Value::Str("c".into()));
        let total: usize = s
            .scan(&[1], &pred, 100, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 250);
        // city >= "munich": only munich (literal present).
        let pred = ScanPredicate::single(1, CmpOp::Ge, Value::Str("munich".into()));
        let total: usize = s
            .scan(&[1], &pred, 100, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 250);
        // city > "dresden" (absent literal): hamburg + munich.
        let pred = ScanPredicate::single(1, CmpOp::Gt, Value::Str("dresden".into()));
        let total: usize = s
            .scan(&[1], &pred, 100, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn zone_map_skips_impossible_scans() {
        let s = sample_segment();
        let pred = ScanPredicate::single(0, CmpOp::Gt, Value::Int(10_000));
        assert!(s.select(&pred, 100, NOBODY).unwrap().is_none());
    }

    #[test]
    fn float_predicate() {
        let s = sample_segment();
        let pred = ScanPredicate::single(2, CmpOp::Ge, Value::Float(99.0));
        let total: usize = s
            .scan(&[2], &pred, 100, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 10); // 99.0 .. 99.9
    }

    #[test]
    fn mvcc_deletes_respect_snapshots() {
        let s = sample_segment();
        let t1 = TxnId(1);
        s.delete_row(5, t1, 100).unwrap();
        // Pending: invisible deletion for others, visible for deleter.
        assert!(!s.is_deleted(5, 100, NOBODY));
        assert!(s.is_deleted(5, 100, t1));
        s.commit_deletes(t1, 150);
        // Old snapshot still sees the row; new snapshot does not.
        assert!(!s.is_deleted(5, 149, NOBODY));
        assert!(s.is_deleted(5, 150, NOBODY));

        let pred = ScanPredicate::all();
        let old: usize = s
            .scan(&[0], &pred, 149, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        let new: usize = s
            .scan(&[0], &pred, 150, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(old, 1000);
        assert_eq!(new, 999);
    }

    #[test]
    fn delete_conflicts() {
        let s = sample_segment();
        let (t1, t2) = (TxnId(1), TxnId(2));
        s.delete_row(7, t1, 100).unwrap();
        assert!(matches!(
            s.delete_row(7, t2, 100),
            Err(DbError::WriteConflict(_))
        ));
        s.commit_deletes(t1, 120);
        // FCW: t2's snapshot (100) predates the delete commit.
        assert!(matches!(
            s.delete_row(7, t2, 100),
            Err(DbError::WriteConflict(_))
        ));
        // A fresh snapshot sees it already deleted.
        assert!(matches!(
            s.delete_row(7, t2, 120),
            Err(DbError::KeyNotFound(_))
        ));
    }

    #[test]
    fn abort_restores_row() {
        let s = sample_segment();
        let t1 = TxnId(1);
        s.delete_row(3, t1, 100).unwrap();
        s.abort_deletes(t1);
        assert!(!s.is_deleted(3, 200, NOBODY));
        assert_eq!(s.delete_count(), 0);
    }

    #[test]
    fn nulls_in_segment() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                Row::new(vec![if i % 2 == 0 {
                    Value::Null
                } else {
                    Value::Int(i)
                }])
            })
            .collect();
        let s = Segment::build(SegmentId(2), schema, &rows).unwrap();
        assert_eq!(s.row_at(0).unwrap(), Row::new(vec![Value::Null]));
        assert_eq!(s.row_at(1).unwrap(), row![1i64]);
        // NULL rows never match predicates.
        let pred = ScanPredicate::single(0, CmpOp::Ge, Value::Int(0));
        let total: usize = s
            .scan(&[0], &pred, 10, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn ne_predicate_on_dict() {
        let s = sample_segment();
        let pred = ScanPredicate::single(1, CmpOp::Ne, Value::Str("berlin".into()));
        let total: usize = s
            .scan(&[1], &pred, 100, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 750);
        // Ne with absent literal matches everything.
        let pred = ScanPredicate::single(1, CmpOp::Ne, Value::Str("zzz".into()));
        let total: usize = s
            .scan(&[1], &pred, 100, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn empty_segment() {
        let s = Segment::build(SegmentId(3), schema(), &[]).unwrap();
        assert_eq!(s.row_count(), 0);
        let batches = s
            .scan(&[0], &ScanPredicate::all(), 10, NOBODY, 4096)
            .unwrap();
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 0);
    }

    /// Every scan outcome must be byte-identical between a resident and a
    /// paged build of the same rows — including under a pool far smaller
    /// than the data, which forces eviction and re-faulting mid-scan.
    #[test]
    fn paged_scans_match_resident_byte_for_byte() {
        let rows = sample_rows();
        let resident = sample_segment();
        // ~10 groups of 100 rows; pool fits only a handful of pages.
        let pager = test_pager(4096, 100);
        let paged =
            Segment::build_paged(SegmentId(1), schema(), &rows, 0, &pager).unwrap();
        assert!(paged.is_paged());
        assert_eq!(paged.group_count(), 10);

        let preds = [
            ScanPredicate::all(),
            ScanPredicate::all()
                .and(0, CmpOp::Ge, Value::Int(100))
                .and(0, CmpOp::Lt, Value::Int(110)),
            ScanPredicate::single(1, CmpOp::Eq, Value::Str("munich".into())),
            ScanPredicate::single(1, CmpOp::Lt, Value::Str("c".into())),
            ScanPredicate::single(2, CmpOp::Ge, Value::Float(99.0)),
            ScanPredicate::single(0, CmpOp::Gt, Value::Int(10_000)),
        ];
        for (k, pred) in preds.iter().enumerate() {
            for batch_size in [7usize, 128, 4096] {
                let a = resident.scan(&[0, 1, 2], pred, 100, NOBODY, batch_size).unwrap();
                let b = paged.scan(&[0, 1, 2], pred, 100, NOBODY, batch_size).unwrap();
                assert_eq!(a.len(), b.len(), "pred {k} batch {batch_size}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_rows(), y.to_rows(), "pred {k} batch {batch_size}");
                }
            }
        }
        // Eviction actually happened under the tiny pool.
        assert!(pager.buffer().stats().evictions > 0);
        // Point reads agree too.
        for off in [0u32, 99, 100, 500, 999] {
            assert_eq!(resident.row_at(off).unwrap(), paged.row_at(off).unwrap());
        }
    }

    /// Zone-pruned row groups must fault zero pages: a predicate touching
    /// only the last group's id range reads only that group's pages.
    #[test]
    fn zone_pruned_groups_fault_no_pages() {
        let rows = sample_rows(); // id is 0..1000, sorted → disjoint group zones
        let pager = test_pager(u64::MAX, 100);
        let paged =
            Segment::build_paged(SegmentId(1), schema(), &rows, 0, &pager).unwrap();
        let pred = ScanPredicate::single(0, CmpOp::Ge, Value::Int(950));
        let total: usize = paged
            .scan(&[0], &pred, 100, NOBODY, 4096)
            .unwrap()
            .iter()
            .map(|b| b.len())
            .sum();
        assert_eq!(total, 50);
        // Only the last group may fault: its id column for the predicate
        // (the projection re-pins the same resident page).
        let misses = pager.buffer().stats().misses;
        assert_eq!(misses, 1, "pruned groups faulted pages");
    }

    #[test]
    fn paged_deletes_and_nulls_match_resident() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64)]));
        let rows: Vec<Row> = (0..100)
            .map(|i| {
                Row::new(vec![if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Int(i)
                }])
            })
            .collect();
        let resident = Segment::build(SegmentId(2), Arc::clone(&schema), &rows).unwrap();
        let pager = test_pager(u64::MAX, 17);
        let paged =
            Segment::build_paged(SegmentId(2), Arc::clone(&schema), &rows, 0, &pager).unwrap();
        let t1 = TxnId(1);
        for s in [&resident, &paged] {
            s.delete_row(10, t1, 100).unwrap();
            s.delete_row(55, t1, 100).unwrap();
            s.commit_deletes(t1, 120);
        }
        let pred = ScanPredicate::single(0, CmpOp::Ge, Value::Int(0));
        for read_ts in [119u64, 120, 200] {
            let a = resident.scan(&[0], &pred, read_ts, NOBODY, 13).unwrap();
            let b = paged.scan(&[0], &pred, read_ts, NOBODY, 13).unwrap();
            let ra: Vec<Row> = a.iter().flat_map(|x| x.to_rows()).collect();
            let rb: Vec<Row> = b.iter().flat_map(|x| x.to_rows()).collect();
            assert_eq!(ra, rb, "read_ts {read_ts}");
        }
        assert_eq!(resident.row_at(0).unwrap(), paged.row_at(0).unwrap());
    }

    #[test]
    fn paged_empty_segment() {
        let pager = test_pager(u64::MAX, 64);
        let s = Segment::build_paged(SegmentId(3), schema(), &[], 0, &pager).unwrap();
        assert_eq!(s.row_count(), 0);
        assert_eq!(s.group_count(), 0);
        assert!(s
            .scan(&[0], &ScanPredicate::all(), 10, NOBODY, 4096)
            .unwrap()
            .is_empty());
        assert_eq!(s.column_encoding_name(0).unwrap(), "empty");
    }
}
