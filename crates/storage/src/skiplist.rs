//! An insert-only concurrent skip list.
//!
//! This is the primary-key index of the row store, modeled on the lock-free
//! skip list MemSQL uses for its in-DRAM row store (paper §3, \[26\]).
//! Simplifications that keep it sound safe-ish Rust:
//!
//! * **Insert-only structure.** Logical deletes happen in the MVCC version
//!   chains that the list's values point at; index nodes are never unlinked.
//!   This removes the need for marked pointers and hazard-pointer/epoch
//!   reclamation — a node, once published, lives until the list is dropped,
//!   so readers may traverse raw pointers freely.
//! * **Lock-free reads and inserts.** Lookups are wait-free traversals;
//!   inserts link with compare-and-swap per level (bottom-up), retrying
//!   against the refreshed predecessor on contention — the classic
//!   Fraser-style insert without the deletion half.
//!
//! The `unsafe` blocks are confined to dereferencing node pointers, justified
//! by the no-reclamation invariant above.

use std::marker::PhantomData;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

const MAX_HEIGHT: usize = 16;

struct Node<K, V> {
    /// `None` only for the head sentinel (conceptually -infinity).
    key: Option<K>,
    value: Option<V>,
    next: Vec<AtomicPtr<Node<K, V>>>,
}

impl<K, V> Node<K, V> {
    fn new(key: K, value: V, height: usize) -> Box<Self> {
        Box::new(Node {
            key: Some(key),
            value: Some(value),
            next: (0..height).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
        })
    }

    fn head() -> Box<Self> {
        Box::new(Node {
            key: None,
            value: None,
            next: (0..MAX_HEIGHT)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
        })
    }
}

/// A concurrent ordered map with lock-free reads and inserts and no
/// physical deletion (see module docs).
pub struct SkipList<K, V> {
    head: *mut Node<K, V>,
    len: AtomicUsize,
    rng: AtomicU64,
    _marker: PhantomData<(K, V)>,
}

// Safety: all shared-state mutation goes through atomics; nodes are never
// freed while the list is shared (only in Drop, which requires exclusive
// access).
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipList<K, V> {}
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipList<K, V> {}

impl<K: Ord, V> Default for SkipList<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> SkipList<K, V> {
    /// An empty list.
    pub fn new() -> Self {
        SkipList {
            head: Box::into_raw(Node::head()),
            len: AtomicUsize::new(0),
            rng: AtomicU64::new(0x9E37_79B9_7F4A_7C15),
            _marker: PhantomData,
        }
    }

    /// Number of inserted keys.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn random_height(&self) -> usize {
        // xorshift64* advanced atomically; geometric(1/2) capped height.
        let mut h = 1;
        let r = self
            .rng
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |mut x| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                Some(x)
            })
            .unwrap();
        let mut bits = r;
        while bits & 1 == 1 && h < MAX_HEIGHT {
            h += 1;
            bits >>= 1;
        }
        h
    }

    /// Finds, for each level, the last node with key < `key` (preds) and its
    /// successor (succs). Returns whether an exact match exists (it is then
    /// `succs\[0\]`).
    fn find(
        &self,
        key: &K,
        preds: &mut [*mut Node<K, V>; MAX_HEIGHT],
        succs: &mut [*mut Node<K, V>; MAX_HEIGHT],
    ) -> bool {
        let mut pred = self.head;
        for level in (0..MAX_HEIGHT).rev() {
            // Safety: pred is head or a published node; never freed.
            let mut curr = unsafe { (&*pred).next[level].load(Ordering::Acquire) };
            loop {
                if curr.is_null() {
                    break;
                }
                let curr_key = unsafe { (&*curr).key.as_ref().unwrap() };
                if curr_key < key {
                    pred = curr;
                    curr = unsafe { (&*pred).next[level].load(Ordering::Acquire) };
                } else {
                    break;
                }
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        let found = !succs[0].is_null()
            && unsafe { (&*succs[0]).key.as_ref().unwrap() } == key;
        found
    }

    /// Looks up `key`, returning a reference to its value.
    ///
    /// The reference is valid for the lifetime of the list borrow because
    /// nodes and their values are never dropped while the list is alive.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut pred = self.head;
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = unsafe { (&*pred).next[level].load(Ordering::Acquire) };
            while !curr.is_null() {
                let curr_key = unsafe { (&*curr).key.as_ref().unwrap() };
                match curr_key.cmp(key) {
                    std::cmp::Ordering::Less => {
                        pred = curr;
                        curr = unsafe { (&*pred).next[level].load(Ordering::Acquire) };
                    }
                    std::cmp::Ordering::Equal => {
                        return unsafe { (&*curr).value.as_ref() };
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
        }
        None
    }

    /// True when `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value` if absent. On success returns `Ok(&V)` with
    /// the stored value; if the key already exists, returns `Err(&V)` with
    /// the *existing* value (the caller's value is dropped).
    pub fn insert(&self, key: K, value: V) -> Result<&V, &V> {
        let mut preds = [ptr::null_mut(); MAX_HEIGHT];
        let mut succs = [ptr::null_mut(); MAX_HEIGHT];
        let height = self.random_height();

        // Fast path pre-check; also primes preds/succs.
        if self.find(&key, &mut preds, &mut succs) {
            return Err(unsafe { (&*succs[0]).value.as_ref().unwrap() });
        }

        let node = Box::into_raw(Node::new(key, value, height));
        loop {
            // Point the new node at the current successors.
            for (level, &succ) in succs.iter().enumerate().take(height) {
                unsafe { (&*node).next[level].store(succ, Ordering::Relaxed) };
            }
            // Publish at level 0; this is the linearization point.
            let pred0 = preds[0];
            match unsafe {
                (&*pred0).next[0].compare_exchange(
                    succs[0],
                    node,
                    Ordering::Release,
                    Ordering::Acquire,
                )
            } {
                Ok(_) => break,
                Err(_) => {
                    // Contention: re-find. The key may now exist.
                    let node_key = unsafe { (&*node).key.as_ref().unwrap() };
                    if self.find(node_key, &mut preds, &mut succs) {
                        // Reclaim the unpublished node (safe: never shared).
                        let existing = succs[0];
                        unsafe { drop(Box::from_raw(node)) };
                        return Err(unsafe { (&*existing).value.as_ref().unwrap() });
                    }
                }
            }
        }

        // Link upper levels; retry each against fresh predecessors.
        for level in 1..height {
            loop {
                let pred = preds[level];
                let succ = succs[level];
                unsafe { (&*node).next[level].store(succ, Ordering::Relaxed) };
                let ok = unsafe {
                    (&*pred).next[level]
                        .compare_exchange(succ, node, Ordering::Release, Ordering::Acquire)
                        .is_ok()
                };
                if ok {
                    break;
                }
                let node_key = unsafe { (&*node).key.as_ref().unwrap() };
                self.find(node_key, &mut preds, &mut succs);
                // If someone linked a *different* node with our key we would
                // have seen it before level-0 publication; from here on the
                // found node at level 0 is ourselves, so just retry.
            }
        }

        self.len.fetch_add(1, Ordering::Relaxed);
        Ok(unsafe { (&*node).value.as_ref().unwrap() })
    }

    /// Iterates entries in key order, starting at the first key ≥ `start`
    /// (or the beginning when `start` is `None`).
    pub fn iter_from(&self, start: Option<&K>) -> Iter<'_, K, V> {
        let first = match start {
            None => unsafe { (&*self.head).next[0].load(Ordering::Acquire) },
            Some(key) => {
                let mut preds = [ptr::null_mut(); MAX_HEIGHT];
                let mut succs = [ptr::null_mut(); MAX_HEIGHT];
                self.find(key, &mut preds, &mut succs);
                succs[0]
            }
        };
        Iter {
            curr: first,
            _list: PhantomData,
        }
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        self.iter_from(None)
    }
}

impl<K, V> Drop for SkipList<K, V> {
    fn drop(&mut self) {
        // Exclusive access: free the level-0 chain (which owns every node).
        let mut curr = unsafe { (&*self.head).next[0].load(Ordering::Relaxed) };
        while !curr.is_null() {
            let next = unsafe { (&*curr).next[0].load(Ordering::Relaxed) };
            unsafe { drop(Box::from_raw(curr)) };
            curr = next;
        }
        unsafe { drop(Box::from_raw(self.head)) };
    }
}

/// Ordered iterator over a [`SkipList`].
pub struct Iter<'a, K, V> {
    curr: *mut Node<K, V>,
    _list: PhantomData<&'a SkipList<K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.curr.is_null() {
            return None;
        }
        // Safety: nodes live as long as the list borrow `'a`.
        let node = unsafe { &*self.curr };
        self.curr = node.next[0].load(Ordering::Acquire);
        Some((node.key.as_ref().unwrap(), node.value.as_ref().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn insert_get_basic() {
        let l: SkipList<i64, String> = SkipList::new();
        assert!(l.is_empty());
        l.insert(5, "five".into()).unwrap();
        l.insert(1, "one".into()).unwrap();
        l.insert(9, "nine".into()).unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l.get(&5).unwrap(), "five");
        assert_eq!(l.get(&1).unwrap(), "one");
        assert!(l.get(&7).is_none());
    }

    #[test]
    fn duplicate_insert_returns_existing() {
        let l: SkipList<i64, i64> = SkipList::new();
        l.insert(1, 100).unwrap();
        match l.insert(1, 200) {
            Err(existing) => assert_eq!(*existing, 100),
            Ok(_) => panic!("duplicate accepted"),
        }
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let l: SkipList<i64, ()> = SkipList::new();
        let keys = [42, 7, 99, 1, 55, 23, 68, 3];
        for k in keys {
            l.insert(k, ()).unwrap();
        }
        let got: Vec<i64> = l.iter().map(|(k, _)| *k).collect();
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn range_iteration_from_key() {
        let l: SkipList<i64, ()> = SkipList::new();
        for k in 0..100 {
            l.insert(k * 2, ()).unwrap(); // evens
        }
        // Start at 51 (absent): first yielded is 52.
        let got: Vec<i64> = l.iter_from(Some(&51)).take(3).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![52, 54, 56]);
        // Start at an existing key.
        let got: Vec<i64> = l.iter_from(Some(&50)).take(2).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![50, 52]);
    }

    #[test]
    fn matches_btreemap_model() {
        let l: SkipList<i64, i64> = SkipList::new();
        let mut model = BTreeMap::new();
        let mut x = 12345u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 500) as i64;
            let v = x as i64;
            if l.insert(k, v).is_ok() {
                model.insert(k, v);
            }
        }
        assert_eq!(l.len(), model.len());
        let got: Vec<(i64, i64)> = l.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(i64, i64)> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn concurrent_inserts_distinct_keys() {
        let l: Arc<SkipList<i64, i64>> = Arc::new(SkipList::new());
        let threads = 8;
        let per = 2000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = (i * threads + t) as i64;
                        l.insert(k, k * 10).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(l.len(), (threads * per) as usize);
        // Every key present, order intact.
        let keys: Vec<i64> = l.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), (threads * per) as usize);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*l.get(&12345).unwrap(), 123450);
    }

    #[test]
    fn concurrent_inserts_contended_keys() {
        // All threads fight over the same small key space; exactly one
        // winner per key.
        let l: Arc<SkipList<i64, usize>> = Arc::new(SkipList::new());
        let threads = 8;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut wins = 0;
                    for k in 0..1000i64 {
                        if l.insert(k, t).is_ok() {
                            wins += 1;
                        }
                    }
                    wins
                })
            })
            .collect();
        let total_wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_wins, 1000);
        assert_eq!(l.len(), 1000);
        let keys: Vec<i64> = l.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_readers_during_inserts() {
        let l: Arc<SkipList<i64, i64>> = Arc::new(SkipList::new());
        let writer = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                for k in 0..20000i64 {
                    l.insert(k, k).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    for _ in 0..50 {
                        // Iteration must always be sorted, never crash.
                        let keys: Vec<i64> = l.iter().map(|(k, _)| *k).collect();
                        assert!(keys.windows(2).all(|w| w[0] < w[1]));
                        seen = seen.max(keys.len());
                    }
                    seen
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(l.len(), 20000);
    }

    #[test]
    fn string_keys() {
        let l: SkipList<String, i32> = SkipList::new();
        l.insert("banana".into(), 2).unwrap();
        l.insert("apple".into(), 1).unwrap();
        l.insert("cherry".into(), 3).unwrap();
        let got: Vec<String> = l.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(got, vec!["apple", "banana", "cherry"]);
    }

    #[test]
    fn drop_frees_everything() {
        // Smoke test under miri-like scrutiny: building and dropping a
        // large list must not leak or double-free (exercised by the
        // allocator in debug builds).
        for _ in 0..10 {
            let l: SkipList<i64, Vec<u8>> = SkipList::new();
            for k in 0..1000 {
                l.insert(k, vec![0u8; 64]).unwrap();
            }
        }
    }
}
