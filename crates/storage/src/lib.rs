//! # oltap-storage
//!
//! The storage engines of `oltapdb`, covering the physical-design spectrum
//! the tutorial's §1 lays out ("row-based, column-oriented, or hybrid"):
//!
//! * [`rowstore`] — an OLTP row store: a lock-free insert-only concurrent
//!   [`skiplist`] indexing MVCC version chains (MemSQL-style).
//! * [`segment`] + [`encoding`] + [`zonemap`] — the compressed, immutable,
//!   zone-mapped columnar "main" store (HANA / DB2 BLU / Oracle DBIM
//!   style), with predicate evaluation over compressed codes.
//! * [`delta`] — the delta + main architecture with an MVCC-safe merge
//!   (differential files / LSM lineage, §4).
//! * [`dual`] — dual-format tables keeping a row store and a columnar
//!   image simultaneously consistent via an invalidation journal
//!   (Oracle Database In-Memory style, §3).
//! * [`predicate`] — pushed-down scan predicates shared by all formats.
//! * [`spill`] — length-framed spill files under per-query scratch dirs,
//!   the disk half of the executor's memory-bounded operators.
//! * [`pagefile`] + [`buffer`] — checksummed on-disk column pages behind
//!   a governed, clock-evicted buffer pool, making segments
//!   larger-than-memory (§2's "operational analytics under one memory
//!   hierarchy").

pub mod buffer;
pub mod delta;
pub mod dual;
pub mod encoding;
pub mod pagefile;
pub mod predicate;
pub mod rowstore;
pub mod segment;
pub mod skiplist;
pub mod spill;
pub mod zonemap;

pub use buffer::{BufferManager, BufferStats, PageGuard, PageKey, SegmentPager};
pub use delta::{DeltaMainTable, FreezeStats, HeatStats, MergeStats, TableSizes};
pub use dual::DualFormatTable;
pub use pagefile::{purge_page_root, PageFile, PageFileWriter};
pub use predicate::{CmpOp, ColumnPredicate, JoinFilter, ScanPredicate};
pub use rowstore::RowStore;
pub use segment::Segment;
pub use skiplist::SkipList;
pub use spill::{purge_spill_root, SpillDir, SpillHandle, SpillReader, SpillWriter};
pub use zonemap::{ColumnZone, ZoneMap};
