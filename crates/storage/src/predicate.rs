//! Scan predicates that storage can evaluate natively.
//!
//! The executor lowers the pushable part of a WHERE clause into a
//! conjunction of simple column-vs-literal comparisons. The column store
//! uses them twice: against zone maps to skip whole segments (Oracle's
//! "in-memory storage indexes") and against compressed codes inside a
//! segment (the SIMD-scan idea).

//!
//! On top of the literal conjuncts, a scan can carry a [`JoinFilter`]: a
//! Bloom filter + key min/max derived from a hash-join build side and
//! pushed *sideways* into the probe-side scan (semi-join reduction). The
//! filter has no false negatives, so applying it before the join is
//! semantics-preserving for inner joins; false positives are re-checked
//! exactly by the join probe.

use oltap_common::bloom::BlockedBloom;
use oltap_common::hash::{join_hash_combine, join_hash_value, JOIN_KEY_SEED};
use oltap_common::{Result, Row, Value};
use std::sync::Arc;

/// Comparison operator of a simple predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    #[inline]
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One `column <op> literal` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// Ordinal of the column in the table schema.
    pub column: usize,
    /// The comparison.
    pub op: CmpOp,
    /// The literal. NULL never matches (SQL three-valued logic collapses
    /// to false for filtering).
    pub value: Value,
}

impl ColumnPredicate {
    /// Builds a predicate.
    pub fn new(column: usize, op: CmpOp, value: Value) -> Self {
        ColumnPredicate { column, op, value }
    }

    /// Evaluates against a materialized row.
    pub fn matches_row(&self, row: &Row) -> bool {
        let v = &row[self.column];
        if v.is_null() || self.value.is_null() {
            return false;
        }
        self.op.matches(v.cmp(&self.value))
    }
}

/// A semi-join reduction filter derived from a hash-join build side.
///
/// `columns[k]` is the table ordinal of the probe-side key column that is
/// positionally equi-joined with build key column `k`. A row can only
/// find a join partner when every key is non-NULL, every key falls inside
/// the build side's `[min, max]` envelope, and the combined key hash hits
/// the Bloom filter. All three checks are conservative (no false
/// negatives), so rows they reject are provably partnerless.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinFilter {
    /// Probe-side table ordinals of the join key columns.
    pub columns: Vec<usize>,
    /// Min/max of each build-side key column (None when no build row has
    /// a non-NULL key in that column).
    pub ranges: Vec<Option<(Value, Value)>>,
    /// Blocked Bloom filter over the combined key hash of each build row.
    pub bloom: Arc<BlockedBloom>,
    /// Build-side row count; 0 means nothing can ever match.
    pub build_rows: usize,
}

impl JoinFilter {
    /// Evaluates the filter against one row, fetching key values through
    /// `value_at(table_ordinal)`.
    pub fn matches_at(&self, mut value_at: impl FnMut(usize) -> Value) -> bool {
        if self.build_rows == 0 {
            return false;
        }
        let mut h = JOIN_KEY_SEED;
        for (k, &c) in self.columns.iter().enumerate() {
            let v = value_at(c);
            if v.is_null() {
                return false; // NULL keys never join.
            }
            if let Some(Some((lo, hi))) = self.ranges.get(k) {
                if v < *lo || v > *hi {
                    return false;
                }
            }
            h = join_hash_combine(h, join_hash_value(&v));
        }
        self.bloom.contains(h)
    }

    /// Evaluates the filter against a materialized row.
    pub fn matches_row(&self, row: &Row) -> bool {
        self.matches_at(|c| row[c].clone())
    }
}

/// A conjunction of simple predicates (empty = always true), optionally
/// carrying a sideways [`JoinFilter`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanPredicate {
    /// The conjuncts.
    pub conjuncts: Vec<ColumnPredicate>,
    /// Optional join pre-filter pushed in from a hash-join build side.
    pub join: Option<JoinFilter>,
}

impl ScanPredicate {
    /// The always-true predicate.
    pub fn all() -> Self {
        ScanPredicate::default()
    }

    /// A single-conjunct predicate.
    pub fn single(column: usize, op: CmpOp, value: Value) -> Self {
        ScanPredicate {
            conjuncts: vec![ColumnPredicate::new(column, op, value)],
            join: None,
        }
    }

    /// Adds a conjunct (builder style).
    pub fn and(mut self, column: usize, op: CmpOp, value: Value) -> Self {
        self.conjuncts.push(ColumnPredicate::new(column, op, value));
        self
    }

    /// Attaches a sideways join filter (builder style).
    pub fn with_join(mut self, filter: JoinFilter) -> Self {
        self.join = Some(filter);
        self
    }

    /// True when there are no conjuncts and no join filter.
    pub fn is_trivial(&self) -> bool {
        self.conjuncts.is_empty() && self.join.is_none()
    }

    /// Evaluates against a materialized row.
    pub fn matches_row(&self, row: &Row) -> bool {
        self.conjuncts.iter().all(|c| c.matches_row(row))
            && self.join.as_ref().is_none_or(|j| j.matches_row(row))
    }

    /// Checks that referenced columns exist and literals are comparable
    /// with the column type.
    pub fn validate(&self, schema: &oltap_common::Schema) -> Result<()> {
        for c in &self.conjuncts {
            if c.column >= schema.len() {
                return Err(oltap_common::DbError::ColumnNotFound(format!(
                    "ordinal {}",
                    c.column
                )));
            }
            if !c.value.is_null() {
                let field = schema.field(c.column);
                // Numeric cross-comparisons (Int vs Float) are permitted.
                let ok = match (field.data_type, c.value.data_type()) {
                    (_, None) => true,
                    (a, Some(b)) if a == b => true,
                    (oltap_common::DataType::Int64, Some(oltap_common::DataType::Float64))
                    | (oltap_common::DataType::Float64, Some(oltap_common::DataType::Int64))
                    | (oltap_common::DataType::Timestamp, Some(oltap_common::DataType::Int64))
                    | (oltap_common::DataType::Int64, Some(oltap_common::DataType::Timestamp)) => {
                        true
                    }
                    _ => false,
                };
                if !ok {
                    return Err(oltap_common::DbError::TypeMismatch {
                        expected: field.data_type.name().into(),
                        actual: c.value.type_name().into(),
                    });
                }
            }
        }
        if let Some(j) = &self.join {
            for &c in &j.columns {
                if c >= schema.len() {
                    return Err(oltap_common::DbError::ColumnNotFound(format!(
                        "join filter ordinal {c}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::row;
    use oltap_common::{DataType, Field, Schema};

    #[test]
    fn cmp_ops() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.matches(Equal));
        assert!(!CmpOp::Eq.matches(Less));
        assert!(CmpOp::Ne.matches(Greater));
        assert!(CmpOp::Le.matches(Equal));
        assert!(CmpOp::Le.matches(Less));
        assert!(!CmpOp::Lt.matches(Equal));
        assert!(CmpOp::Ge.matches(Greater));
    }

    #[test]
    fn row_matching() {
        let r = row![5i64, "berlin"];
        assert!(ColumnPredicate::new(0, CmpOp::Gt, Value::Int(3)).matches_row(&r));
        assert!(!ColumnPredicate::new(0, CmpOp::Lt, Value::Int(3)).matches_row(&r));
        assert!(ColumnPredicate::new(1, CmpOp::Eq, Value::Str("berlin".into())).matches_row(&r));
    }

    #[test]
    fn null_never_matches() {
        let r = Row::new(vec![Value::Null]);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            assert!(!ColumnPredicate::new(0, op, Value::Int(1)).matches_row(&r));
        }
        let r2 = row![1i64];
        assert!(!ColumnPredicate::new(0, CmpOp::Eq, Value::Null).matches_row(&r2));
    }

    #[test]
    fn conjunction_semantics() {
        let p = ScanPredicate::all()
            .and(0, CmpOp::Ge, Value::Int(10))
            .and(0, CmpOp::Lt, Value::Int(20));
        assert!(p.matches_row(&row![15i64]));
        assert!(!p.matches_row(&row![25i64]));
        assert!(!p.matches_row(&row![5i64]));
        assert!(ScanPredicate::all().matches_row(&row![1i64]));
    }

    fn filter_over(keys: &[Value], columns: Vec<usize>) -> JoinFilter {
        let mut bloom = BlockedBloom::with_capacity(keys.len());
        let mut lo: Option<Value> = None;
        let mut hi: Option<Value> = None;
        for k in keys {
            bloom.insert(join_hash_combine(JOIN_KEY_SEED, join_hash_value(k)));
            lo = Some(lo.map_or(k.clone(), |m| if *k < m { k.clone() } else { m }));
            hi = Some(hi.map_or(k.clone(), |m| if *k > m { k.clone() } else { m }));
        }
        JoinFilter {
            columns,
            ranges: vec![lo.zip(hi)],
            bloom: Arc::new(bloom),
            build_rows: keys.len(),
        }
    }

    #[test]
    fn join_filter_keeps_build_keys_and_rejects_out_of_range() {
        let f = filter_over(&[Value::Int(10), Value::Int(20), Value::Int(30)], vec![0]);
        assert!(f.matches_row(&row![10i64, "x"]));
        assert!(f.matches_row(&row![30i64, "y"]));
        // Outside [10, 30]: range check rejects without consulting the bloom.
        assert!(!f.matches_row(&row![9i64, "z"]));
        assert!(!f.matches_row(&row![31i64, "z"]));
        // NULL keys never join.
        assert!(!f.matches_row(&Row::new(vec![Value::Null, Value::Str("n".into())])));
    }

    #[test]
    fn empty_build_side_rejects_everything() {
        let f = filter_over(&[], vec![0]);
        assert!(!f.matches_row(&row![10i64]));
    }

    #[test]
    fn join_filter_in_scan_predicate() {
        let p = ScanPredicate::single(0, CmpOp::Ge, Value::Int(0))
            .with_join(filter_over(&[Value::Int(5)], vec![0]));
        assert!(!p.is_trivial());
        assert!(p.matches_row(&row![5i64]));
        assert!(!p.matches_row(&row![6i64]));
        assert!(!p.matches_row(&row![-5i64]));
    }

    #[test]
    fn validation() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ]);
        assert!(ScanPredicate::single(0, CmpOp::Eq, Value::Int(1))
            .validate(&s)
            .is_ok());
        assert!(ScanPredicate::single(0, CmpOp::Eq, Value::Float(1.5))
            .validate(&s)
            .is_ok());
        assert!(ScanPredicate::single(1, CmpOp::Eq, Value::Int(1))
            .validate(&s)
            .is_err());
        assert!(ScanPredicate::single(9, CmpOp::Eq, Value::Int(1))
            .validate(&s)
            .is_err());
    }
}
