//! Scan predicates that storage can evaluate natively.
//!
//! The executor lowers the pushable part of a WHERE clause into a
//! conjunction of simple column-vs-literal comparisons. The column store
//! uses them twice: against zone maps to skip whole segments (Oracle's
//! "in-memory storage indexes") and against compressed codes inside a
//! segment (the SIMD-scan idea).

use oltap_common::{Result, Row, Value};

/// Comparison operator of a simple predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    #[inline]
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One `column <op> literal` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPredicate {
    /// Ordinal of the column in the table schema.
    pub column: usize,
    /// The comparison.
    pub op: CmpOp,
    /// The literal. NULL never matches (SQL three-valued logic collapses
    /// to false for filtering).
    pub value: Value,
}

impl ColumnPredicate {
    /// Builds a predicate.
    pub fn new(column: usize, op: CmpOp, value: Value) -> Self {
        ColumnPredicate { column, op, value }
    }

    /// Evaluates against a materialized row.
    pub fn matches_row(&self, row: &Row) -> bool {
        let v = &row[self.column];
        if v.is_null() || self.value.is_null() {
            return false;
        }
        self.op.matches(v.cmp(&self.value))
    }
}

/// A conjunction of simple predicates (empty = always true).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScanPredicate {
    /// The conjuncts.
    pub conjuncts: Vec<ColumnPredicate>,
}

impl ScanPredicate {
    /// The always-true predicate.
    pub fn all() -> Self {
        ScanPredicate::default()
    }

    /// A single-conjunct predicate.
    pub fn single(column: usize, op: CmpOp, value: Value) -> Self {
        ScanPredicate {
            conjuncts: vec![ColumnPredicate::new(column, op, value)],
        }
    }

    /// Adds a conjunct (builder style).
    pub fn and(mut self, column: usize, op: CmpOp, value: Value) -> Self {
        self.conjuncts.push(ColumnPredicate::new(column, op, value));
        self
    }

    /// True when there are no conjuncts.
    pub fn is_trivial(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Evaluates against a materialized row.
    pub fn matches_row(&self, row: &Row) -> bool {
        self.conjuncts.iter().all(|c| c.matches_row(row))
    }

    /// Checks that referenced columns exist and literals are comparable
    /// with the column type.
    pub fn validate(&self, schema: &oltap_common::Schema) -> Result<()> {
        for c in &self.conjuncts {
            if c.column >= schema.len() {
                return Err(oltap_common::DbError::ColumnNotFound(format!(
                    "ordinal {}",
                    c.column
                )));
            }
            if !c.value.is_null() {
                let field = schema.field(c.column);
                // Numeric cross-comparisons (Int vs Float) are permitted.
                let ok = match (field.data_type, c.value.data_type()) {
                    (_, None) => true,
                    (a, Some(b)) if a == b => true,
                    (oltap_common::DataType::Int64, Some(oltap_common::DataType::Float64))
                    | (oltap_common::DataType::Float64, Some(oltap_common::DataType::Int64))
                    | (oltap_common::DataType::Timestamp, Some(oltap_common::DataType::Int64))
                    | (oltap_common::DataType::Int64, Some(oltap_common::DataType::Timestamp)) => {
                        true
                    }
                    _ => false,
                };
                if !ok {
                    return Err(oltap_common::DbError::TypeMismatch {
                        expected: field.data_type.name().into(),
                        actual: c.value.type_name().into(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oltap_common::row;
    use oltap_common::{DataType, Field, Schema};

    #[test]
    fn cmp_ops() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.matches(Equal));
        assert!(!CmpOp::Eq.matches(Less));
        assert!(CmpOp::Ne.matches(Greater));
        assert!(CmpOp::Le.matches(Equal));
        assert!(CmpOp::Le.matches(Less));
        assert!(!CmpOp::Lt.matches(Equal));
        assert!(CmpOp::Ge.matches(Greater));
    }

    #[test]
    fn row_matching() {
        let r = row![5i64, "berlin"];
        assert!(ColumnPredicate::new(0, CmpOp::Gt, Value::Int(3)).matches_row(&r));
        assert!(!ColumnPredicate::new(0, CmpOp::Lt, Value::Int(3)).matches_row(&r));
        assert!(ColumnPredicate::new(1, CmpOp::Eq, Value::Str("berlin".into())).matches_row(&r));
    }

    #[test]
    fn null_never_matches() {
        let r = Row::new(vec![Value::Null]);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            assert!(!ColumnPredicate::new(0, op, Value::Int(1)).matches_row(&r));
        }
        let r2 = row![1i64];
        assert!(!ColumnPredicate::new(0, CmpOp::Eq, Value::Null).matches_row(&r2));
    }

    #[test]
    fn conjunction_semantics() {
        let p = ScanPredicate::all()
            .and(0, CmpOp::Ge, Value::Int(10))
            .and(0, CmpOp::Lt, Value::Int(20));
        assert!(p.matches_row(&row![15i64]));
        assert!(!p.matches_row(&row![25i64]));
        assert!(!p.matches_row(&row![5i64]));
        assert!(ScanPredicate::all().matches_row(&row![1i64]));
    }

    #[test]
    fn validation() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Utf8),
        ]);
        assert!(ScanPredicate::single(0, CmpOp::Eq, Value::Int(1))
            .validate(&s)
            .is_ok());
        assert!(ScanPredicate::single(0, CmpOp::Eq, Value::Float(1.5))
            .validate(&s)
            .is_ok());
        assert!(ScanPredicate::single(1, CmpOp::Eq, Value::Int(1))
            .validate(&s)
            .is_err());
        assert!(ScanPredicate::single(9, CmpOp::Eq, Value::Int(1))
            .validate(&s)
            .is_err());
    }
}
